//! Criterion benchmark: the planner layer.
//!
//! Times decomposition-tree construction, full plan enumeration and the
//! heuristic selection for the Figure 8 queries (the paper notes the planner
//! cost is negligible; this verifies it stays in the microsecond range).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgraph_counting::query::{catalog, decompose, enumerate_plans, heuristic_plan};

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");
    for spec in catalog::FIGURE8_QUERIES {
        let query = (spec.build)();
        group.bench_with_input(BenchmarkId::new("decompose", spec.name), &query, |b, q| {
            b.iter(|| decompose(q).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("enumerate", spec.name), &query, |b, q| {
            b.iter(|| enumerate_plans(q).unwrap().len());
        });
        group.bench_with_input(BenchmarkId::new("heuristic", spec.name), &query, |b, q| {
            b.iter(|| heuristic_plan(q).unwrap());
        });
    }
    let satellite = catalog::satellite();
    group.bench_function("enumerate/satellite", |b| {
        b.iter(|| enumerate_plans(&satellite).unwrap().len());
    });
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
