//! Criterion benchmark: what binding the `Engine` once actually buys.
//!
//! `fresh_prep_per_trial` replays the pre-`Engine` behaviour of
//! `estimate_count`: every trial rebuilds the graph preprocessing (degree
//! order plus an `O(m log m)` re-sort of every adjacency list) before
//! counting. `reused_engine` runs the same trials through one bound
//! [`Engine`], paying the preprocessing once per benchmark iteration. The
//! gap between the two series is the amortization win of the bind-once API;
//! it grows with the trial count.
//!
//! `sharded_engine` runs the same trials through the sharded rank-runtime
//! (vertex-partitioned execution with partial-sum exchange) on the bound
//! engine; the per-shard load summary printed after the group comes from
//! the runtime's measured `ShardMetrics`, not the simulated-rank
//! attribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgraph_counting::core::driver::count_colorful_fresh_prep;
use subgraph_counting::core::{CountConfig, Engine};
use subgraph_counting::gen::{chung_lu, power_law_degrees};
use subgraph_counting::graph::Coloring;
use subgraph_counting::query::{catalog, heuristic_plan};

/// Shards used by the `sharded_engine` series.
const SHARDS: usize = 4;

fn bench_engine_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_reuse");
    group.sample_size(10);

    let degrees: Vec<f64> = power_law_degrees(4000, 1.5)
        .iter()
        .map(|d| d * 2.0)
        .collect();
    let graph = chung_lu(&degrees, 13);
    let query = catalog::triangle();
    let plan = heuristic_plan(&query).unwrap();
    let config = CountConfig::default().with_ranks(16);

    for trials in [3usize, 10, 30] {
        group.bench_with_input(
            BenchmarkId::new("fresh_prep_per_trial", trials),
            &trials,
            |b, &trials| {
                b.iter(|| {
                    let mut total = 0u64;
                    for trial in 0..trials {
                        let coloring =
                            Coloring::random(graph.num_vertices(), query.num_nodes(), trial as u64);
                        total += count_colorful_fresh_prep(&graph, &coloring, &plan, &config)
                            .unwrap()
                            .colorful_matches;
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reused_engine", trials),
            &trials,
            |b, &trials| {
                b.iter(|| {
                    let engine = Engine::new(&graph);
                    engine
                        .count(&query)
                        .config(config)
                        .trials(trials)
                        .seed(0)
                        .parallel(false) // sequential: isolate the prep amortization
                        .estimate()
                        .unwrap()
                        .per_trial
                        .iter()
                        .sum::<u64>()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sharded_engine", trials),
            &trials,
            |b, &trials| {
                let engine = Engine::new(&graph);
                b.iter(|| {
                    engine
                        .count(&query)
                        .config(config)
                        .trials(trials)
                        .seed(0)
                        .parallel(false) // shard parallelism only, per trial
                        .sharded(SHARDS)
                        .estimate()
                        .unwrap()
                        .per_trial
                        .iter()
                        .sum::<u64>()
                });
            },
        );
    }
    group.finish();

    // Per-shard load summary (measured by the sharded runtime, one count):
    // the Figure 11 quantities for the real shards, replacing the old
    // simulated-rank accounting.
    let engine = Engine::new(&graph);
    let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), 0);
    let result = engine
        .count(&query)
        .config(config)
        .coloring(&coloring)
        .sharded(SHARDS)
        .run()
        .unwrap();
    let shards = result
        .metrics
        .shards
        .expect("sharded run reports shard metrics");
    println!(
        "engine_reuse/sharded_engine shard loads ({SHARDS} shards): max {} ops, avg {:.0} ops, imbalance {:.2}, {} entries exchanged over {} rounds",
        shards.max_ops(),
        shards.avg_ops(),
        shards.imbalance(),
        shards.total_entries_exchanged(),
        shards.exchange_rounds,
    );
}

criterion_group!(benches, bench_engine_reuse);
criterion_main!(benches);
