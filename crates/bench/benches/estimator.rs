//! Criterion benchmark: the end-to-end estimator and an ablation of the DB
//! degree constraint.
//!
//! `db_vs_ps_trial` compares one full estimation trial under both algorithms
//! on a skewed graph (the end-to-end counterpart of the Figure 10 shape);
//! `treelet_vs_general` compares the dedicated tree-query dynamic program
//! against the general treewidth-2 machinery on a tree query (the FASCIA
//! special case).

use criterion::{criterion_group, criterion_main, Criterion};
use subgraph_counting::core::treelet::count_colorful_treelet;
use subgraph_counting::core::{Algorithm, Engine};
use subgraph_counting::gen::{chung_lu, power_law_degrees};
use subgraph_counting::graph::Coloring;
use subgraph_counting::query::{catalog, heuristic_plan};

fn bench_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator");
    group.sample_size(10);
    let degrees: Vec<f64> = power_law_degrees(2000, 1.5)
        .iter()
        .map(|d| d * 2.0)
        .collect();
    let graph = chung_lu(&degrees, 21);
    let engine = Engine::new(&graph);

    let query = catalog::glet1();
    let plan = heuristic_plan(&query).unwrap();
    let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), 4);
    for algorithm in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
        group.bench_function(format!("db_vs_ps_trial/{}", algorithm.short_name()), |b| {
            b.iter(|| {
                engine
                    .count(&query)
                    .plan(&plan)
                    .algorithm(algorithm)
                    .ranks(16)
                    .coloring(&coloring)
                    .run()
                    .unwrap()
            });
        });
    }

    let tree_query = catalog::binary_tree(3);
    let tree_plan = heuristic_plan(&tree_query).unwrap();
    let tree_coloring = Coloring::random(graph.num_vertices(), tree_query.num_nodes(), 4);
    group.bench_function("treelet_vs_general/treelet_dp", |b| {
        b.iter(|| count_colorful_treelet(&graph, &tree_coloring, &tree_query));
    });
    group.bench_function("treelet_vs_general/general_db", |b| {
        b.iter(|| {
            engine
                .count(&tree_query)
                .plan(&tree_plan)
                .algorithm(Algorithm::DegreeBased)
                .ranks(16)
                .coloring(&tree_coloring)
                .run()
                .unwrap()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);
