//! Criterion benchmark: the graph generators.
//!
//! The experiment harness regenerates graphs frequently; this keeps an eye on
//! the cost of the Chung-Lu sampler (which must stay O(n + m)), the R-MAT
//! generator and the road-like generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgraph_counting::gen::rmat::RmatParams;
use subgraph_counting::gen::{chung_lu, power_law_degrees, rmat, road_like};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    for exp in [12u32, 14] {
        let n = 1usize << exp;
        let degrees = power_law_degrees(n, 1.5);
        group.bench_with_input(BenchmarkId::new("chung_lu", n), &degrees, |b, d| {
            b.iter(|| chung_lu(d, 1).num_edges());
        });
        group.bench_with_input(BenchmarkId::new("rmat", n), &exp, |b, &scale| {
            b.iter(|| rmat(scale, RmatParams::paper(), 1).num_edges());
        });
    }
    group.bench_function("road_like_10k", |b| {
        b.iter(|| road_like(100, 0.65, 0.02, 1).num_edges());
    });
    group.bench_function("power_law_degrees_65k", |b| {
        b.iter(|| power_law_degrees(1 << 16, 1.5).len());
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
