//! Criterion benchmark: the engine's table kernels.
//!
//! Measures the raw cost of the operations the joins are built from —
//! inserting into and merging path tables, grouping binary tables, and
//! signature algebra — independent of any particular query.

use criterion::{criterion_group, criterion_main, Criterion};
use subgraph_counting::engine::{BinaryTable, PathKey, PathTable, Signature};

/// A signature whose bits straddle the u64 word boundary, so the benches
/// exercise both lanes of the two-word representation.
fn sig(bits: u32) -> Signature {
    Signature::from_words([(bits as u64) << 54, (bits as u64) >> 10])
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_kernels");
    group.sample_size(20);

    group.bench_function("path_table_insert_100k", |b| {
        b.iter(|| {
            let mut t = PathTable::new();
            for i in 0u32..100_000 {
                let key = PathKey::new(i % 997, i % 1009, sig(i % 1024));
                t.add(key, 1);
            }
            t.len()
        });
    });

    group.bench_function("path_table_merge_2x50k", |b| {
        let make = |offset: u32| {
            let mut t = PathTable::new();
            for i in 0u32..50_000 {
                t.add(PathKey::new((i + offset) % 997, i % 1009, sig(i % 512)), 1);
            }
            t
        };
        b.iter(|| {
            let mut a = make(0);
            a.merge(make(3));
            a.len()
        });
    });

    group.bench_function("binary_table_group_by_first_50k", |b| {
        let mut t = BinaryTable::new();
        for i in 0u32..50_000 {
            t.add(i % 2048, i % 997, sig(i % 256), 1);
        }
        b.iter(|| t.group_by_first().len());
    });

    group.bench_function("signature_ops_1m", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0u32..1_000_000 {
                let a = sig(i & 0xFFFF);
                let s = sig(i.rotate_left(7) & 0xFFFF);
                if a.is_disjoint(s) {
                    acc ^= a.union(s).words()[0] as u32;
                }
            }
            acc
        });
    });

    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
