//! Criterion benchmark: PS vs DB on a skewed Chung-Lu graph and a low-skew
//! road-like graph, over representative queries.
//!
//! This is the microbenchmark counterpart of Figure 10: DB is expected to win
//! on the skewed graph (most clearly on cycle-heavy queries) and to be close
//! to PS on the low-skew graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgraph_counting::core::{Algorithm, CountConfig, Engine};
use subgraph_counting::gen::{chung_lu, power_law_degrees, road_like};
use subgraph_counting::graph::{Coloring, CsrGraph};
use subgraph_counting::query::{catalog, heuristic_plan};

fn graphs() -> Vec<(&'static str, CsrGraph)> {
    let degrees: Vec<f64> = power_law_degrees(1500, 1.45)
        .iter()
        .map(|d| d * 2.0)
        .collect();
    vec![
        ("powerlaw1500", chung_lu(&degrees, 11)),
        ("road1600", road_like(40, 0.65, 0.02, 11)),
    ]
}

fn bench_ps_vs_db(c: &mut Criterion) {
    let mut group = c.benchmark_group("ps_vs_db");
    group.sample_size(10);
    for (gname, graph) in graphs() {
        let engine = Engine::new(&graph);
        for qname in ["youtube", "glet2", "dros"] {
            let query = catalog::query_by_name(qname).unwrap();
            let plan = heuristic_plan(&query).unwrap();
            let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), 5);
            for algorithm in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
                let config = CountConfig::new(algorithm).with_ranks(16);
                group.bench_with_input(
                    BenchmarkId::new(format!("{gname}/{qname}"), algorithm.short_name()),
                    &config,
                    |b, cfg| {
                        b.iter(|| {
                            engine
                                .count(&query)
                                .plan(&plan)
                                .config(*cfg)
                                .coloring(&coloring)
                                .run()
                                .unwrap()
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ps_vs_db);
criterion_main!(benches);
