//! PR 6 perf snapshot: the fig08 registry sweep plus `sgc-net` loopback
//! round-trip throughput, written to `BENCH_PR6.json`.
//!
//! ROADMAP item 2 asks for the perf trajectory to be *recorded*, not just
//! printable; this binary is the first data point. It measures two layers:
//!
//! 1. **Engine** — every registry query counted on one bound engine
//!    (the Figure 8 sweep shape): wall seconds, trials/second, and the
//!    estimate, per query.
//! 2. **Wire** — a real `sgc-net` server on a loopback socket, swept over
//!    client counts: cold rounds (unique seeds, every job computes) and a
//!    hot round (identical resubmissions, measuring frame + cache overhead
//!    alone), with the end-of-run [`ServiceMetrics`] in the stable text
//!    form shared with the `stats` verb.
//!
//! Environment knobs (all optional): `SGC_SCALE` (graph scale, default
//! 0.02), `SGC_TRIALS` (engine sweep trials, default 32), `SGC_NET_CLIENTS`
//! (comma list, default `1,2,4`), `SGC_NET_JOBS` (jobs per client, default
//! 8), `SGC_BENCH_OUT` (output path, default `BENCH_PR6.json`).

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use sgc_bench::*;
use subgraph_counting::net::{Client, Server, ServerConfig};
use subgraph_counting::query::Registry;
use subgraph_counting::ServiceMetrics;

/// Minimal JSON emitter: the repo deliberately has no serde, and the file
/// format is flat enough that assembling it by hand stays readable.
struct Json(String);

impl Json {
    fn new() -> Self {
        Json(String::new())
    }
    fn push(&mut self, s: &str) {
        self.0.push_str(s);
    }
    fn str_field(&mut self, key: &str, value: &str) {
        self.push(&format!("\"{key}\": \"{value}\""));
    }
    fn num_field(&mut self, key: &str, value: f64) {
        // Shortest round-trip form; integers stay integer-looking.
        if value.fract() == 0.0 && value.abs() < 1e15 {
            self.push(&format!("\"{key}\": {value:.0}"));
        } else {
            self.push(&format!("\"{key}\": {value}"));
        }
    }
}

/// One timed round: `clients` loopback connections, each running
/// `jobs_per_client` counts. With `shared_seeds` every client submits the
/// identical job set (so a warmed cache serves everything and the round
/// measures frame + dispatch overhead); without it every job is unique and
/// computes.
fn count_round(
    addr: std::net::SocketAddr,
    clients: usize,
    jobs_per_client: usize,
    names: &[&str],
    budget: u64,
    seed_base: u64,
    shared_seeds: bool,
) -> (f64, usize) {
    let started = Instant::now();
    let trials: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("loopback connect");
                    let mut trials = 0usize;
                    for j in 0..jobs_per_client {
                        let name = names[j % names.len()];
                        let offset = if shared_seeds {
                            j
                        } else {
                            c * jobs_per_client + j
                        };
                        let output = client
                            .count(name)
                            .seed(seed_base + offset as u64)
                            .budget(budget)
                            .run()
                            .expect("registry queries count");
                        trials += output.trials_run as usize;
                    }
                    client.bye().expect("clean goodbye");
                    trials
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    (started.elapsed().as_secs_f64(), trials)
}

fn main() {
    print_header("PR 6 perf snapshot: registry sweep + sgc-net loopback throughput");
    let scale = experiment_scale();
    let trials = env_usize("SGC_TRIALS", 32);
    let clients_sweep: Vec<usize> = std::env::var("SGC_NET_CLIENTS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&v| v > 0)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4]);
    let jobs_per_client = env_usize("SGC_NET_JOBS", 8);
    let out_path = std::env::var("SGC_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR6.json".to_string());

    let graphs = benchmark_graphs(scale, &["condMat"]);
    let bench_graph = graphs.into_iter().next().expect("condMat analog");
    let graph = Arc::new(bench_graph.graph);
    println!(
        "graph: condMat analog at scale {scale} ({} vertices, {} edges)",
        graph.num_vertices(),
        graph.num_edges()
    );

    let mut json = Json::new();
    json.push("{\n");
    json.push("  \"benchmark\": \"pr6\",\n");
    json.push("  \"graph\": {");
    json.str_field("name", "condMat");
    json.push(", ");
    json.num_field("scale", scale);
    json.push(", ");
    json.num_field("vertices", graph.num_vertices() as f64);
    json.push(", ");
    json.num_field("edges", graph.num_edges() as f64);
    json.push("},\n");

    // -- Part 1: the fig08 registry sweep on one bound engine ------------
    println!();
    println!("registry sweep: {} trials per query", trials);
    println!(
        "{:>12} {:>9} {:>12} {:>16}",
        "query", "seconds", "trials/s", "subgraphs"
    );
    let engine = subgraph_counting::core::Engine::from_shared(Arc::clone(&graph));
    let registry = Registry::builtin();
    let names = registry.names();
    json.push("  \"fig08_registry_sweep\": {\n");
    json.push(&format!("    \"trials\": {trials},\n"));
    json.push("    \"queries\": [\n");
    let sweep_started = Instant::now();
    for (i, name) in names.iter().enumerate() {
        let query = registry.build(name).expect("registry name");
        let started = Instant::now();
        let estimate = engine
            .count(&query)
            .trials(trials)
            .seed(0xF1608)
            .estimate()
            .expect("registry queries are plannable");
        let seconds = started.elapsed().as_secs_f64();
        let per_sec = trials as f64 / seconds.max(1e-12);
        println!(
            "{:>12} {:>9.4} {:>12.1} {:>16.1}",
            name, seconds, per_sec, estimate.estimated_subgraphs
        );
        json.push("      {");
        json.str_field("name", name);
        json.push(", ");
        json.num_field("seconds", seconds);
        json.push(", ");
        json.num_field("trials_per_sec", per_sec);
        json.push(", ");
        json.num_field("estimated_subgraphs", estimate.estimated_subgraphs);
        json.push("}");
        json.push(if i + 1 < names.len() { ",\n" } else { "\n" });
    }
    let sweep_seconds = sweep_started.elapsed().as_secs_f64();
    json.push("    ],\n");
    json.push("    ");
    json.num_field("total_seconds", sweep_seconds);
    json.push(",\n    ");
    json.num_field(
        "queries_per_sec",
        names.len() as f64 / sweep_seconds.max(1e-12),
    );
    json.push("\n  },\n");

    // -- Part 2: loopback round-trip throughput through sgc-net ----------
    println!();
    println!(
        "loopback sweep: {} jobs/client, budget {} trials",
        jobs_per_client, trials
    );
    println!(
        "{:>8} {:>6} {:>9} {:>9} {:>12}",
        "clients", "round", "seconds", "jobs/s", "trials/s"
    );
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&graph), ServerConfig::default())
        .expect("loopback bind");
    let addr = server.local_addr();
    json.push("  \"server_loopback\": {\n");
    json.push(&format!(
        "    \"jobs_per_client\": {jobs_per_client},\n    \"budget\": {trials},\n"
    ));
    json.push("    \"rounds\": [\n");
    // Pre-warm the hot-round job set outside any measurement, so every hot
    // round below is answered entirely from the result cache.
    let _ = count_round(
        addr,
        1,
        jobs_per_client,
        &names,
        trials as u64,
        0xCAC4E,
        true,
    );
    for (i, &clients) in clients_sweep.iter().enumerate() {
        // Cold: unique seeds, every job computes. Hot: everyone resubmits
        // one identical job set, so the cache answers and the measurement
        // isolates frame + dispatch overhead.
        let total_jobs = (clients * jobs_per_client) as f64;
        let (cold_seconds, cold_trials) = count_round(
            addr,
            clients,
            jobs_per_client,
            &names,
            trials as u64,
            0x10_000 * (i as u64 + 1),
            false,
        );
        let (hot_seconds, _) = count_round(
            addr,
            clients,
            jobs_per_client,
            &names,
            trials as u64,
            0xCAC4E,
            true,
        );
        for (round, seconds, executed) in [
            ("cold", cold_seconds, cold_trials as f64),
            ("hot", hot_seconds, 0.0),
        ] {
            println!(
                "{:>8} {:>6} {:>9.4} {:>9.1} {:>12.1}",
                clients,
                round,
                seconds,
                total_jobs / seconds.max(1e-12),
                executed / seconds.max(1e-12),
            );
            json.push("      {");
            json.num_field("clients", clients as f64);
            json.push(", ");
            json.str_field("round", round);
            json.push(", ");
            json.num_field("seconds", seconds);
            json.push(", ");
            json.num_field("jobs_per_sec", total_jobs / seconds.max(1e-12));
            json.push(", ");
            json.num_field("trials_per_sec", executed / seconds.max(1e-12));
            json.push("}");
            json.push(if i + 1 < clients_sweep.len() || round == "cold" {
                ",\n"
            } else {
                "\n"
            });
        }
    }
    json.push("    ],\n");

    // End-of-run state as the unified registry exposition (the same sorted
    // `name value` lines the `metrics` wire verb emits); the JSON below
    // keeps parsing the fixed-order `Display` contracts.
    let metrics: ServiceMetrics = server.service().metrics();
    let stats = server.stats();
    println!();
    println!("--- metrics exposition ---\n{}", server.exposition());
    json.push("    \"service_metrics\": {");
    for (i, line) in metrics.to_string().lines().enumerate() {
        let mut parts = line.split_whitespace();
        let (key, value) = (parts.next().unwrap(), parts.next().unwrap());
        if i > 0 {
            json.push(", ");
        }
        json.num_field(key, value.parse().unwrap());
    }
    json.push("},\n");
    json.push("    \"server_stats\": {");
    for (i, line) in stats.to_string().lines().enumerate() {
        let mut parts = line.split_whitespace();
        let (key, value) = (parts.next().unwrap(), parts.next().unwrap());
        if i > 0 {
            json.push(", ");
        }
        json.num_field(key, value.parse().unwrap());
    }
    json.push("}\n");
    json.push("  }\n");
    json.push("}\n");
    server.shutdown();

    let mut file = std::fs::File::create(&out_path).expect("create output file");
    file.write_all(json.0.as_bytes()).expect("write json");
    println!();
    println!("wrote {out_path}");
}
