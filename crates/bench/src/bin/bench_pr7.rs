//! PR 7 perf snapshot: the fig08 registry sweep and `sgc-net` loopback
//! throughput of PR 6, re-measured on the columnar u64-bitset kernel, with
//! in-binary scalar ≡ columnar bit-identity assertions, written to
//! `BENCH_PR7.json`.
//!
//! Three layers:
//!
//! 1. **Bit identity** — before anything is timed, every registry query is
//!    counted under both algorithms with both kernels, solo and sharded
//!    ({1, 2, 4} shards) and through `count_batch`, and the per-trial counts
//!    are asserted bit-identical. A perf snapshot of a kernel that drifted
//!    would be worthless, so the binary refuses to emit one.
//! 2. **Engine** — the PR 6 fig08 registry sweep (same seed, same trials)
//!    on the default columnar kernel, plus the identical sweep pinned to
//!    the scalar kernel, so the file records the measured speedup.
//! 3. **Wire** — the PR 6 loopback client sweep (cold and hot rounds)
//!    against a real `sgc-net` server, now running columnar underneath.
//!
//! Environment knobs (all optional): `SGC_SCALE` (graph scale, default
//! 0.02), `SGC_TRIALS` (engine sweep trials, default 32), `SGC_NET_CLIENTS`
//! (comma list, default `1,2,4`), `SGC_NET_JOBS` (jobs per client, default
//! 8), `SGC_BENCH_OUT` (output path, default `BENCH_PR7.json`).

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use sgc_bench::*;
use subgraph_counting::core::{Algorithm, Engine, KernelKind};
use subgraph_counting::net::{Client, Server, ServerConfig};
use subgraph_counting::query::Registry;
use subgraph_counting::ServiceMetrics;

/// Minimal JSON emitter: the repo deliberately has no serde, and the file
/// format is flat enough that assembling it by hand stays readable.
struct Json(String);

impl Json {
    fn new() -> Self {
        Json(String::new())
    }
    fn push(&mut self, s: &str) {
        self.0.push_str(s);
    }
    fn str_field(&mut self, key: &str, value: &str) {
        self.push(&format!("\"{key}\": \"{value}\""));
    }
    fn num_field(&mut self, key: &str, value: f64) {
        // Shortest round-trip form; integers stay integer-looking.
        if value.fract() == 0.0 && value.abs() < 1e15 {
            self.push(&format!("\"{key}\": {value:.0}"));
        } else {
            self.push(&format!("\"{key}\": {value}"));
        }
    }
}

/// Asserts scalar ≡ columnar per-trial counts for every registry query,
/// both algorithms, solo and sharded {1, 2, 4}, plus one batched sweep per
/// kernel. Returns the number of (query, algorithm, execution-shape)
/// configurations checked.
fn assert_bit_identity(engine: &Engine<'_>, registry: &Registry, trials: usize, seed: u64) -> u64 {
    let mut checked = 0u64;
    for name in registry.names() {
        let query = registry.build(name).expect("registry name");
        for alg in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
            // Solo (serial driver), then per-trial sharded execution.
            let scalar = engine
                .count(&query)
                .algorithm(alg)
                .kernel(KernelKind::Scalar)
                .trials(trials)
                .seed(seed)
                .estimate()
                .expect("registry queries are plannable");
            let columnar = engine
                .count(&query)
                .algorithm(alg)
                .kernel(KernelKind::Columnar)
                .trials(trials)
                .seed(seed)
                .estimate()
                .expect("registry queries are plannable");
            assert_eq!(
                scalar.per_trial, columnar.per_trial,
                "solo kernel divergence on {name} with {alg}"
            );
            checked += 1;
            for shards in [1usize, 2, 4] {
                let s = engine
                    .count(&query)
                    .algorithm(alg)
                    .kernel(KernelKind::Scalar)
                    .parallel(false)
                    .sharded(shards)
                    .trials(trials)
                    .seed(seed)
                    .estimate()
                    .expect("sharded runs plan");
                let c = engine
                    .count(&query)
                    .algorithm(alg)
                    .kernel(KernelKind::Columnar)
                    .parallel(false)
                    .sharded(shards)
                    .trials(trials)
                    .seed(seed)
                    .estimate()
                    .expect("sharded runs plan");
                assert_eq!(
                    s.per_trial, c.per_trial,
                    "sharded({shards}) kernel divergence on {name} with {alg}"
                );
                assert_eq!(
                    scalar.per_trial, c.per_trial,
                    "sharded({shards}) vs solo divergence on {name} with {alg}"
                );
                checked += 1;
            }
        }
    }
    // Batched execution: the whole registry in one count_batch per kernel.
    let queries: Vec<_> = registry
        .names()
        .iter()
        .map(|n| registry.build(n).expect("registry name"))
        .collect();
    for kernel in [KernelKind::Scalar, KernelKind::Columnar] {
        let requests: Vec<_> = queries
            .iter()
            .map(|q| engine.count(q).kernel(kernel).trials(trials).seed(seed))
            .collect();
        let batch = engine.count_batch(&requests).expect("batch runs");
        for (q, est) in queries.iter().zip(&batch.estimates) {
            let solo = engine
                .count(q)
                .kernel(kernel)
                .trials(trials)
                .seed(seed)
                .estimate()
                .expect("solo runs");
            assert_eq!(
                est.per_trial, solo.per_trial,
                "batch vs solo divergence under {kernel}"
            );
            checked += 1;
        }
    }
    checked
}

/// Runs the fig08 registry sweep under one kernel; returns
/// `(per-query rows, total seconds)` where a row is
/// `(name, seconds, trials/sec, estimated subgraphs)`.
fn registry_sweep(
    engine: &Engine<'_>,
    registry: &Registry,
    kernel: KernelKind,
    trials: usize,
) -> (Vec<(String, f64, f64, f64)>, f64) {
    let names = registry.names();
    let mut rows = Vec::with_capacity(names.len());
    let started = Instant::now();
    for name in names {
        let query = registry.build(name).expect("registry name");
        let q_started = Instant::now();
        let estimate = engine
            .count(&query)
            .kernel(kernel)
            .trials(trials)
            .seed(0xF1608)
            .estimate()
            .expect("registry queries are plannable");
        let seconds = q_started.elapsed().as_secs_f64();
        rows.push((
            name.to_string(),
            seconds,
            trials as f64 / seconds.max(1e-12),
            estimate.estimated_subgraphs,
        ));
    }
    (rows, started.elapsed().as_secs_f64())
}

/// One timed round: `clients` loopback connections, each running
/// `jobs_per_client` counts. With `shared_seeds` every client submits the
/// identical job set (so a warmed cache serves everything and the round
/// measures frame + dispatch overhead); without it every job is unique and
/// computes.
fn count_round(
    addr: std::net::SocketAddr,
    clients: usize,
    jobs_per_client: usize,
    names: &[&str],
    budget: u64,
    seed_base: u64,
    shared_seeds: bool,
) -> (f64, usize) {
    let started = Instant::now();
    let trials: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("loopback connect");
                    let mut trials = 0usize;
                    for j in 0..jobs_per_client {
                        let name = names[j % names.len()];
                        let offset = if shared_seeds {
                            j
                        } else {
                            c * jobs_per_client + j
                        };
                        let output = client
                            .count(name)
                            .seed(seed_base + offset as u64)
                            .budget(budget)
                            .run()
                            .expect("registry queries count");
                        trials += output.trials_run as usize;
                    }
                    client.bye().expect("clean goodbye");
                    trials
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    (started.elapsed().as_secs_f64(), trials)
}

fn main() {
    print_header("PR 7 perf snapshot: columnar kernel registry sweep + loopback throughput");
    let scale = experiment_scale();
    let trials = env_usize("SGC_TRIALS", 32);
    let clients_sweep: Vec<usize> = std::env::var("SGC_NET_CLIENTS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&v| v > 0)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4]);
    let jobs_per_client = env_usize("SGC_NET_JOBS", 8);
    let out_path = std::env::var("SGC_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR7.json".to_string());

    let graphs = benchmark_graphs(scale, &["condMat"]);
    let bench_graph = graphs.into_iter().next().expect("condMat analog");
    let graph = Arc::new(bench_graph.graph);
    println!(
        "graph: condMat analog at scale {scale} ({} vertices, {} edges)",
        graph.num_vertices(),
        graph.num_edges()
    );

    let mut json = Json::new();
    json.push("{\n");
    json.push("  \"benchmark\": \"pr7\",\n");
    json.push("  \"graph\": {");
    json.str_field("name", "condMat");
    json.push(", ");
    json.num_field("scale", scale);
    json.push(", ");
    json.num_field("vertices", graph.num_vertices() as f64);
    json.push(", ");
    json.num_field("edges", graph.num_edges() as f64);
    json.push("},\n");

    let engine = Engine::from_shared(Arc::clone(&graph));
    let registry = Registry::builtin();

    // -- Part 0: scalar ≡ columnar bit identity, asserted ----------------
    println!();
    println!("bit identity: full registry x {{PS, DB}} x {{solo, sharded 1/2/4, batch}}");
    let identity_started = Instant::now();
    let configs = assert_bit_identity(&engine, registry, 2, 0xB17);
    println!(
        "  {} configurations bit-identical ({:.2}s)",
        configs,
        identity_started.elapsed().as_secs_f64()
    );
    json.push("  \"bit_identity\": {");
    json.num_field("configurations", configs as f64);
    json.push(", ");
    json.str_field("verdict", "bit-identical");
    json.push("},\n");

    // -- Part 1: the fig08 registry sweep, columnar then scalar ----------
    let names = registry.names();
    let mut sweep_totals = [0.0f64; 2];
    for (which, kernel) in [KernelKind::Columnar, KernelKind::Scalar]
        .into_iter()
        .enumerate()
    {
        println!();
        println!("registry sweep [{kernel}]: {trials} trials per query");
        println!(
            "{:>12} {:>9} {:>12} {:>16}",
            "query", "seconds", "trials/s", "subgraphs"
        );
        let (rows, total) = registry_sweep(&engine, registry, kernel, trials);
        sweep_totals[which] = total;
        let section = match kernel {
            KernelKind::Columnar => "fig08_registry_sweep",
            KernelKind::Scalar => "fig08_registry_sweep_scalar",
        };
        json.push(&format!("  \"{section}\": {{\n"));
        json.push(&format!("    \"trials\": {trials},\n"));
        json.push(&format!("    \"kernel\": \"{}\",\n", kernel.short_name()));
        json.push("    \"queries\": [\n");
        for (i, (name, seconds, per_sec, subgraphs)) in rows.iter().enumerate() {
            println!("{name:>12} {seconds:>9.4} {per_sec:>12.1} {subgraphs:>16.1}");
            json.push("      {");
            json.str_field("name", name);
            json.push(", ");
            json.num_field("seconds", *seconds);
            json.push(", ");
            json.num_field("trials_per_sec", *per_sec);
            json.push(", ");
            json.num_field("estimated_subgraphs", *subgraphs);
            json.push("}");
            json.push(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        json.push("    ],\n");
        json.push("    ");
        json.num_field("total_seconds", total);
        json.push(",\n    ");
        json.num_field("queries_per_sec", names.len() as f64 / total.max(1e-12));
        json.push("\n  },\n");
    }
    let speedup = sweep_totals[1] / sweep_totals[0].max(1e-12);
    println!();
    println!(
        "columnar {:.4}s vs scalar {:.4}s: {:.2}x in-binary speedup",
        sweep_totals[0], sweep_totals[1], speedup
    );
    json.push("  ");
    json.num_field("columnar_speedup_vs_scalar", speedup);
    json.push(",\n");

    // -- Part 2: loopback round-trip throughput through sgc-net ----------
    println!();
    println!("loopback sweep: {jobs_per_client} jobs/client, budget {trials} trials");
    println!(
        "{:>8} {:>6} {:>9} {:>9} {:>12}",
        "clients", "round", "seconds", "jobs/s", "trials/s"
    );
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&graph), ServerConfig::default())
        .expect("loopback bind");
    let addr = server.local_addr();
    json.push("  \"server_loopback\": {\n");
    json.push(&format!(
        "    \"jobs_per_client\": {jobs_per_client},\n    \"budget\": {trials},\n"
    ));
    json.push("    \"rounds\": [\n");
    // Pre-warm the hot-round job set outside any measurement, so every hot
    // round below is answered entirely from the result cache.
    let _ = count_round(
        addr,
        1,
        jobs_per_client,
        &names,
        trials as u64,
        0xCAC4E,
        true,
    );
    for (i, &clients) in clients_sweep.iter().enumerate() {
        // Cold: unique seeds, every job computes. Hot: everyone resubmits
        // one identical job set, so the cache answers and the measurement
        // isolates frame + dispatch overhead.
        let total_jobs = (clients * jobs_per_client) as f64;
        let (cold_seconds, cold_trials) = count_round(
            addr,
            clients,
            jobs_per_client,
            &names,
            trials as u64,
            0x10_000 * (i as u64 + 1),
            false,
        );
        let (hot_seconds, _) = count_round(
            addr,
            clients,
            jobs_per_client,
            &names,
            trials as u64,
            0xCAC4E,
            true,
        );
        for (round, seconds, executed) in [
            ("cold", cold_seconds, cold_trials as f64),
            ("hot", hot_seconds, 0.0),
        ] {
            println!(
                "{:>8} {:>6} {:>9.4} {:>9.1} {:>12.1}",
                clients,
                round,
                seconds,
                total_jobs / seconds.max(1e-12),
                executed / seconds.max(1e-12),
            );
            json.push("      {");
            json.num_field("clients", clients as f64);
            json.push(", ");
            json.str_field("round", round);
            json.push(", ");
            json.num_field("seconds", seconds);
            json.push(", ");
            json.num_field("jobs_per_sec", total_jobs / seconds.max(1e-12));
            json.push(", ");
            json.num_field("trials_per_sec", executed / seconds.max(1e-12));
            json.push("}");
            json.push(if i + 1 < clients_sweep.len() || round == "cold" {
                ",\n"
            } else {
                "\n"
            });
        }
    }
    json.push("    ],\n");

    // End-of-run state as the unified registry exposition (the same sorted
    // `name value` lines the `metrics` wire verb emits); the JSON below
    // keeps parsing the fixed-order `Display` contracts.
    let metrics: ServiceMetrics = server.service().metrics();
    let stats = server.stats();
    println!();
    println!("--- metrics exposition ---\n{}", server.exposition());
    json.push("    \"service_metrics\": {");
    for (i, line) in metrics.to_string().lines().enumerate() {
        let mut parts = line.split_whitespace();
        let (key, value) = (parts.next().unwrap(), parts.next().unwrap());
        if i > 0 {
            json.push(", ");
        }
        json.num_field(key, value.parse().unwrap());
    }
    json.push("},\n");
    json.push("    \"server_stats\": {");
    for (i, line) in stats.to_string().lines().enumerate() {
        let mut parts = line.split_whitespace();
        let (key, value) = (parts.next().unwrap(), parts.next().unwrap());
        if i > 0 {
            json.push(", ");
        }
        json.num_field(key, value.parse().unwrap());
    }
    json.push("}\n");
    json.push("  }\n");
    json.push("}\n");
    server.shutdown();

    let mut file = std::fs::File::create(&out_path).expect("create output file");
    file.write_all(json.0.as_bytes()).expect("write json");
    println!();
    println!("wrote {out_path}");
}
