//! PR 8 perf snapshot: observability overhead of `sgc-obs` on the fig08
//! registry sweep, plus the loopback sweep exercising the new `metrics`
//! and `trace` wire verbs, written to `BENCH_PR8.json`.
//!
//! Three layers:
//!
//! 1. **Bit identity** — before anything is timed, every registry query is
//!    counted with observability enabled and disabled, under both
//!    algorithms, solo and sharded, and the per-trial counts are asserted
//!    bit-identical. Spans and counters read the DP; they must never
//!    branch it.
//! 2. **Engine** — the fig08 registry sweep timed with spans/counters off
//!    and on (several alternating repetitions, best-of to shed scheduler
//!    noise), reporting the relative overhead. The budget is <= 3%.
//! 3. **Wire** — the PR 6/7 loopback client sweep against a real `sgc-net`
//!    server with observability on, fetching the `metrics` exposition and
//!    the `trace` log at the end and asserting both are well-formed.
//!
//! Environment knobs (all optional): `SGC_SCALE` (graph scale, default
//! 0.02), `SGC_TRIALS` (engine sweep trials, default 32), `SGC_REPS`
//! (alternating sweep repetitions, default 3), `SGC_NET_CLIENTS` (comma
//! list, default `1,2,4`), `SGC_NET_JOBS` (jobs per client, default 8),
//! `SGC_BENCH_OUT` (output path, default `BENCH_PR8.json`).

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use sgc_bench::*;
use subgraph_counting::core::{Algorithm, Engine};
use subgraph_counting::net::{Client, Server, ServerConfig};
use subgraph_counting::obs;
use subgraph_counting::query::Registry;

/// Minimal JSON emitter: the repo deliberately has no serde, and the file
/// format is flat enough that assembling it by hand stays readable.
struct Json(String);

impl Json {
    fn new() -> Self {
        Json(String::new())
    }
    fn push(&mut self, s: &str) {
        self.0.push_str(s);
    }
    fn str_field(&mut self, key: &str, value: &str) {
        self.push(&format!("\"{key}\": \"{value}\""));
    }
    fn num_field(&mut self, key: &str, value: f64) {
        if value.fract() == 0.0 && value.abs() < 1e15 {
            self.push(&format!("\"{key}\": {value:.0}"));
        } else {
            self.push(&format!("\"{key}\": {value}"));
        }
    }
}

/// Asserts obs-on ≡ obs-off per-trial counts for every registry query,
/// both algorithms, solo and sharded {1, 4}. Returns the number of
/// configurations checked.
fn assert_bit_identity(engine: &Engine<'_>, registry: &Registry, trials: usize, seed: u64) -> u64 {
    let mut checked = 0u64;
    for name in registry.names() {
        let query = registry.build(name).expect("registry name");
        for alg in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
            for shards in [None, Some(1usize), Some(4)] {
                let run = |obs_on: bool| {
                    let mut request = engine
                        .count(&query)
                        .algorithm(alg)
                        .trials(trials)
                        .seed(seed)
                        .obs(obs_on);
                    if let Some(shards) = shards {
                        request = request.parallel(false).sharded(shards);
                    }
                    request.estimate().expect("registry queries are plannable")
                };
                let on = run(true);
                let off = run(false);
                assert_eq!(
                    on.per_trial, off.per_trial,
                    "observability perturbed the DP on {name} with {alg}, shards {shards:?}"
                );
                assert_eq!(
                    on.estimated_matches.to_bits(),
                    off.estimated_matches.to_bits(),
                    "observability perturbed the estimate on {name} with {alg}"
                );
                checked += 1;
            }
        }
    }
    checked
}

/// One fig08 registry sweep; returns (total seconds, trials executed).
fn registry_sweep(engine: &Engine<'_>, registry: &Registry, trials: usize) -> (f64, u64) {
    let names = registry.names();
    let started = Instant::now();
    for name in &names {
        let query = registry.build(name).expect("registry name");
        let estimate = engine
            .count(&query)
            .trials(trials)
            .seed(0xF1608)
            .estimate()
            .expect("registry queries are plannable");
        assert!(estimate.estimated_subgraphs.is_finite());
    }
    (
        started.elapsed().as_secs_f64(),
        (names.len() * trials) as u64,
    )
}

/// One timed loopback round, as in bench_pr6/bench_pr7.
fn count_round(
    addr: std::net::SocketAddr,
    clients: usize,
    jobs_per_client: usize,
    names: &[&str],
    budget: u64,
    seed_base: u64,
    shared_seeds: bool,
) -> (f64, usize) {
    let started = Instant::now();
    let trials: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("loopback connect");
                    let mut trials = 0usize;
                    for j in 0..jobs_per_client {
                        let name = names[j % names.len()];
                        let offset = if shared_seeds {
                            j
                        } else {
                            c * jobs_per_client + j
                        };
                        let output = client
                            .count(name)
                            .seed(seed_base + offset as u64)
                            .budget(budget)
                            .run()
                            .expect("registry queries count");
                        trials += output.trials_run as usize;
                    }
                    client.bye().expect("clean goodbye");
                    trials
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    (started.elapsed().as_secs_f64(), trials)
}

/// Asserts the exposition contract: every line is `name value` with a
/// parseable u64 value, names strictly sorted (hence unique).
fn assert_exposition_well_formed(exposition: &str) -> usize {
    let mut previous: Option<&str> = None;
    let mut lines = 0usize;
    for line in exposition.lines() {
        let mut parts = line.split(' ');
        let name = parts.next().expect("name field");
        let value = parts
            .next()
            .unwrap_or_else(|| panic!("no value in {line:?}"));
        assert!(parts.next().is_none(), "extra fields in {line:?}");
        value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        if let Some(previous) = previous {
            assert!(previous < name, "names out of order: {previous} >= {name}");
        }
        previous = Some(name);
        lines += 1;
    }
    lines
}

fn main() {
    print_header("PR 8 perf snapshot: observability overhead + metrics/trace verbs");
    let scale = experiment_scale();
    let trials = env_usize("SGC_TRIALS", 32);
    let reps = env_usize("SGC_REPS", 3).max(1);
    let clients_sweep: Vec<usize> = std::env::var("SGC_NET_CLIENTS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&v| v > 0)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4]);
    let jobs_per_client = env_usize("SGC_NET_JOBS", 8);
    let out_path = std::env::var("SGC_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR8.json".to_string());

    let graphs = benchmark_graphs(scale, &["condMat"]);
    let bench_graph = graphs.into_iter().next().expect("condMat analog");
    let graph = Arc::new(bench_graph.graph);
    println!(
        "graph: condMat analog at scale {scale} ({} vertices, {} edges)",
        graph.num_vertices(),
        graph.num_edges()
    );

    let mut json = Json::new();
    json.push("{\n");
    json.push("  \"benchmark\": \"pr8\",\n");
    json.push("  \"graph\": {");
    json.str_field("name", "condMat");
    json.push(", ");
    json.num_field("scale", scale);
    json.push(", ");
    json.num_field("vertices", graph.num_vertices() as f64);
    json.push(", ");
    json.num_field("edges", graph.num_edges() as f64);
    json.push("},\n");

    let engine = Engine::from_shared(Arc::clone(&graph));
    let registry = Registry::builtin();

    // -- Part 0: obs-on ≡ obs-off bit identity, asserted -----------------
    println!();
    println!("bit identity: full registry x {{PS, DB}} x {{solo, sharded 1/4}}, obs on vs off");
    let identity_started = Instant::now();
    let configs = assert_bit_identity(&engine, registry, 2, 0xB17);
    println!(
        "  {} configurations bit-identical ({:.2}s)",
        configs,
        identity_started.elapsed().as_secs_f64()
    );
    json.push("  \"bit_identity\": {");
    json.num_field("configurations", configs as f64);
    json.push(", ");
    json.str_field("verdict", "bit-identical");
    json.push("},\n");

    // -- Part 1: registry sweep overhead, obs off vs on -------------------
    // One untimed warmup sweep settles plan caches and arenas; then
    // alternating off/on repetitions, best-of each, so a one-off scheduler
    // hiccup cannot masquerade as observability overhead.
    println!();
    println!("registry sweep overhead: {trials} trials per query, best of {reps} reps");
    let _ = registry_sweep(&engine, registry, trials);
    let mut best = [f64::INFINITY; 2]; // [off, on]
    let mut trials_executed = 0u64;
    for _ in 0..reps {
        for (which, enabled) in [(0usize, false), (1usize, true)] {
            obs::set_enabled(enabled);
            let (seconds, executed) = registry_sweep(&engine, registry, trials);
            obs::set_enabled(true);
            best[which] = best[which].min(seconds);
            trials_executed = executed;
        }
    }
    let overhead_pct = 100.0 * (best[1] - best[0]) / best[0].max(1e-12);
    println!("{:>10} {:>9} {:>12}", "obs", "seconds", "trials/s");
    for (label, seconds) in [("off", best[0]), ("on", best[1])] {
        println!(
            "{label:>10} {seconds:>9.4} {:>12.1}",
            trials_executed as f64 / seconds.max(1e-12)
        );
    }
    println!("  overhead: {overhead_pct:+.2}% (budget <= 3%)");
    json.push("  \"registry_sweep_overhead\": {\n");
    json.push(&format!(
        "    \"trials\": {trials},\n    \"reps\": {reps},\n"
    ));
    json.push("    ");
    json.num_field("obs_off_seconds", best[0]);
    json.push(",\n    ");
    json.num_field("obs_on_seconds", best[1]);
    json.push(",\n    ");
    json.num_field(
        "obs_off_trials_per_sec",
        trials_executed as f64 / best[0].max(1e-12),
    );
    json.push(",\n    ");
    json.num_field(
        "obs_on_trials_per_sec",
        trials_executed as f64 / best[1].max(1e-12),
    );
    json.push(",\n    ");
    json.num_field("overhead_pct", (overhead_pct * 100.0).round() / 100.0);
    json.push("\n  },\n");

    // -- Part 2: loopback sweep with metrics/trace verbs ------------------
    println!();
    println!("loopback sweep (obs on): {jobs_per_client} jobs/client, budget {trials} trials");
    println!(
        "{:>8} {:>6} {:>9} {:>9} {:>12}",
        "clients", "round", "seconds", "jobs/s", "trials/s"
    );
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&graph), ServerConfig::default())
        .expect("loopback bind");
    let addr = server.local_addr();
    let names = registry.names();
    json.push("  \"server_loopback\": {\n");
    json.push(&format!(
        "    \"jobs_per_client\": {jobs_per_client},\n    \"budget\": {trials},\n"
    ));
    json.push("    \"rounds\": [\n");
    let _ = count_round(
        addr,
        1,
        jobs_per_client,
        &names,
        trials as u64,
        0xCAC4E,
        true,
    );
    for (i, &clients) in clients_sweep.iter().enumerate() {
        let total_jobs = (clients * jobs_per_client) as f64;
        let (cold_seconds, cold_trials) = count_round(
            addr,
            clients,
            jobs_per_client,
            &names,
            trials as u64,
            0x10_000 * (i as u64 + 1),
            false,
        );
        let (hot_seconds, _) = count_round(
            addr,
            clients,
            jobs_per_client,
            &names,
            trials as u64,
            0xCAC4E,
            true,
        );
        for (round, seconds, executed) in [
            ("cold", cold_seconds, cold_trials as f64),
            ("hot", hot_seconds, 0.0),
        ] {
            println!(
                "{:>8} {:>6} {:>9.4} {:>9.1} {:>12.1}",
                clients,
                round,
                seconds,
                total_jobs / seconds.max(1e-12),
                executed / seconds.max(1e-12),
            );
            json.push("      {");
            json.num_field("clients", clients as f64);
            json.push(", ");
            json.str_field("round", round);
            json.push(", ");
            json.num_field("seconds", seconds);
            json.push(", ");
            json.num_field("jobs_per_sec", total_jobs / seconds.max(1e-12));
            json.push(", ");
            json.num_field("trials_per_sec", executed / seconds.max(1e-12));
            json.push("}");
            json.push(if i + 1 < clients_sweep.len() || round == "cold" {
                ",\n"
            } else {
                "\n"
            });
        }
    }
    json.push("    ],\n");

    // The new verbs, exercised over the wire and validated client-side.
    let mut client = Client::connect(addr).expect("loopback connect");
    let exposition = client.metrics().expect("metrics verb");
    let exposition_lines = assert_exposition_well_formed(&exposition);
    let trace = client.trace_log().expect("trace verb");
    let trace_jobs = trace
        .lines()
        .filter(|line| line.starts_with("trace_id="))
        .count();
    assert!(trace_jobs > 0, "loopback jobs left no traces");
    client.bye().expect("clean goodbye");
    println!();
    println!(
        "metrics verb: {exposition_lines} well-formed exposition lines; \
         trace verb: {trace_jobs} traced jobs"
    );
    json.push("    ");
    json.num_field("metrics_exposition_lines", exposition_lines as f64);
    json.push(",\n    ");
    json.num_field("trace_log_jobs", trace_jobs as f64);
    json.push("\n  }\n");
    json.push("}\n");

    println!();
    println!("--- metrics exposition ---\n{}", server.exposition());
    println!();
    println!("--- trace log ---\n{}", server.trace_report());
    server.shutdown();

    let mut file = std::fs::File::create(&out_path).expect("create output file");
    file.write_all(json.0.as_bytes()).expect("write json");
    println!();
    println!("wrote {out_path}");
}
