//! PR 9 perf snapshot: incremental recount after a small delta vs a full
//! recompute, on the `sgc-dyn` versioned store, written to
//! `BENCH_PR9.json`.
//!
//! Two layers:
//!
//! 1. **Bit identity** — before anything is timed, the incremental recount
//!    (replaying the parent version's clean-shard partials) is asserted
//!    bit-identical, per trial, to both a from-scratch sharded run at the
//!    same version and to the engine on a fresh build of the materialized
//!    edge list. Replay must never branch the DP.
//! 2. **Recount race** — for each query, best-of-`SGC_REPS` timings of
//!    (a) the incremental recount at the child version with the parent's
//!    partials retained, and (b) the same trials from scratch on an empty
//!    store. Reported as trials/sec and the speedup ratio, alongside the
//!    fraction of shard solves the incremental path replayed.
//!
//! The graph is a `road_like` lattice (a pruned grid with a sprinkling of
//! shortcuts) rather than an ER/Chung-Lu analog: expanders put every shard
//! inside the delta's `2k` invalidation ball, which is exactly the
//! worst case the dirty-shard rule degrades to, not the common case the
//! incremental path exists for. The delta is corner-local and at most 1%
//! of the edge set, matching the acceptance criterion.
//!
//! Environment knobs (all optional): `SGC_SCALE` (graph scale, default
//! 0.02), `SGC_TRIALS` (trials per query, default 32), `SGC_REPS`
//! (repetitions, best-of, default 3), `SGC_SHARDS` (shard count, default
//! 16), `SGC_BENCH_OUT` (output path, default `BENCH_PR9.json`).

use std::io::Write as _;
use std::time::Instant;

use sgc_bench::*;
use subgraph_counting::core::kernel::ArenaPool;
use subgraph_counting::core::{Algorithm, Engine, KernelKind};
use subgraph_counting::dynamic::{run_trials, PartialStore, TrialSpec, VersionedGraph};
use subgraph_counting::gen::road_like;
use subgraph_counting::graph::{CsrGraph, EdgeDelta, GraphBuilder};
use subgraph_counting::query::{catalog, heuristic_plan, QueryGraph};

/// Minimal JSON emitter: the repo deliberately has no serde, and the file
/// format is flat enough that assembling it by hand stays readable.
struct Json(String);

impl Json {
    fn new() -> Self {
        Json(String::new())
    }
    fn push(&mut self, s: &str) {
        self.0.push_str(s);
    }
    fn str_field(&mut self, key: &str, value: &str) {
        self.push(&format!("\"{key}\": \"{value}\""));
    }
    fn num_field(&mut self, key: &str, value: f64) {
        if value.fract() == 0.0 && value.abs() < 1e15 {
            self.push(&format!("\"{key}\": {value:.0}"));
        } else {
            self.push(&format!("\"{key}\": {value}"));
        }
    }
}

/// Builds a corner-local delta touching at most 1% of `graph`'s edges:
/// a few deletions among the lattice's first rows and a few insertions of
/// absent short-range chords in the same corner.
fn corner_delta(graph: &CsrGraph, side: usize, budget: usize) -> EdgeDelta {
    let corner = (2 * side) as u32;
    let deletes: Vec<(u32, u32)> = graph
        .edges()
        .filter(|&(u, v)| u < corner && v < corner)
        .take(budget / 2)
        .collect();
    let mut inserts = Vec::new();
    'outer: for u in 0..corner {
        for step in 2..6u32 {
            let v = u + step;
            if v < corner && !graph.has_edge(u, v) && !inserts.contains(&(u, v)) {
                inserts.push((u, v));
                if inserts.len() >= budget.div_ceil(2) {
                    break 'outer;
                }
            }
        }
    }
    assert!(
        !deletes.is_empty() && !inserts.is_empty(),
        "corner of the lattice must offer edges to flip"
    );
    EdgeDelta::new(inserts, deletes).expect("corner delta is valid by construction")
}

/// Rebuilds `graph` from its edge list — the from-scratch reference the
/// bit-identity contract is stated against.
fn rebuild(graph: &CsrGraph) -> CsrGraph {
    let mut b = GraphBuilder::new(graph.num_vertices());
    b.extend_edges(graph.edges());
    b.build()
}

struct QueryRow {
    name: &'static str,
    incremental_seconds: f64,
    scratch_seconds: f64,
    replay_fraction: f64,
    trials: usize,
}

/// Runs the bit-identity gate and the timed race for one query. Panics on
/// any per-trial mismatch — nothing is timed until identity holds.
#[allow(clippy::too_many_arguments)]
fn race_query(
    name: &'static str,
    query: &QueryGraph,
    versions: &VersionedGraph,
    trials: usize,
    shards: usize,
    seed: u64,
    reps: usize,
) -> QueryRow {
    let tree = heuristic_plan(query).expect("benchmark queries are plannable");
    let spec = TrialSpec {
        query,
        tree: &tree,
        algorithm: Algorithm::DegreeBased,
        seed,
        num_shards: shards,
        kernel: KernelKind::default(),
    };
    let pool = ArenaPool::new();
    let root = versions.root();
    let head = versions.head();

    // -- Bit identity, asserted before the clock starts ------------------
    let warm = PartialStore::default();
    run_trials(versions, &warm, root, &spec, 0..trials, &pool).expect("root population");
    let incremental =
        run_trials(versions, &warm, head, &spec, 0..trials, &pool).expect("incremental recount");
    assert_eq!(
        incremental.trials_incremental, trials,
        "{name}: every trial must take the incremental path"
    );
    assert!(
        incremental.shards_replayed > 0,
        "{name}: a corner delta must leave clean shards to replay"
    );
    let scratch = run_trials(
        versions,
        &PartialStore::default(),
        head,
        &spec,
        0..trials,
        &pool,
    )
    .expect("scratch recount");
    assert_eq!(scratch.trials_scratch, trials);
    assert_eq!(
        incremental.per_trial, scratch.per_trial,
        "{name}: incremental recount diverged from scratch"
    );
    let materialized = versions.data_at(head).expect("head is a known version");
    let reference = Engine::new(&rebuild(&materialized.graph))
        .count(query)
        .algorithm(Algorithm::DegreeBased)
        .seed(seed)
        .trials(trials)
        .parallel(false)
        .sharded(shards)
        .estimate()
        .expect("benchmark queries count");
    assert_eq!(
        incremental.per_trial, reference.per_trial,
        "{name}: incremental recount diverged from a fresh engine build"
    );

    // -- The race ---------------------------------------------------------
    // Per repetition both contenders get fresh stores; the incremental
    // side's root population is untimed prep (it models the partials the
    // previous version's count already paid for).
    let mut best = [f64::INFINITY; 2]; // [incremental, scratch]
    let mut replay_fraction = 0.0;
    for _ in 0..reps {
        let store = PartialStore::default();
        run_trials(versions, &store, root, &spec, 0..trials, &pool).expect("root population");
        let started = Instant::now();
        let outcome =
            run_trials(versions, &store, head, &spec, 0..trials, &pool).expect("timed incremental");
        best[0] = best[0].min(started.elapsed().as_secs_f64());
        let solves = (outcome.shards_replayed + outcome.shards_computed) as f64;
        replay_fraction = outcome.shards_replayed as f64 / solves.max(1.0);

        let empty = PartialStore::default();
        let started = Instant::now();
        run_trials(versions, &empty, head, &spec, 0..trials, &pool).expect("timed scratch");
        best[1] = best[1].min(started.elapsed().as_secs_f64());
    }
    QueryRow {
        name,
        incremental_seconds: best[0],
        scratch_seconds: best[1],
        replay_fraction,
        trials,
    }
}

fn main() {
    print_header("PR 9 perf snapshot: incremental recount vs full recompute");
    let scale = experiment_scale();
    let trials = env_usize("SGC_TRIALS", 32);
    let reps = env_usize("SGC_REPS", 3).max(1);
    let shards = env_usize("SGC_SHARDS", 16);
    let seed = env_u64("SGC_SEED", 0x9D17);
    let out_path = std::env::var("SGC_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR9.json".to_string());

    // A road-like lattice: high-diameter, so a corner-local delta's 2k
    // invalidation ball stays far from most shards.
    let side = ((scale * 2400.0) as usize).max(24);
    let base = road_like(side, 0.9, 0.01, 0x0A0D);
    println!(
        "graph: road_like(side {side}) at scale {scale} ({} vertices, {} edges)",
        base.num_vertices(),
        base.num_edges()
    );

    let delta_budget = (base.num_edges() / 100).clamp(2, 24);
    let delta = corner_delta(&base, side, delta_budget);
    let changed = delta.inserts().len() + delta.deletes().len();
    assert!(
        changed * 100 <= base.num_edges(),
        "delta must stay within 1% of the edge set"
    );
    let mut versions = VersionedGraph::new(&base);
    let v1 = versions
        .apply_to_head(&delta)
        .expect("corner delta applies");
    println!(
        "delta: +{} -{} edges ({:.2}% of the edge set), version {:016x}",
        delta.inserts().len(),
        delta.deletes().len(),
        100.0 * changed as f64 / base.num_edges() as f64,
        v1.as_u64()
    );

    let queries: Vec<(&'static str, QueryGraph)> = vec![
        ("triangle", catalog::triangle()),
        ("path4", catalog::path(4)),
        ("cycle5", catalog::cycle(5)),
    ];

    println!();
    println!(
        "recount race: {trials} trials, {shards} shards, best of {reps} reps \
         (bit identity asserted first)"
    );
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>9}",
        "query", "incr tr/s", "scratch tr/s", "speedup", "replayed"
    );

    let mut rows = Vec::new();
    for (name, query) in &queries {
        let row = race_query(name, query, &versions, trials, shards, seed, reps);
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>9.2}x {:>8.1}%",
            row.name,
            row.trials as f64 / row.incremental_seconds.max(1e-12),
            row.trials as f64 / row.scratch_seconds.max(1e-12),
            row.scratch_seconds / row.incremental_seconds.max(1e-12),
            100.0 * row.replay_fraction,
        );
        rows.push(row);
    }

    let speedups: Vec<f64> = rows
        .iter()
        .map(|r| r.scratch_seconds / r.incremental_seconds.max(1e-12))
        .collect();
    let mean_speedup = geometric_mean(&speedups);
    println!();
    println!("geometric-mean speedup: {mean_speedup:.2}x");

    let mut json = Json::new();
    json.push("{\n");
    json.push("  \"benchmark\": \"pr9\",\n");
    json.push("  \"graph\": {");
    json.str_field("name", "road_like");
    json.push(", ");
    json.num_field("scale", scale);
    json.push(", ");
    json.num_field("side", side as f64);
    json.push(", ");
    json.num_field("vertices", base.num_vertices() as f64);
    json.push(", ");
    json.num_field("edges", base.num_edges() as f64);
    json.push("},\n");
    json.push("  \"delta\": {");
    json.num_field("inserts", delta.inserts().len() as f64);
    json.push(", ");
    json.num_field("deletes", delta.deletes().len() as f64);
    json.push(", ");
    json.num_field(
        "edge_fraction_pct",
        (10_000.0 * changed as f64 / base.num_edges() as f64).round() / 100.0,
    );
    json.push("},\n");
    json.push("  \"bit_identity\": {");
    json.num_field("queries", rows.len() as f64);
    json.push(", ");
    json.str_field(
        "verdict",
        "incremental == scratch == fresh engine build, per trial",
    );
    json.push("},\n");
    json.push("  \"recount_race\": {\n");
    json.push(&format!(
        "    \"trials\": {trials},\n    \"shards\": {shards},\n    \"reps\": {reps},\n"
    ));
    json.push("    \"queries\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push("      {");
        json.str_field("query", row.name);
        json.push(", ");
        json.num_field(
            "incremental_trials_per_sec",
            (10.0 * row.trials as f64 / row.incremental_seconds.max(1e-12)).round() / 10.0,
        );
        json.push(", ");
        json.num_field(
            "scratch_trials_per_sec",
            (10.0 * row.trials as f64 / row.scratch_seconds.max(1e-12)).round() / 10.0,
        );
        json.push(", ");
        json.num_field(
            "speedup",
            (100.0 * row.scratch_seconds / row.incremental_seconds.max(1e-12)).round() / 100.0,
        );
        json.push(", ");
        json.num_field(
            "shard_replay_fraction",
            (1000.0 * row.replay_fraction).round() / 1000.0,
        );
        json.push("}");
        json.push(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push("    ],\n");
    json.push("    ");
    json.num_field(
        "geometric_mean_speedup",
        (100.0 * mean_speedup).round() / 100.0,
    );
    json.push("\n  }\n");
    json.push("}\n");

    let mut file = std::fs::File::create(&out_path).expect("create output file");
    file.write_all(json.0.as_bytes()).expect("write json");
    println!();
    println!("wrote {out_path}");
}
