//! Figure 8, served as a batch — batched multi-query throughput vs. solo.
//!
//! The paper's Figure 8 workload counts a whole catalog of treewidth-2
//! queries over one data graph. A serving system sees that workload
//! multiplied by its clients: `C` concurrent callers each sweeping the
//! registry. This binary measures that sweep twice on the same bound
//! engine —
//!
//! * **solo**: one `engine.count(q).estimate()` per request, the way the
//!   pre-batch front door served it (every request draws its own colorings
//!   and runs its own DP, even when another client just asked the same
//!   thing), and
//! * **batch**: one `engine.count_batch(..)` over all `C × |registry|`
//!   requests — per trial step one coloring per distinct node count, one DP
//!   run per structurally distinct query,
//!
//! asserts the results are bit-identical, and reports both throughputs,
//! the speedup, and the sharing metrics. A single-client sweep (no
//! duplicate queries, so only coloring sharing can help) is reported
//! separately from the multi-client sweep (where plan-set dedup collapses
//! the duplicates).
//!
//! Knobs: `SGC_SCALE` (graph scale), `SGC_BATCH_CLIENTS` (default 3),
//! `SGC_BATCH_TRIALS` (default 8), `SGC_BATCH_SEED` (default 0x5eed).

use sgc_bench::{benchmark_graphs, env_u64, env_usize, experiment_scale, print_header};
use std::time::Instant;
use subgraph_counting::core::{BatchMetrics, Engine, Estimate};
use subgraph_counting::query::{QueryGraph, Registry};

/// One client request of the sweep: a registry query plus its seed.
struct Request {
    name: &'static str,
    query: QueryGraph,
    seed: u64,
}

/// Builds `clients` interleaved sweeps over the full registry. Every client
/// issues the same catalog sweep with the same seed — the repeat-heavy
/// shape a shared dashboard or benchmark harness produces.
fn workload(clients: usize, seed: u64) -> Vec<Request> {
    let registry = Registry::builtin();
    (0..clients)
        .flat_map(|_| {
            registry.entries().map(move |entry| Request {
                name: entry.name(),
                query: entry.query().clone(),
                seed,
            })
        })
        .collect()
}

/// Runs the workload one request at a time (trials sequential: this
/// container is single-core, and the batch path is measured the same way).
fn run_solo(engine: &Engine<'_>, requests: &[Request], trials: usize) -> (Vec<Estimate>, f64) {
    let started = Instant::now();
    let estimates = requests
        .iter()
        .map(|r| {
            engine
                .count(&r.query)
                .trials(trials)
                .seed(r.seed)
                .parallel(false)
                .estimate()
                .expect("registry queries always plan")
        })
        .collect();
    (estimates, started.elapsed().as_secs_f64())
}

/// Runs the workload as one batch.
fn run_batch(
    engine: &Engine<'_>,
    requests: &[Request],
    trials: usize,
) -> (Vec<Estimate>, BatchMetrics, f64) {
    let started = Instant::now();
    let batch_requests: Vec<_> = requests
        .iter()
        .map(|r| {
            engine
                .count(&r.query)
                .trials(trials)
                .seed(r.seed)
                .parallel(false)
        })
        .collect();
    let result = engine
        .count_batch(&batch_requests)
        .expect("registry queries always plan");
    let seconds = started.elapsed().as_secs_f64();
    (result.estimates, result.metrics, seconds)
}

fn compare(
    label: &str,
    engine: &Engine<'_>,
    requests: &[Request],
    trials: usize,
) -> (f64, BatchMetrics) {
    let (solo, solo_seconds) = run_solo(engine, requests, trials);
    let (batched, metrics, batch_seconds) = run_batch(engine, requests, trials);
    for ((request, s), b) in requests.iter().zip(&solo).zip(&batched) {
        assert_eq!(
            s.per_trial, b.per_trial,
            "batch diverged from solo on {}",
            request.name
        );
        assert_eq!(
            s.estimated_matches.to_bits(),
            b.estimated_matches.to_bits(),
            "batch estimate diverged on {}",
            request.name
        );
    }
    let speedup = solo_seconds / batch_seconds.max(1e-12);
    println!(
        "{label:<22} {:>9} {:>11.2} {:>11.2} {:>9.2}x",
        requests.len(),
        requests.len() as f64 / solo_seconds.max(1e-12),
        requests.len() as f64 / batch_seconds.max(1e-12),
        speedup
    );
    (speedup, metrics)
}

fn main() {
    print_header("Figure 8 as a batch: shared-coloring multi-query throughput");
    let clients = env_usize("SGC_BATCH_CLIENTS", 3);
    let trials = env_usize("SGC_BATCH_TRIALS", 8);
    let seed = env_u64("SGC_BATCH_SEED", 0x5eed);
    let scale = experiment_scale();
    println!("clients = {clients}, trials/query = {trials}, seed = {seed:#x}");
    println!("(results asserted bit-identical between solo and batch)");
    println!();

    for bench_graph in benchmark_graphs(scale, &["condMat", "roadNetCA"]) {
        println!(
            "--- {} (n = {}, m = {}) ---",
            bench_graph.name,
            bench_graph.graph.num_vertices(),
            bench_graph.graph.num_edges()
        );
        println!(
            "{:<22} {:>9} {:>11} {:>11} {:>10}",
            "sweep", "requests", "solo q/s", "batch q/s", "speedup"
        );
        let engine = Engine::new(&bench_graph.graph);

        let single = workload(1, seed);
        let (_, single_metrics) = compare("registry x 1 client", &engine, &single, trials);

        let multi = workload(clients, seed);
        let (speedup, metrics) = compare(
            &format!("registry x {clients} clients"),
            &engine,
            &multi,
            trials,
        );
        println!();
        println!(
            "  1-client sharing: {} colorings drawn for {} cells ({} shared), {} DP runs",
            single_metrics.colorings_drawn,
            single_metrics.cells,
            single_metrics.colorings_shared,
            single_metrics.dp_runs
        );
        println!(
            "  {clients}-client sharing: {} plans for {} requests ({} deduped), \
             {} colorings drawn for {} cells, {} DP runs ({} served by a twin)",
            metrics.unique_plans,
            metrics.queries,
            metrics.plans_deduped,
            metrics.colorings_drawn,
            metrics.cells,
            metrics.dp_runs,
            metrics.dp_shared
        );
        println!("  {clients}-client speedup: {speedup:.2}x (target >= 1.5x)");
        println!();
    }
    // End-of-run engine/kernel counters as the unified registry exposition
    // — the same sorted `name value` lines the `metrics` wire verb and the
    // service bench bins emit.
    println!(
        "--- metrics exposition ---\n{}",
        subgraph_counting::obs::global().render()
    );
}
