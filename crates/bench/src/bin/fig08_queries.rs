//! Figure 8 — the real-world query suite.
//!
//! Prints the structural characteristics of every query analog: node/edge
//! counts, longest cycle in the heuristic plan, number of decomposition
//! plans, and automorphism count.

use sgc_bench::print_header;
use subgraph_counting::query::automorphism::count_automorphisms;
use subgraph_counting::query::{catalog, enumerate_plans, heuristic_plan, PlanCost};

fn main() {
    print_header("Figure 8: query suite");
    println!(
        "{:<10} {:>6} {:>6} {:>14} {:>8} {:>8} {:>6}  description",
        "query", "nodes", "edges", "longest cycle", "blocks", "plans", "aut"
    );
    for spec in catalog::FIGURE8_QUERIES {
        let q = (spec.build)();
        let plan = heuristic_plan(&q).unwrap();
        let plans = enumerate_plans(&q).unwrap();
        let cost = PlanCost::of(&plan);
        println!(
            "{:<10} {:>6} {:>6} {:>14} {:>8} {:>8} {:>6}  {}",
            spec.name,
            q.num_nodes(),
            q.num_edges(),
            cost.longest_cycle,
            plan.blocks.len(),
            plans.len(),
            count_automorphisms(&q),
            spec.description
        );
    }
    let sat = catalog::satellite();
    let plan = heuristic_plan(&sat).unwrap();
    println!(
        "{:<10} {:>6} {:>6} {:>14} {:>8} {:>8} {:>6}  the paper's Figure 2 worked example",
        "satellite",
        sat.num_nodes(),
        sat.num_edges(),
        PlanCost::of(&plan).longest_cycle,
        plan.blocks.len(),
        enumerate_plans(&sat).unwrap().len(),
        count_automorphisms(&sat),
    );
}
