//! Figure 8 — the real-world query suite.
//!
//! Prints the structural characteristics of every registered query: node and
//! edge counts, longest cycle in the heuristic plan, number of decomposition
//! plans, and automorphism count. The rows come straight from the built-in
//! [`Registry`] (the ten Figure 8 analogs plus the `satellite` worked
//! example), so this binary and the name-resolution path of the service can
//! never disagree about what a name means.

use sgc_bench::print_header;
use subgraph_counting::query::automorphism::count_automorphisms;
use subgraph_counting::query::{enumerate_plans, heuristic_plan, PlanCost};
use subgraph_counting::Registry;

fn main() {
    print_header("Figure 8: query suite");
    println!(
        "{:<10} {:>6} {:>6} {:>14} {:>8} {:>8} {:>6}  description",
        "query", "nodes", "edges", "longest cycle", "blocks", "plans", "aut"
    );
    for entry in Registry::builtin().entries() {
        let q = entry.query();
        let plan = heuristic_plan(q).expect("registered queries are treewidth-2");
        let plans = enumerate_plans(q).unwrap();
        let cost = PlanCost::of(&plan);
        println!(
            "{:<10} {:>6} {:>6} {:>14} {:>8} {:>8} {:>6}  {}",
            entry.name(),
            q.num_nodes(),
            q.num_edges(),
            cost.longest_cycle,
            plan.blocks.len(),
            plans.len(),
            count_automorphisms(q),
            entry.description()
        );
    }
}
