//! Figure 9 — average execution time of the DB algorithm per graph (across
//! queries) and per query (across graphs).
//!
//! The paper runs all 100 graph-query combinations at 512 ranks and reports
//! two bar charts of averages. This binary reproduces both series on the
//! analog suite; the expected shape is that skewed graphs (enron, epinions,
//! slashdot) and long-cycle queries (brain2, brain3) dominate the averages,
//! while roadNetCA and the small queries (youtube, glet1, glet2) are fastest.

use sgc_bench::*;
use subgraph_counting::core::Algorithm;

fn main() {
    print_header("Figure 9: average DB execution time per graph and per query");
    let graphs = benchmark_graphs(experiment_scale(), graph_subset());
    let queries = benchmark_queries(query_subset());
    let threads = max_threads();

    let mut per_graph: Vec<(&str, Vec<f64>)> =
        graphs.iter().map(|g| (g.name, Vec::new())).collect();
    let mut per_query: Vec<(&str, Vec<f64>)> =
        queries.iter().map(|q| (q.name, Vec::new())).collect();

    for (gi, bg) in graphs.iter().enumerate() {
        for (qi, bq) in queries.iter().enumerate() {
            let (_, seconds) =
                timed_count(&bg.graph, &bq.plan, Algorithm::DegreeBased, threads, 42);
            per_graph[gi].1.push(seconds);
            per_query[qi].1.push(seconds);
        }
    }

    println!(
        "average execution time per graph (seconds, across {} queries):",
        queries.len()
    );
    for (name, times) in &per_graph {
        let avg = times.iter().sum::<f64>() / times.len() as f64;
        println!("  {:<12} {:>10.4}", name, avg);
    }
    println!();
    println!(
        "average execution time per query (seconds, across {} graphs):",
        graphs.len()
    );
    for (name, times) in &per_query {
        let avg = times.iter().sum::<f64>() / times.len() as f64;
        println!("  {:<10} {:>10.4}", name, avg);
    }
}
