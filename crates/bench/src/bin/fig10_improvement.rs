//! Figure 10 — improvement factor (IF) of the DB algorithm over PS for every
//! graph-query pair, at low and high parallelism.
//!
//! The paper reports IF = time(PS) / time(DB) at 32 and 512 ranks; DB wins on
//! 84% / 89% of the combinations with averages of 2.4x / 5.0x. Here the two
//! parallelism settings are one thread and all hardware threads, and the
//! expected shape is: IF > 1 on skewed graphs (enron, epinions, slashdot,
//! astroph), IF near or below 1 on the low-skew roadNetCA, and larger IF for
//! queries with longer cycles.

use sgc_bench::*;
use subgraph_counting::core::Algorithm;

fn main() {
    print_header("Figure 10: improvement factor of DB over PS (time_PS / time_DB)");
    let graphs = benchmark_graphs(experiment_scale(), graph_subset());
    let queries = benchmark_queries(query_subset());

    for (setting, threads) in [
        ("low parallelism (1 thread)", 1),
        ("high parallelism", max_threads()),
    ] {
        println!("--- {setting} ---");
        print!("{:<12}", "graph\\query");
        for q in &queries {
            print!(" {:>8}", q.name);
        }
        println!();
        let mut all_ifs = Vec::new();
        let mut wins = 0usize;
        for bg in &graphs {
            print!("{:<12}", bg.name);
            for bq in &queries {
                let (ps_res, ps_t) =
                    timed_count(&bg.graph, &bq.plan, Algorithm::PathSplitting, threads, 42);
                let (db_res, db_t) =
                    timed_count(&bg.graph, &bq.plan, Algorithm::DegreeBased, threads, 42);
                assert_eq!(ps_res.colorful_matches, db_res.colorful_matches);
                let improvement = ps_t / db_t.max(1e-9);
                all_ifs.push(improvement);
                if improvement > 1.0 {
                    wins += 1;
                }
                print!(" {:>8.2}", improvement);
            }
            println!();
        }
        let pct = 100.0 * wins as f64 / all_ifs.len() as f64;
        println!(
            "DB wins on {wins}/{} combinations ({pct:.0}%); geometric-mean IF = {:.2}, max IF = {:.2}",
            all_ifs.len(),
            geometric_mean(&all_ifs),
            all_ifs.iter().cloned().fold(0.0f64, f64::max)
        );
        println!();
    }
}
