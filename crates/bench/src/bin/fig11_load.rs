//! Figure 11 — normalized execution time, maximum load and average load of
//! PS and DB on the enron graph.
//!
//! The load of a rank is the number of projection function operations it
//! performs. The paper shows DB achieving both a lower average load (less
//! wasted work) and a lower maximum load (better balance) than PS; the
//! execution-time improvement correlates with the max-load improvement.

use sgc_bench::*;
use subgraph_counting::core::Algorithm;

fn main() {
    print_header("Figure 11: normalized time / max load / avg load on the enron analog");
    let graphs = benchmark_graphs(experiment_scale(), &["enron"]);
    let enron = &graphs[0];
    let queries = benchmark_queries(query_subset());
    let threads = max_threads();

    println!(
        "{:<10} | {:>9} {:>9} | {:>12} {:>12} | {:>12} {:>12} | {:>9} {:>9}",
        "query",
        "PS time",
        "DB time",
        "PS max load",
        "DB max load",
        "PS avg load",
        "DB avg load",
        "IF time",
        "IF maxld"
    );
    for bq in &queries {
        let (ps, ps_t) = timed_count(
            &enron.graph,
            &bq.plan,
            Algorithm::PathSplitting,
            threads,
            42,
        );
        let (db, db_t) = timed_count(&enron.graph, &bq.plan, Algorithm::DegreeBased, threads, 42);
        assert_eq!(ps.colorful_matches, db.colorful_matches);
        println!(
            "{:<10} | {:>9.4} {:>9.4} | {:>12} {:>12} | {:>12.0} {:>12.0} | {:>9.2} {:>9.2}",
            bq.name,
            ps_t,
            db_t,
            ps.metrics.max_load(),
            db.metrics.max_load(),
            ps.metrics.avg_load(),
            db.metrics.avg_load(),
            ps_t / db_t.max(1e-9),
            ps.metrics.max_load() as f64 / db.metrics.max_load().max(1) as f64,
        );
    }
    println!();
    println!("loads are per simulated rank ({} ranks); normalize each column by its PS value to match the paper's plot", simulated_ranks());
}
