//! Figure 11 — normalized execution time, maximum load and average load of
//! PS and DB on the enron graph.
//!
//! The load of a rank is the number of projection function operations it
//! performs. The paper shows DB achieving both a lower average load (less
//! wasted work) and a lower maximum load (better balance) than PS; the
//! execution-time improvement correlates with the max-load improvement.
//!
//! Since the sharded rank-runtime landed, the loads reported here are the
//! *measured* per-shard operation counts of real vertex-partitioned
//! execution (`RunMetrics::shards`), not the simulated-rank attribution:
//! each run is sharded over `SGC_SHARDS` worker shards (default: the
//! hardware thread count) and the max/avg/imbalance columns summarize what
//! each shard actually executed.

use subgraph_counting::core::{Algorithm, Engine};

use sgc_bench::*;

fn main() {
    print_header("Figure 11: normalized time / max load / avg load on the enron analog");
    let graphs = benchmark_graphs(experiment_scale(), &["enron"]);
    let enron = &graphs[0];
    let queries = benchmark_queries(query_subset());
    let shards = shard_count();
    println!("(per-shard loads measured over {shards} shards)");
    println!();

    let engine = Engine::new(&enron.graph);
    println!(
        "{:<10} | {:>9} {:>9} | {:>12} {:>12} | {:>12} {:>12} | {:>8} {:>8} | {:>9} {:>9}",
        "query",
        "PS time",
        "DB time",
        "PS max load",
        "DB max load",
        "PS avg load",
        "DB avg load",
        "PS imb",
        "DB imb",
        "IF time",
        "IF maxld"
    );
    for bq in &queries {
        let (ps, ps_t) =
            timed_count_sharded(&engine, &bq.plan, Algorithm::PathSplitting, shards, 42);
        let (db, db_t) = timed_count_sharded(&engine, &bq.plan, Algorithm::DegreeBased, shards, 42);
        assert_eq!(ps.colorful_matches, db.colorful_matches);
        let ps_shards = ps.metrics.shards.as_ref().expect("sharded run");
        let db_shards = db.metrics.shards.as_ref().expect("sharded run");
        println!(
            "{:<10} | {:>9.4} {:>9.4} | {:>12} {:>12} | {:>12.0} {:>12.0} | {:>8.2} {:>8.2} | {:>9.2} {:>9.2}",
            bq.name,
            ps_t,
            db_t,
            ps_shards.max_ops(),
            db_shards.max_ops(),
            ps_shards.avg_ops(),
            db_shards.avg_ops(),
            ps_shards.imbalance(),
            db_shards.imbalance(),
            ps_t / db_t.max(1e-9),
            ps_shards.max_ops() as f64 / db_shards.max_ops().max(1) as f64,
        );
    }
    println!();
    println!("loads are measured per shard ({shards} shards, set SGC_SHARDS to change); normalize each column by its PS value to match the paper's plot");
}
