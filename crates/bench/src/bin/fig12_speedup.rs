//! Figure 12 — average speedup of the DB algorithm at high parallelism
//! relative to low parallelism, per query and per graph.
//!
//! The paper reports the ratio of execution time at 32 ranks to 512 ranks
//! (ideal 16x), observing 7.4x–15.8x. Here the ratio is single-thread time to
//! all-threads time (ideal = number of hardware threads).

use sgc_bench::*;
use subgraph_counting::core::Algorithm;

fn main() {
    print_header("Figure 12: average DB speedup (1 thread -> all threads)");
    // Parallel speedup needs enough work per join to amortise the fork/join
    // overhead, so the scaling experiments run at 5x the base scale.
    let scale = (experiment_scale() * 5.0).min(1.0);
    println!("(scaling experiments use scale {scale})");
    let graphs = benchmark_graphs(scale, &["enron", "astroph", "condMat"]);
    let queries = benchmark_queries(&["glet2", "dros", "ecoli2", "glet1"]);
    let threads = max_threads();
    println!("ideal speedup = {threads}x");
    println!();

    let mut per_query: Vec<(&str, Vec<f64>)> =
        queries.iter().map(|q| (q.name, Vec::new())).collect();
    let mut per_graph: Vec<(&str, Vec<f64>)> =
        graphs.iter().map(|g| (g.name, Vec::new())).collect();
    for (gi, bg) in graphs.iter().enumerate() {
        for (qi, bq) in queries.iter().enumerate() {
            let (_, slow) = timed_count(&bg.graph, &bq.plan, Algorithm::DegreeBased, 1, 42);
            let (_, fast) = timed_count(&bg.graph, &bq.plan, Algorithm::DegreeBased, threads, 42);
            let speedup = slow / fast.max(1e-9);
            per_query[qi].1.push(speedup);
            per_graph[gi].1.push(speedup);
        }
    }
    println!("average speedup per query (across graphs):");
    for (name, s) in &per_query {
        println!(
            "  {:<10} {:>6.2}x",
            name,
            s.iter().sum::<f64>() / s.len() as f64
        );
    }
    println!();
    println!("average speedup per graph (across queries):");
    for (name, s) in &per_graph {
        println!(
            "  {:<12} {:>6.2}x",
            name,
            s.iter().sum::<f64>() / s.len() as f64
        );
    }
}
