//! Figure 13 (left) — strong scaling of the DB algorithm on the enron graph.
//!
//! The paper fixes the enron graph and sweeps 32..512 ranks, reporting
//! speedup relative to the 32-rank baseline. Since the sharded rank-runtime
//! landed, this experiment measures *real* scaling: the sweep is over shard
//! counts 1, 2, 4, ... up to the hardware limit, each run vertex-partitioned
//! over that many worker shards with partial-sum exchange rounds between
//! blocks, and speedup is reported relative to a single shard. Counts are
//! asserted bit-identical across the sweep (the runtime's determinism
//! contract), and the per-shard load imbalance at the widest sweep point is
//! printed alongside (the paper's Figure 11 quantity, measured rather than
//! simulated).

use subgraph_counting::core::{Algorithm, Engine};

use sgc_bench::*;

fn main() {
    print_header("Figure 13 (left): strong scaling on the enron analog (sharded runtime)");
    // Strong scaling needs enough per-shard work to amortise fork/join
    // overhead, so this experiment runs at 5x the base scale.
    let scale = (experiment_scale() * 5.0).min(1.0);
    println!("(strong scaling uses scale {scale})");
    let graphs = benchmark_graphs(scale, &["enron"]);
    let enron = &graphs[0];
    let queries = benchmark_queries(&["glet2", "dros", "ecoli2", "glet1"]);

    // Sweep shard counts in powers of two up to the hardware limit (or
    // SGC_SHARDS, for measuring oversharded runs / pinning the sweep).
    let mut shard_counts = vec![1usize];
    while *shard_counts.last().unwrap() * 2 <= shard_count() {
        shard_counts.push(shard_counts.last().unwrap() * 2);
    }

    let engine = Engine::new(&enron.graph);
    print!("{:<10}", "query");
    for &s in &shard_counts {
        print!(" {:>10}", format!("{s} shard"));
    }
    println!(" {:>10}   (speedup vs 1 shard)", "imbal");
    for bq in &queries {
        print!("{:<10}", bq.name);
        let mut baseline = None;
        let mut reference_count = None;
        let mut widest_imbalance = 1.0;
        for &s in &shard_counts {
            let (result, seconds) =
                timed_count_sharded(&engine, &bq.plan, Algorithm::DegreeBased, s, 42);
            let count = *reference_count.get_or_insert(result.colorful_matches);
            assert_eq!(
                result.colorful_matches, count,
                "sharded counts must be bit-identical across shard counts"
            );
            widest_imbalance = result
                .metrics
                .shards
                .as_ref()
                .map(|m| m.imbalance())
                .unwrap_or(1.0);
            let base = *baseline.get_or_insert(seconds);
            print!(" {:>10.2}", base / seconds.max(1e-9));
        }
        println!(" {widest_imbalance:>10.2}");
    }
    println!();
    println!("ideal column values equal the shard count; the gap is exchange cost plus per-shard load imbalance (imbal = max/avg shard ops at the widest sweep)");
}
