//! Figure 13 (left) — strong scaling of the DB algorithm on the enron graph.
//!
//! The paper fixes the enron graph and sweeps 32..512 ranks, reporting
//! speedup relative to the 32-rank baseline. Here the sweep is over thread
//! counts 1, 2, 4, ... up to the hardware limit, with speedup relative to a
//! single thread.

use sgc_bench::*;
use subgraph_counting::core::Algorithm;

fn main() {
    print_header("Figure 13 (left): strong scaling on the enron analog");
    // Strong scaling needs enough per-join work to amortise fork/join
    // overhead, so this experiment runs at 5x the base scale.
    let scale = (experiment_scale() * 5.0).min(1.0);
    println!("(strong scaling uses scale {scale})");
    let graphs = benchmark_graphs(scale, &["enron"]);
    let enron = &graphs[0];
    let queries = benchmark_queries(&["glet2", "dros", "ecoli2", "glet1"]);

    let mut thread_counts = vec![1usize];
    while *thread_counts.last().unwrap() * 2 <= max_threads() {
        thread_counts.push(thread_counts.last().unwrap() * 2);
    }

    print!("{:<10}", "query");
    for &t in &thread_counts {
        print!(" {:>10}", format!("{t} thr"));
    }
    println!("   (speedup vs 1 thread)");
    for bq in &queries {
        print!("{:<10}", bq.name);
        let mut baseline = None;
        for &t in &thread_counts {
            let (_, seconds) = timed_count(&enron.graph, &bq.plan, Algorithm::DegreeBased, t, 42);
            let base = *baseline.get_or_insert(seconds);
            print!(" {:>10.2}", base / seconds.max(1e-9));
        }
        println!();
    }
    println!();
    println!("ideal column values equal the thread count; saturation indicates the serial merge fraction");
}
