//! Figure 13 (right) — weak scaling of the DB algorithm on R-MAT graphs.
//!
//! The paper fixes 1K vertices per rank (R-MAT, Graph 500 parameters,
//! edge factor 16) and sweeps 32..512 ranks; flat execution time indicates
//! good weak scaling. Since the sharded rank-runtime landed this experiment
//! runs the real thing: the graph grows proportionally to the shard count
//! and each run is vertex-partitioned over that many worker shards, so a
//! flat row means the per-shard work (and the exchange overhead) stays
//! constant as the system grows.

use subgraph_counting::core::{Algorithm, Engine};
use subgraph_counting::gen::rmat::{rmat, RmatParams};
use subgraph_counting::query::heuristic_plan;

use sgc_bench::*;

fn main() {
    print_header("Figure 13 (right): weak scaling on R-MAT (sharded runtime)");
    let vertices_per_shard_log2 = 10u32; // 1K vertices per shard, as in the paper
    let queries = benchmark_queries(&["youtube", "glet1", "wiki", "ecoli1"]);

    // Sweep shard counts in powers of two up to the hardware limit (or
    // SGC_SHARDS, for measuring oversharded runs / pinning the sweep).
    let mut shard_counts = vec![1usize];
    while *shard_counts.last().unwrap() * 2 <= shard_count() {
        shard_counts.push(shard_counts.last().unwrap() * 2);
    }

    print!("{:<10}", "query");
    for &s in &shard_counts {
        let scale = vertices_per_shard_log2 + (s as f64).log2() as u32;
        print!(" {:>14}", format!("{s} shd (2^{scale})"));
    }
    println!("   (seconds)");
    for bq in &queries {
        let plan = heuristic_plan(&bq.query).unwrap();
        print!("{:<10}", bq.name);
        for &s in &shard_counts {
            let scale = vertices_per_shard_log2 + (s as f64).log2() as u32;
            let graph = rmat(scale, RmatParams::paper(), 7);
            let engine = Engine::new(&graph);
            let (_, seconds) = timed_count_sharded(&engine, &plan, Algorithm::DegreeBased, s, 42);
            print!(" {:>14.3}", seconds);
        }
        println!();
    }
    println!();
    println!("ideal weak scaling keeps each row flat as shards and graph size grow together");
}
