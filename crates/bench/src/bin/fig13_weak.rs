//! Figure 13 (right) — weak scaling of the DB algorithm on R-MAT graphs.
//!
//! The paper fixes 1K vertices per rank (R-MAT, Graph 500 parameters,
//! edge factor 16) and sweeps 32..512 ranks; flat execution time indicates
//! good weak scaling. Here the number of vertices grows proportionally to the
//! thread count; a flat row is the ideal outcome.

use sgc_bench::*;
use subgraph_counting::core::Algorithm;
use subgraph_counting::gen::rmat::{rmat, RmatParams};
use subgraph_counting::query::heuristic_plan;

fn main() {
    print_header("Figure 13 (right): weak scaling on R-MAT (Graph 500 parameters)");
    let vertices_per_thread_log2 = 10u32; // 1K vertices per thread, as in the paper
    let queries = benchmark_queries(&["youtube", "glet1", "wiki", "ecoli1"]);

    let mut thread_counts = vec![1usize];
    while *thread_counts.last().unwrap() * 2 <= max_threads() {
        thread_counts.push(thread_counts.last().unwrap() * 2);
    }

    print!("{:<10}", "query");
    for &t in &thread_counts {
        let scale = vertices_per_thread_log2 + (t as f64).log2() as u32;
        print!(" {:>14}", format!("{t} thr (2^{scale})"));
    }
    println!("   (seconds)");
    for bq in &queries {
        let plan = heuristic_plan(&bq.query).unwrap();
        print!("{:<10}", bq.name);
        for &t in &thread_counts {
            let scale = vertices_per_thread_log2 + (t as f64).log2() as u32;
            let graph = rmat(scale, RmatParams::paper(), 7);
            let (_, seconds) = timed_count(&graph, &plan, Algorithm::DegreeBased, t, 42);
            print!(" {:>14.3}", seconds);
        }
        println!();
    }
    println!();
    println!("ideal weak scaling keeps each row flat as threads and graph size grow together");
}
