//! Figure 14 — quality of the plan-generation heuristic.
//!
//! For every graph-query pair, every decomposition plan is timed with the DB
//! algorithm; the error is the percentage difference between the heuristic
//! plan's time and the optimal plan's time. The paper reports the heuristic
//! finding the optimum in 90% of the cases and staying within 15% otherwise.

use sgc_bench::*;
use subgraph_counting::core::Algorithm;
use subgraph_counting::query::{catalog, enumerate_plans, heuristic_plan};

fn main() {
    print_header("Figure 14: plan heuristic error vs optimal plan (DB algorithm)");
    let graphs = benchmark_graphs(experiment_scale(), graph_subset());
    // Only queries with more than one plan are interesting here.
    let queries: Vec<_> = catalog::FIGURE8_QUERIES
        .iter()
        .filter(|spec| {
            query_subset().is_empty()
                || query_subset().contains(&spec.name)
                || spec.name.starts_with("brain")
        })
        .map(|spec| (spec.name, (spec.build)()))
        .collect();
    let threads = max_threads();

    let mut optimal_hits = 0usize;
    let mut total = 0usize;
    println!(
        "{:<12} {:<10} {:>7} {:>14} {:>14} {:>9}",
        "graph", "query", "plans", "heuristic (s)", "optimal (s)", "error %"
    );
    for bg in &graphs {
        for (qname, query) in &queries {
            let plans = enumerate_plans(query).unwrap();
            if plans.len() < 2 {
                continue;
            }
            let heuristic = heuristic_plan(query).unwrap();
            let heuristic_sig = heuristic.signature();
            let mut best_time = f64::INFINITY;
            let mut heuristic_time = f64::NAN;
            for plan in &plans {
                let (_, seconds) =
                    timed_count(&bg.graph, plan, Algorithm::DegreeBased, threads, 42);
                if plan.signature() == heuristic_sig {
                    heuristic_time = seconds;
                }
                best_time = best_time.min(seconds);
            }
            let error = 100.0 * (heuristic_time - best_time) / best_time;
            total += 1;
            // Within timing noise of the optimum counts as a hit, as in the paper.
            if error <= 5.0 {
                optimal_hits += 1;
            }
            println!(
                "{:<12} {:<10} {:>7} {:>14.4} {:>14.4} {:>9.1}",
                bg.name,
                qname,
                plans.len(),
                heuristic_time,
                best_time,
                error
            );
        }
    }
    println!();
    println!(
        "heuristic within 5% of the optimal plan on {optimal_hits}/{total} combinations ({:.0}%)",
        100.0 * optimal_hits as f64 / total.max(1) as f64
    );
}
