//! Figure 15 — precision of color coding: coefficient of variation of the
//! per-trial colorful counts over repeated random colorings.
//!
//! The paper performs 10 trials per graph-query pair and reports that with 3
//! trials 82% of the pairs have coefficient of variation at most 0.1, rising
//! to 91% with 10 trials.

use sgc_bench::*;
use subgraph_counting::core::Engine;

fn main() {
    print_header("Figure 15: coefficient of variation of the colorful count across trials");
    let graphs = benchmark_graphs(experiment_scale(), graph_subset());
    let queries = benchmark_queries(query_subset());
    // One engine per data graph, shared by both trial settings below: the
    // preprocessing and plan cache are built once per graph for the whole
    // binary.
    let engines: Vec<Engine<'_>> = graphs.iter().map(|bg| Engine::new(&bg.graph)).collect();

    for trials in [3usize, 10] {
        println!("--- {trials} trials ---");
        let mut below_01 = 0usize;
        let mut total = 0usize;
        print!("{:<12}", "graph\\query");
        for q in &queries {
            print!(" {:>8}", q.name);
        }
        println!();
        for (bg, engine) in graphs.iter().zip(&engines) {
            print!("{:<12}", bg.name);
            for bq in &queries {
                let est = engine
                    .count(&bq.query)
                    .plan(&bq.plan)
                    .ranks(simulated_ranks())
                    .trials(trials)
                    .seed(1000)
                    .estimate()
                    .expect("catalog queries are treewidth-2");
                total += 1;
                if est.coefficient_of_variation <= 0.1 {
                    below_01 += 1;
                }
                print!(" {:>8.3}", est.coefficient_of_variation);
            }
            println!();
        }
        println!(
            "combinations with CoV <= 0.1: {below_01}/{total} ({:.0}%)",
            100.0 * below_01 as f64 / total.max(1) as f64
        );
        println!();
    }
}
