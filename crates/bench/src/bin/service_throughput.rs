//! Service throughput — concurrent clients × precision targets against one
//! `sgc-service` instance.
//!
//! The paper's harness measures one tenant running a fixed trial count
//! (Figure 15); this binary measures the serving layer built on top of it:
//! many clients submitting jobs at once, adaptive early stopping trading
//! trials for precision, and the result cache absorbing repeated requests.
//! Each cell of the sweep reports throughput plus the service's own
//! metrics, so the effect of every mechanism is visible in one table:
//! tighter targets cost more trials, more clients raise the cache hit rate
//! (clients issue overlapping request sets), and "saved" counts the trials
//! early stopping avoided.
//!
//! Environment knobs (all optional):
//! * `SGC_SERVICE_CLIENTS` — comma-separated client counts (default `1,2,4`)
//! * `SGC_SERVICE_JOBS`    — jobs per client (default `8`)
//! * `SGC_SERVICE_BUDGET`  — trial budget per job (default `48`)
//! * `SGC_SERVICE_WORKERS` — worker threads (default: hardware threads)
//! * `SGC_SCALE`           — graph scale, as in every other experiment

use std::sync::Arc;
use std::time::Instant;

use sgc_bench::*;
use subgraph_counting::{CountJob, Precision, Service, ServiceConfig, ServiceError, StopReason};

fn env_usize_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse::<usize>().ok())
                .filter(|&v| v > 0)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn main() {
    print_header("Service throughput: concurrent clients x precision targets");
    let client_counts = env_usize_list("SGC_SERVICE_CLIENTS", &[1, 2, 4]);
    let jobs_per_client = env_usize("SGC_SERVICE_JOBS", 8);
    let budget = env_usize("SGC_SERVICE_BUDGET", 48);
    let workers = env_usize("SGC_SERVICE_WORKERS", max_threads());

    let graphs = benchmark_graphs(experiment_scale(), &["condMat"]);
    let graph = Arc::new(graphs.into_iter().next().expect("condMat analog").graph);
    let queries = benchmark_queries(query_subset());
    println!(
        "graph: condMat analog ({} vertices, {} edges), {} workers, \
         {} jobs/client, budget {} trials",
        graph.num_vertices(),
        graph.num_edges(),
        workers,
        jobs_per_client,
        budget
    );
    println!();
    println!(
        "{:>8} {:>10} {:>9} {:>9} {:>8} {:>9} {:>8} {:>8} {:>9}",
        "clients",
        "precision",
        "jobs/s",
        "seconds",
        "hit%",
        "computed",
        "trials",
        "saved",
        "early%"
    );

    let mut last_service = None;
    for &clients in &client_counts {
        for precision in [None, Some(0.3), Some(0.1)] {
            let service = Service::with_config(
                Arc::clone(&graph),
                ServiceConfig {
                    workers,
                    // Size admission so a full sweep cell fits; the point
                    // here is throughput, not rejection behaviour.
                    queue_capacity: (clients * jobs_per_client).max(8),
                    chunk_trials: 8,
                    trial_parallelism: false,
                    obs: true,
                    ..ServiceConfig::default()
                },
            );
            let started = Instant::now();
            let early_stops = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..clients)
                    .map(|_| {
                        // Every client submits the same job set: the
                        // overlap is what exercises the result cache, the
                        // way a fleet of identical analysis pipelines
                        // would.
                        let service = &service;
                        let queries = &queries;
                        scope.spawn(move || {
                            let mut early = 0usize;
                            for j in 0..jobs_per_client {
                                let bq = &queries[j % queries.len()];
                                let mut job = CountJob::new(bq.query.clone())
                                    .seed(1000 + (j / queries.len()) as u64)
                                    .budget(budget);
                                if let Some(target) = precision {
                                    job = job.precision(Precision::within(target));
                                }
                                let handle = loop {
                                    match service.submit(job.clone()) {
                                        Ok(handle) => break handle,
                                        Err(ServiceError::QueueFull { .. }) => {
                                            std::thread::yield_now();
                                        }
                                        Err(e) => panic!("submission failed: {e}"),
                                    }
                                };
                                let output = handle.wait().expect("catalog jobs always count");
                                assert!(output.trials_run <= budget);
                                if output.stop == StopReason::PrecisionMet
                                    && output.trials_run < budget
                                {
                                    early += 1;
                                }
                            }
                            early
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("client thread panicked"))
                    .sum::<usize>()
            });
            let seconds = started.elapsed().as_secs_f64();
            let metrics = service.metrics();
            let total_jobs = (clients * jobs_per_client) as f64;
            println!(
                "{:>8} {:>10} {:>9.1} {:>9.3} {:>7.0}% {:>9} {:>8} {:>8} {:>7.0}%",
                clients,
                precision.map_or("exact".to_string(), |t| format!("±{:.0}%", t * 100.0)),
                total_jobs / seconds.max(1e-9),
                seconds,
                100.0 * metrics.cache_hit_rate(),
                metrics.cache_misses,
                metrics.trials_executed,
                metrics.trials_saved,
                100.0 * early_stops as f64 / total_jobs,
            );
            last_service = Some(service);
        }
    }
    println!();
    println!(
        "precision ±x% = stop once the 95% CI half-width is within x% of the \
         estimate; 'saved' = budgeted trials adaptive stopping never ran; \
         'computed' = jobs that missed the result cache"
    );
    // End-of-run state of the final sweep cell as the unified registry
    // exposition — the same sorted `name value` lines the `metrics` wire
    // verb and the other bench bins emit, so scrapers parse one format.
    if let Some(service) = last_service {
        println!();
        println!(
            "--- metrics exposition (final cell) ---\n{}",
            service.exposition()
        );
    }
}
