//! Table 1 — benchmark data graphs and their degree statistics.
//!
//! Prints, for every synthetic analog, the paper's reported characteristics
//! next to the generated graph's measured ones, so the degree-skew fidelity
//! of the substitution can be inspected directly.

use sgc_bench::{benchmark_graphs, experiment_scale, print_header};
use subgraph_counting::graph::DegreeStats;

fn main() {
    print_header("Table 1: data graphs (paper values vs generated analogs)");
    println!(
        "{:<12} {:<10} | {:>9} {:>10} {:>7} {:>7} | {:>9} {:>10} {:>7} {:>7} {:>7}",
        "graph",
        "domain",
        "paper n",
        "paper m",
        "avg",
        "max",
        "gen n",
        "gen m",
        "avg",
        "max",
        "skew"
    );
    let scale = experiment_scale();
    for bg in benchmark_graphs(scale, &[]) {
        let stats = DegreeStats::compute(&bg.graph);
        println!(
            "{:<12} {:<10} | {:>9} {:>10} {:>7.1} {:>7} | {:>9} {:>10} {:>7.1} {:>7} {:>7.1}",
            bg.name,
            bg.spec.domain,
            bg.spec.paper_vertices,
            bg.spec.paper_edges,
            bg.spec.paper_avg_degree,
            bg.spec.paper_max_degree,
            stats.num_vertices,
            stats.num_edges,
            stats.avg_degree,
            stats.max_degree,
            stats.skew()
        );
    }
    println!();
    println!("generated at scale {scale}; max degree scales roughly with sqrt(scale) under Chung-Lu truncation");
}
