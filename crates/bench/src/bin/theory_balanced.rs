//! Claim 10.1 — truncated power-law degree sequences are λ-balanced with
//! λ = O(n^{α/2 − 1}).
//!
//! Measures the balancedness λ of generated power-law sequences for several
//! exponents and sizes, next to the claim's asymptotic prediction.

use sgc_bench::print_header;
use subgraph_counting::gen::power_law_degrees;
use subgraph_counting::theory::balanced::{balancedness, claim_10_1_lambda};

fn main() {
    print_header("Claim 10.1: balancedness of truncated power-law degree sequences");
    println!(
        "{:>8} {:>6} | {:>14} {:>18} {:>8}",
        "n", "alpha", "measured λ", "predicted n^(α/2-1)", "ratio"
    );
    for exp in [12u32, 14, 16] {
        let n = 1usize << exp;
        for &alpha in &[1.2f64, 1.5, 1.8] {
            let degrees = power_law_degrees(n, alpha);
            let measured = balancedness(&degrees, 3);
            let predicted = claim_10_1_lambda(n, alpha);
            println!(
                "{:>8} {:>6.1} | {:>14.6} {:>18.6} {:>8.2}",
                n,
                alpha,
                measured,
                predicted,
                measured / predicted
            );
        }
    }
    println!();
    println!("expected shape: measured λ tracks the predicted n^(α/2-1) within a constant factor, and shrinks with n");
}
