//! Theorem 9.1 / Corollary 9.9 — measured X(q) and Y(q) on Chung-Lu
//! power-law graphs, against the analytic bounds.
//!
//! `Y(q)` is the number of simple q-node paths whose first node has the
//! highest id (the simplified PS procedure's work), `X(q)` the number of
//! high-starting paths (the simplified DB procedure's work). On truncated
//! power-law sequences with exponent α ∈ (1, 2), the theory predicts
//! `X(q) / Y(q) → 0` polynomially in n; this binary reports both the measured
//! counts on sampled graphs and the closed-form bounds on the expected
//! degree sequence.

use sgc_bench::print_header;
use subgraph_counting::gen::{chung_lu, power_law_degrees};
use subgraph_counting::graph::DegreeOrder;
use subgraph_counting::theory::bounds::{x_upper_bound, y_lower_bound};
use subgraph_counting::theory::{count_high_starting_paths, count_id_ordered_paths};

fn main() {
    print_header("Section 9: X(q) vs Y(q) on Chung-Lu power-law graphs");
    let alpha = 1.5;
    println!("power-law exponent alpha = {alpha}");
    println!(
        "{:>8} {:>3} | {:>14} {:>14} {:>9} | {:>14} {:>14} {:>9}",
        "n", "q", "measured Y", "measured X", "X/Y", "bound E[Y]>=", "bound E[X]<=", "ratio"
    );
    for exp in [10u32, 12, 14] {
        let n = 1usize << exp;
        let degrees = power_law_degrees(n, alpha);
        let graph = chung_lu(&degrees, 33);
        let order = DegreeOrder::new(&graph);
        for q in [3usize, 4] {
            let y = count_id_ordered_paths(&graph, q);
            let x = count_high_starting_paths(&graph, &order, q);
            let y_bound = y_lower_bound(&degrees, q);
            let x_bound = x_upper_bound(&degrees, q);
            println!(
                "{:>8} {:>3} | {:>14} {:>14} {:>9.4} | {:>14.0} {:>14.0} {:>9.4}",
                n,
                q,
                y,
                x,
                x as f64 / y.max(1) as f64,
                y_bound,
                x_bound,
                x_bound / y_bound
            );
        }
    }
    println!();
    println!(
        "expected shape: the X/Y ratio (measured and bounded) shrinks as n grows — Corollary 9.9"
    );
}
