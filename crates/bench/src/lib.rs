//! # sgc-bench — experiment harness
//!
//! Shared helpers for the experiment binaries that regenerate every table and
//! figure of the paper's evaluation (Section 8) and for the Criterion
//! microbenchmarks. Each binary prints the rows/series of the corresponding
//! paper artifact; see `EXPERIMENTS.md` at the repository root for the
//! mapping and for the recorded results.
//!
//! All experiments run at a configurable fraction of the paper's graph sizes
//! (the `SGC_SCALE` environment variable, default `0.02`), because the paper
//! used up to 512 Blue Gene/Q cores and this harness targets a laptop. The
//! *shape* of the results (who wins, by what factor, how scaling behaves) is
//! what is being reproduced, not the absolute numbers.

use std::time::Instant;
use subgraph_counting::core::{Algorithm, CountResult, Engine};
use subgraph_counting::engine::parallel::run_with_threads;
use subgraph_counting::gen::catalog::{GraphSpec, TABLE1_ANALOGS};
use subgraph_counting::graph::{Coloring, CsrGraph};
use subgraph_counting::query::{catalog, heuristic_plan, DecompositionTree, QueryGraph, Registry};

/// The default fraction of the paper's graph sizes used by the experiments.
pub const DEFAULT_SCALE: f64 = 0.02;

/// Reads the experiment scale from `SGC_SCALE` (fraction of the paper's graph
/// sizes), falling back to [`DEFAULT_SCALE`].
pub fn experiment_scale() -> f64 {
    std::env::var("SGC_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0 && s <= 1.0)
        .unwrap_or(DEFAULT_SCALE)
}

/// Whether the full 10×10 graph-query cross product should be run
/// (`SGC_FULL=1`); the default is a representative quick subset so that every
/// experiment binary finishes in minutes on a laptop.
pub fn full_suite() -> bool {
    std::env::var("SGC_FULL").map(|v| v == "1").unwrap_or(false)
}

/// The graph subset selected by [`full_suite`].
pub fn graph_subset() -> &'static [&'static str] {
    if full_suite() {
        &[]
    } else {
        QUICK_GRAPHS
    }
}

/// The query subset selected by [`full_suite`].
pub fn query_subset() -> &'static [&'static str] {
    if full_suite() {
        &[]
    } else {
        QUICK_QUERIES
    }
}

/// Reads a positive integer from the environment, falling back to
/// `default` when the variable is unset, unparsable or zero — the shared
/// parse policy of every experiment knob (`SGC_RANKS`, `SGC_SHARDS`, the
/// `SGC_SERVICE_*` family).
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// [`env_usize`] for `u64`-valued knobs (seeds). Zero is a valid seed, so
/// unlike the count knobs it is not filtered out.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(default)
}

/// Reads the number of simulated ranks from `SGC_RANKS` (default 64).
pub fn simulated_ranks() -> usize {
    env_usize("SGC_RANKS", 64)
}

/// Reads the shard count for sharded-runtime experiments from `SGC_SHARDS`
/// (default: the hardware thread count, one shard per worker).
pub fn shard_count() -> usize {
    env_usize("SGC_SHARDS", max_threads())
}

/// A named, generated benchmark graph.
pub struct BenchGraph {
    /// Table 1 name.
    pub name: &'static str,
    /// The generating spec.
    pub spec: &'static GraphSpec,
    /// The generated analog.
    pub graph: CsrGraph,
}

/// Generates the Table 1 analog suite at the given scale.
///
/// `subset` limits the suite to the named graphs (empty = all ten).
pub fn benchmark_graphs(scale: f64, subset: &[&str]) -> Vec<BenchGraph> {
    TABLE1_ANALOGS
        .iter()
        .filter(|spec| subset.is_empty() || subset.contains(&spec.name))
        .map(|spec| BenchGraph {
            name: spec.name,
            spec,
            graph: spec.generate(scale, 0xC0FFEE),
        })
        .collect()
}

/// The graphs used by the quick experiment suite (a representative subset
/// covering high skew, moderate skew and low skew).
pub const QUICK_GRAPHS: &[&str] = &["condMat", "enron", "astroph", "roadNetCA"];

/// A named benchmark query.
pub struct BenchQuery {
    /// Figure 8 name.
    pub name: &'static str,
    /// The query graph.
    pub query: QueryGraph,
    /// The heuristic decomposition plan.
    pub plan: DecompositionTree,
}

/// The benchmark query suite with heuristic plans.
///
/// An empty `subset` is the ten-query Figure 8 suite (the paper's 10×10
/// cross product); a non-empty subset resolves each name through the
/// built-in [`Registry`] — the same case-insensitive path the pattern
/// parser and the service use, so `satellite` and mixed-case names work —
/// and a name the registry does not know panics loudly instead of silently
/// shrinking the experiment.
///
/// # Panics
/// If `subset` contains a name the catalog does not register.
pub fn benchmark_queries(subset: &[&str]) -> Vec<BenchQuery> {
    let registry = Registry::builtin();
    let names: Vec<&'static str> = if subset.is_empty() {
        catalog::FIGURE8_QUERIES.iter().map(|s| s.name).collect()
    } else {
        subset
            .iter()
            .map(|name| {
                registry
                    .get(name)
                    .unwrap_or_else(|| {
                        panic!(
                            "unknown query `{name}` in experiment subset; registered names: {}",
                            catalog::names().join(", ")
                        )
                    })
                    .name()
            })
            .collect()
    };
    names
        .into_iter()
        .map(|name| {
            let query = registry.build(name).expect("name resolved above");
            let plan = heuristic_plan(&query).expect("registered queries are treewidth-2");
            BenchQuery { name, query, plan }
        })
        .collect()
}

/// The queries used by the quick experiment suite.
pub const QUICK_QUERIES: &[&str] = &["youtube", "glet1", "glet2", "wiki", "dros", "ecoli1"];

/// Runs one colorful count and returns the result together with the
/// wall-clock seconds it took.
///
/// The engine is bound inside the timed region, so the measurement includes
/// the per-run preprocessing — the same quantity the pre-`Engine` harness
/// measured. Use [`timed_count_with_engine`] to measure amortized counting.
pub fn timed_count(
    graph: &CsrGraph,
    plan: &DecompositionTree,
    algorithm: Algorithm,
    threads: usize,
    seed: u64,
) -> (CountResult, f64) {
    // The coloring is drawn outside the timed region, as the pre-`Engine`
    // harness did; binding the engine (the preprocessing) stays inside it.
    let coloring = Coloring::random(graph.num_vertices(), plan.query.num_nodes(), seed);
    let started = Instant::now();
    let result = run_with_threads(threads, || {
        Engine::new(graph)
            .count(&plan.query)
            .plan(plan)
            .algorithm(algorithm)
            .ranks(simulated_ranks())
            .coloring(&coloring)
            .run()
            .expect("benchmark graphs and catalog plans are always valid")
    });
    (result, started.elapsed().as_secs_f64())
}

/// Runs one colorful count on an already-bound [`Engine`], timing only the
/// counting itself (the preprocessing is amortized across calls).
pub fn timed_count_with_engine(
    engine: &Engine<'_>,
    plan: &DecompositionTree,
    algorithm: Algorithm,
    threads: usize,
    seed: u64,
) -> (CountResult, f64) {
    let graph = engine.graph();
    let coloring = Coloring::random(graph.num_vertices(), plan.query.num_nodes(), seed);
    let started = Instant::now();
    let result = run_with_threads(threads, || {
        engine
            .count(&plan.query)
            .plan(plan)
            .algorithm(algorithm)
            .ranks(simulated_ranks())
            .coloring(&coloring)
            .run()
            .expect("benchmark graphs and catalog plans are always valid")
    });
    (result, started.elapsed().as_secs_f64())
}

/// Runs one colorful count through the sharded rank-runtime with
/// `num_shards` shards on a pool of `num_shards` worker threads, timing only
/// the counting (the engine is bound by the caller and amortized).
///
/// This is what the Figure 13 scaling experiments measure since the sharded
/// runtime landed: real vertex-partitioned execution with partial-sum
/// exchange, not simulated ranks. The returned metrics carry
/// `RunMetrics::shards` with the per-shard load and exchange accounting.
pub fn timed_count_sharded(
    engine: &Engine<'_>,
    plan: &DecompositionTree,
    algorithm: Algorithm,
    num_shards: usize,
    seed: u64,
) -> (CountResult, f64) {
    let graph = engine.graph();
    let coloring = Coloring::random(graph.num_vertices(), plan.query.num_nodes(), seed);
    let started = Instant::now();
    let result = run_with_threads(num_shards, || {
        engine
            .count(&plan.query)
            .plan(plan)
            .algorithm(algorithm)
            .ranks(simulated_ranks())
            .coloring(&coloring)
            .sharded(num_shards)
            .run()
            .expect("benchmark graphs and catalog plans are always valid")
    });
    (result, started.elapsed().as_secs_f64())
}

/// The number of hardware threads used as the "high parallelism" setting.
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Geometric mean of a slice of positive numbers.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Prints the standard experiment header (scale, thread counts, ranks).
pub fn print_header(title: &str) {
    println!("==== {title} ====");
    println!(
        "scale = {} of the paper's graph sizes, threads = {}, simulated ranks = {}",
        experiment_scale(),
        max_threads(),
        simulated_ranks()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_and_parses() {
        // The environment is not modified here; just check the default range.
        let s = experiment_scale();
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn benchmark_suites_are_nonempty() {
        let graphs = benchmark_graphs(0.005, QUICK_GRAPHS);
        assert_eq!(graphs.len(), QUICK_GRAPHS.len());
        let queries = benchmark_queries(QUICK_QUERIES);
        assert_eq!(queries.len(), QUICK_QUERIES.len());
        let all_queries = benchmark_queries(&[]);
        assert_eq!(all_queries.len(), 10);
        // Every bench query name is a registered catalog name.
        for q in &all_queries {
            assert!(catalog::names().contains(&q.name));
        }
        // Subsets resolve case-insensitively and beyond Figure 8: the same
        // registry path the pattern parser uses.
        let cased = benchmark_queries(&["DROS", "satellite"]);
        assert_eq!(cased.len(), 2);
        assert_eq!(cased[0].name, "dros");
        assert_eq!(cased[1].name, "satellite");
        assert_eq!(cased[1].query.num_nodes(), 11);
    }

    #[test]
    #[should_panic(expected = "unknown query `tirangle`")]
    fn misspelled_subset_names_panic_loudly() {
        benchmark_queries(&["tirangle"]);
    }

    #[test]
    fn timed_count_agrees_across_algorithms() {
        let graphs = benchmark_graphs(0.003, &["condMat"]);
        let queries = benchmark_queries(&["youtube"]);
        let (ps, _) = timed_count(
            &graphs[0].graph,
            &queries[0].plan,
            Algorithm::PathSplitting,
            2,
            1,
        );
        let (db, _) = timed_count(
            &graphs[0].graph,
            &queries[0].plan,
            Algorithm::DegreeBased,
            2,
            1,
        );
        assert_eq!(ps.colorful_matches, db.colorful_matches);

        // The amortized variant counts the same thing on a shared engine.
        let engine = Engine::new(&graphs[0].graph);
        for _ in 0..2 {
            let (amortized, _) =
                timed_count_with_engine(&engine, &queries[0].plan, Algorithm::DegreeBased, 2, 1);
            assert_eq!(amortized.colorful_matches, db.colorful_matches);
        }

        // The sharded runtime returns the same count for every shard count
        // and reports per-shard metrics.
        for shards in [1usize, 2, 4] {
            let (sharded, _) =
                timed_count_sharded(&engine, &queries[0].plan, Algorithm::DegreeBased, shards, 1);
            assert_eq!(sharded.colorful_matches, db.colorful_matches);
            let metrics = sharded.metrics.shards.expect("sharded metrics present");
            assert_eq!(metrics.num_shards(), shards);
        }
    }

    #[test]
    fn shard_count_is_positive() {
        assert!(shard_count() >= 1);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}
