//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crate registry, so this
//! crate vendors the subset of the criterion API the workspace's benches use:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `b.iter(..)`,
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: after one warm-up call, each
//! benchmark body is re-run until either `sample_size` iterations or a small
//! wall-clock budget is reached, and the minimum / mean / maximum iteration
//! times are printed. When the binary is invoked with `--test` (as `cargo
//! test` does for `harness = false` bench targets) every benchmark runs
//! exactly once, as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a benchmark body.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for a parameterized benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
    min: Duration,
    max: Duration,
    budget: Duration,
    max_iters: u64,
}

impl Bencher {
    fn new(sample_size: u64, test_mode: bool) -> Self {
        Bencher {
            iters_done: 0,
            total: Duration::ZERO,
            min: Duration::MAX,
            max: Duration::ZERO,
            budget: if test_mode {
                Duration::ZERO
            } else {
                Duration::from_millis(200)
            },
            max_iters: if test_mode { 1 } else { sample_size },
        }
    }

    /// Runs `routine` repeatedly, recording per-iteration wall-clock times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, not recorded
        loop {
            let started = Instant::now();
            black_box(routine());
            let elapsed = started.elapsed();
            self.iters_done += 1;
            self.total += elapsed;
            self.min = self.min.min(elapsed);
            self.max = self.max.max(elapsed);
            if self.iters_done >= self.max_iters || self.total >= self.budget {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.iters_done == 0 {
            println!("{id:<50} (no iterations recorded)");
            return;
        }
        let mean = self.total / self.iters_done as u32;
        println!(
            "{id:<50} time: [{:>12?} {:>12?} {:>12?}]  ({} iterations)",
            self.min, mean, self.max, self.iters_done
        );
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (no-op in the stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size, self.test_mode);
        f(&mut bencher);
        bencher.report(&id.into());
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration target.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher::new(sample_size, self.criterion.test_mode);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        self.run(id.into(), f);
        self
    }

    /// Benchmarks a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.id.clone(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
