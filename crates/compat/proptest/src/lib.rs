//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crate registry, so this
//! crate vendors the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro, range / tuple / `collection::vec`
//! strategies, [`ProptestConfig`] and the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case reports the
//! case number and the assertion message. Generation is deterministic (a
//! fixed seed per test function), so failures are reproducible.

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub mod test_runner {
    /// Deterministic generator for property-test inputs (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A deterministic generator with a fixed seed.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x0DDB_1A5E_5BAD_5EED,
            }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// Types that can generate a random value for a property test.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).checked_sub(self.start as u64)
                    .filter(|&s| s > 0)
                    .expect("empty range strategy");
                (self.start as u64 + rng.below(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with a length drawn from `size` and elements drawn
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A `Vec` strategy, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests, mirroring proptest's macro (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `assert!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

pub mod prelude {
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 0usize..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vectors_respect_size_and_element_ranges(
            v in crate::collection::vec((0u8..4, 0u8..4), 2..10),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 10, "bad length {}", v.len());
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert_eq!(b < 4, true);
            }
        }
    }

    #[test]
    fn default_macro_arm_without_config_compiles() {
        proptest! {
            #[allow(dead_code)]
            fn inner(x in 0u32..10) {
                prop_assert!(x < 10);
            }
        }
        inner();
    }
}
