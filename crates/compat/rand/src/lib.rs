//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crate registry, so this
//! crate vendors the small subset of the `rand` 0.8 API the workspace uses:
//! [`SeedableRng`], [`Rng`], [`rngs::StdRng`], [`distributions::Uniform`] and
//! [`seq::SliceRandom`]. The generator is xoshiro256** seeded via SplitMix64 —
//! not the upstream implementation, but a high-quality deterministic PRNG with
//! the same contract (identical seed ⇒ identical stream).

/// Types that can construct themselves from a seed.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The low-level generator interface: a stream of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Sampling conveniences layered on [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (e.g. `f64` in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from their "standard" distribution.
pub trait Standard: Sized {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over a half-open range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from an empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                // Widening multiply maps a 64-bit word onto the span with
                // negligible bias for the spans used here.
                let offset = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (low as u128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample from an empty range");
        let unit = f64::sample_standard(rng);
        low + unit * (high - low)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

pub mod distributions {
    use super::{Rng, RngCore, SampleUniform};

    /// Distributions that can be sampled with any [`Rng`].
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform + Copy + PartialOrd> Uniform<T> {
        /// Creates a uniform distribution over `[low, high)`.
        ///
        /// # Panics
        /// Panics if the range is empty.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new called with an empty range");
            Uniform { low, high }
        }
    }

    impl<T: SampleUniform + Copy> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> T {
            rng.gen_range(self.low..self.high)
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_covers_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(5u8..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        let dist = distributions::Uniform::new(0u8, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hist = [0usize; 4];
        for _ in 0..4_000 {
            hist[distributions::Distribution::sample(&dist, &mut rng) as usize] += 1;
        }
        for &count in &hist {
            assert!(count > 500, "uniform sampler is badly skewed: {hist:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
