//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access to a crate registry, so this
//! crate vendors the subset of the `rayon` API the workspace uses. Unlike a
//! sequential shim, `map` stages genuinely run in parallel: base items are
//! split into one group per configured thread and executed under
//! [`std::thread::scope`], with item order preserved. "Thread pools" are
//! modelled as a thread-local parallelism degree consulted by
//! [`current_num_threads`]; work is spawned on demand rather than kept on
//! persistent workers, which preserves rayon's observable semantics
//! (determinism, ordering, pool-size reporting) at the cost of spawn overhead.

use std::cell::Cell;
use std::fmt;

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads the current "pool" is configured with.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|t| t.get())
        .unwrap_or_else(default_threads)
}

/// Error building a thread pool. The stand-in never fails to build, but the
/// type is kept so `Result`-based callers compile unchanged.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool size; `0` means the hardware default.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A scoped parallelism degree, mirroring `rayon::ThreadPool`.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with [`current_num_threads`] reporting this pool's size.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        POOL_THREADS.with(|t| {
            let previous = t.get();
            t.set(Some(self.num_threads));
            let result = op();
            t.set(previous);
            result
        })
    }
}

/// Applies `f` to every item on up to [`current_num_threads`] scoped threads,
/// preserving input order in the output.
///
/// Worker threads run with a parallelism degree of 1: a nested parallel
/// stage inside `f` executes sequentially on its worker instead of spawning
/// further threads. This keeps the total thread count bounded by the outer
/// pool size (real rayon achieves the same by making nested work share one
/// pool) and makes `ThreadPoolBuilder::num_threads(n)` an actual cap rather
/// than a per-level multiplier.
fn par_apply<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let group_size = items.len().div_ceil(threads);
    let mut groups: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    loop {
        let group: Vec<T> = items.by_ref().take(group_size).collect();
        if group.is_empty() {
            break;
        }
        groups.push(group);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| {
                scope.spawn(move || {
                    POOL_THREADS.with(|t| t.set(Some(1)));
                    group.into_iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// An eager "parallel iterator": a materialized list of items whose `map`
/// stage executes across threads.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Materializes the items (running any pending parallel stages).
    fn items(self) -> Vec<Self::Item>;

    /// Parallel map: `f` runs across threads, order preserved.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Groups items into `Vec`s of at most `size` elements.
    fn chunks(self, size: usize) -> Chunks<Self> {
        assert!(size > 0, "chunk size must be positive");
        Chunks { base: self, size }
    }

    /// Collects the items into `C`.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.items().into_iter().collect()
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.items().into_iter().sum()
    }
}

/// A parallel `map` stage. See [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;

    fn items(self) -> Vec<R> {
        par_apply(self.base.items(), self.f)
    }
}

/// A grouping stage. See [`ParallelIterator::chunks`].
pub struct Chunks<I> {
    base: I,
    size: usize,
}

impl<I: ParallelIterator> ParallelIterator for Chunks<I> {
    type Item = Vec<I::Item>;

    fn items(self) -> Vec<Vec<I::Item>> {
        let mut out = Vec::new();
        let mut items = self.base.items().into_iter();
        loop {
            let group: Vec<I::Item> = items.by_ref().take(self.size).collect();
            if group.is_empty() {
                break out;
            }
            out.push(group);
        }
    }
}

/// Parallel iterator over borrowed chunks of a slice.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn items(self) -> Vec<&'a [T]> {
        self.slice.chunks(self.size).collect()
    }
}

/// Parallel iterator over borrowed elements of a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn items(self) -> Vec<&'a T> {
        self.slice.iter().collect()
    }
}

/// Parallel iterator over owned elements of a `Vec`.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn items(self) -> Vec<T> {
        self.items
    }
}

/// `par_chunks` / `par_iter` on slices, mirroring `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;

    /// Parallel iterator over borrowed elements.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunks { slice: self, size }
    }

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// `into_par_iter`, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator over owned items.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;

    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn install_scopes_the_reported_thread_count() {
        let outer = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn par_chunks_map_collect_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let sums: Vec<u64> = items.par_chunks(100).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 100);
        assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>());
        let sequential: Vec<u64> = items.chunks(100).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, sequential);
    }

    #[test]
    fn par_iter_map_sum_matches_sequential() {
        let items: Vec<u64> = (0..1_000).collect();
        let total: u64 = items.par_iter().map(|&x| x * 2).sum();
        assert_eq!(total, items.iter().map(|&x| x * 2).sum::<u64>());
    }

    #[test]
    fn into_par_iter_chunks_groups_in_order() {
        let groups: Vec<Vec<u32>> = (0..7)
            .collect::<Vec<u32>>()
            .into_par_iter()
            .chunks(2)
            .collect();
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6]]);
    }

    #[test]
    fn nested_parallel_stages_do_not_multiply_threads() {
        // Workers report a parallelism degree of 1, so a nested map inside a
        // 4-thread outer map runs sequentially per worker instead of
        // spawning 4 threads each.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let nested_degrees: Vec<usize> = pool.install(|| {
            (0..8u32)
                .collect::<Vec<_>>()
                .par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert_eq!(nested_degrees, vec![1; 8]);
    }

    #[test]
    fn map_runs_under_a_sized_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let total: u64 =
            pool.install(|| (0..100u64).collect::<Vec<_>>().par_iter().map(|&x| x).sum());
        assert_eq!(total, 4950);
    }
}
