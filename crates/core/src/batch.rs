//! Batched multi-query execution: one coloring pass, many counts.
//!
//! The paper's experimental workload (Figure 8) estimates a whole catalog of
//! treewidth-2 queries over the *same* data graph. Run one query at a time,
//! every trial of every query draws its own random coloring and runs its own
//! dynamic program — the per-trial work is paid `|queries| × trials` times
//! even though most of it is identical across the batch. This module is the
//! shared-scan form of that workload, the same amortization concurrent
//! query engines apply to batched operators over one table scan:
//!
//! * **shared colorings** — within one trial step, every query with the
//!   same node count `k` and the same effective seed `seed + t` colors the
//!   graph identically, so the coloring is drawn once and shared,
//! * **plan-set dedup** — structurally identical queries (same
//!   [`canonical_key`](sgc_query::canonical_key)) share one decomposition
//!   plan *and one DP result per coloring*: the second copy of a query in a
//!   batch costs nothing per trial,
//! * **shared exchange rounds** — under sharded execution, all queries
//!   active in a block step combine their per-shard partial sums in a
//!   single exchange round
//!   ([`combine_round`](crate::runtime::exchange::combine_round)) instead
//!   of one round per query.
//!
//! The contract that keeps this testable: **batched ≡ solo, bit-identical**.
//! Trial `i` of a request still colors with `seed + i` and runs the same DP
//! against the same plan, so a batch changes *how often* shared work
//! happens, never what any individual query observes. `tests/batch.rs` and
//! the property suite enforce this against the solo engine path.

use crate::config::Algorithm;
use crate::context::Context;
use crate::driver::count_with_context;
use crate::engine::{CountRequest, Engine, PlanRef};
use crate::error::SgcError;
use crate::estimator::{summarize_trials, Estimate};
use crate::kernel::KernelKind;
use crate::runtime::shard::{count_many_sharded, ShardedBatchJob};
use sgc_engine::parallel::parallel_indexed;
use sgc_engine::Count;
use sgc_graph::Coloring;
use sgc_query::canonical_groups;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::Instant;

/// What a batch shared, per [`BatchResult`].
///
/// A *cell* is one (query, trial) pair — the unit of work a solo sweep pays
/// for individually. The sharing counters relate cells to the work actually
/// performed: `cells == colorings_drawn + colorings_shared` and
/// `cells == dp_runs + dp_shared`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchMetrics {
    /// Requests in the batch.
    pub queries: usize,
    /// Structurally distinct queries (distinct canonical keys) — the number
    /// of decomposition plans the batch actually needed.
    pub unique_plans: usize,
    /// Requests that shared another request's plan (and per-coloring DP
    /// results): `queries - unique_plans`.
    pub plans_deduped: usize,
    /// Trials each request ran, in request order.
    pub trials_per_query: Vec<usize>,
    /// Total (query, trial) cells executed: `Σ trials_per_query`.
    pub cells: u64,
    /// Random colorings actually drawn — one per distinct (node count,
    /// effective seed) pair per trial step.
    pub colorings_drawn: u64,
    /// Cells that reused a coloring drawn for another cell of the same
    /// trial step instead of drawing their own.
    pub colorings_shared: u64,
    /// Dynamic-program executions actually run.
    pub dp_runs: u64,
    /// Cells served by another cell's DP result (structurally identical
    /// query, same algorithm and effective seed).
    pub dp_shared: u64,
    /// Shared exchange rounds synchronized on by the batch-aware sharded
    /// runtime (zero for unsharded execution). Solo sharded runs of the
    /// same cells would pay one round per block per DP run.
    pub exchange_rounds: u64,
    /// Wall-clock seconds for the whole batch.
    pub total_seconds: f64,
}

/// The outcome of [`Engine::count_batch`]: one [`Estimate`] per request (in
/// request order, each bit-identical to the request's solo `estimate()`)
/// plus the batch's sharing metrics.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Per-request estimates, in submission order.
    ///
    /// Each estimate's `total_seconds` is the cost of the DP runs that
    /// produced *its* trials; a member served by a shared DP run reports
    /// that run's time (its solo-equivalent cost). Summed member seconds
    /// can therefore exceed [`BatchMetrics::total_seconds`] — that surplus
    /// is exactly the work sharing avoided.
    pub estimates: Vec<Estimate>,
    /// What the batch shared while producing them.
    pub metrics: BatchMetrics,
}

/// One validated member of the batch.
struct Member<'a> {
    plan: PlanRef<'a>,
    algorithm: Algorithm,
    kernel: KernelKind,
    seed: u64,
    trials: usize,
    num_ranks: usize,
    /// Whether this member's cells record observability spans and publish
    /// run counters.
    obs: bool,
    /// Node count of the query — the color count of its trials.
    k: usize,
    /// Index of this member's first structural twin in the batch (its own
    /// index for first occurrences); the DP dedup key.
    group: usize,
}

/// One deduplicated DP execution of a trial step.
struct StepJob {
    /// Representative member (supplies plan, algorithm, ranks).
    member: usize,
    /// Index into the step's shared coloring pool.
    coloring: usize,
}

/// The batch executor behind [`Engine::count_batch`]; see there for the
/// public contract.
pub(crate) fn execute<'g, 'a>(
    engine: &Engine<'g>,
    requests: &[CountRequest<'_, 'g, 'a>],
) -> Result<BatchResult, SgcError> {
    let started = Instant::now();
    let groups = canonical_groups(requests.iter().map(|r| r.query.as_ref()));
    let mut members = Vec::with_capacity(requests.len());
    let mut shards: Option<usize> = None;
    for (request, &group) in requests.iter().zip(&groups) {
        if !std::ptr::eq(request.engine, engine) {
            return Err(SgcError::EngineMismatch);
        }
        if request.coloring.is_some() {
            return Err(SgcError::ColoringWithEstimate);
        }
        if request.trials == 0 {
            return Err(SgcError::ZeroTrials);
        }
        if request.num_ranks == 0 {
            return Err(SgcError::ZeroRanks);
        }
        if let Some(s) = request.shards {
            if s == 0 {
                return Err(SgcError::ZeroShards);
            }
            shards = Some(shards.unwrap_or(0).max(s));
        }
        members.push(Member {
            plan: request.resolve_plan()?,
            algorithm: request.algorithm,
            kernel: request.kernel,
            seed: request.seed,
            trials: request.trials,
            num_ranks: request.num_ranks,
            obs: request.obs,
            k: request.query.num_nodes(),
            group,
        });
    }

    let mut metrics = BatchMetrics {
        queries: members.len(),
        unique_plans: groups.iter().enumerate().filter(|&(i, &g)| i == g).count(),
        trials_per_query: members.iter().map(|m| m.trials).collect(),
        ..BatchMetrics::default()
    };
    metrics.plans_deduped = metrics.queries - metrics.unique_plans;

    // Same convention as `CountRequest::estimate`: per-trial sharding
    // applies when the cells run sequentially, which for a batch means
    // every member opted out of trial parallelism — a single member that
    // kept the default parallel trials keeps the whole batch on the
    // parallel-cells path (counts are bit-identical either way).
    let parallel = requests.iter().any(|r| r.parallel);
    let sharded = if parallel { None } else { shards };

    let n = engine.graph().num_vertices();
    let max_trials = members.iter().map(|m| m.trials).max().unwrap_or(0);
    let mut per_trial: Vec<Vec<Count>> = members
        .iter()
        .map(|m| Vec::with_capacity(m.trials))
        .collect();
    let mut seconds: Vec<f64> = vec![0.0; members.len()];

    for t in 0..max_trials {
        // One coloring pass for the whole step: draw each distinct
        // (node count, effective seed) coloring exactly once.
        let mut colorings: Vec<Coloring> = Vec::new();
        let mut coloring_of: HashMap<(usize, u64), usize> = HashMap::new();
        // ... and one DP run per distinct (structure, algorithm, seed).
        let mut step_jobs: Vec<StepJob> = Vec::new();
        let mut job_of: HashMap<(usize, Algorithm, KernelKind, u64), usize> = HashMap::new();
        // (member, step job serving it) for every cell of this step.
        let mut cells: Vec<(usize, usize)> = Vec::new();
        for (i, member) in members.iter().enumerate() {
            if t >= member.trials {
                continue;
            }
            let eff_seed = member.seed.wrapping_add(t as u64);
            let coloring = match coloring_of.entry((member.k, eff_seed)) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let _span = member.obs.then(|| sgc_obs::span(sgc_obs::Stage::Coloring));
                    colorings.push(Coloring::random(n, member.k, eff_seed));
                    *e.insert(colorings.len() - 1)
                }
            };
            let job = match job_of.entry((member.group, member.algorithm, member.kernel, eff_seed))
            {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    step_jobs.push(StepJob {
                        member: i,
                        coloring,
                    });
                    *e.insert(step_jobs.len() - 1)
                }
            };
            cells.push((i, job));
        }
        metrics.cells += cells.len() as u64;
        metrics.colorings_drawn += colorings.len() as u64;
        metrics.colorings_shared += (cells.len() - colorings.len()) as u64;
        metrics.dp_runs += step_jobs.len() as u64;
        metrics.dp_shared += (cells.len() - step_jobs.len()) as u64;

        let outcomes: Vec<(Count, f64)> = match sharded {
            Some(num_shards) => {
                let jobs: Vec<ShardedBatchJob<'_>> = step_jobs
                    .iter()
                    .map(|job| ShardedBatchJob {
                        coloring: &colorings[job.coloring],
                        plan: &members[job.member].plan,
                        algorithm: members[job.member].algorithm,
                        num_ranks: members[job.member].num_ranks,
                        kernel: members[job.member].kernel,
                        obs: members[job.member].obs,
                    })
                    .collect();
                let outcome = count_many_sharded(
                    engine.graph(),
                    engine.prep(),
                    &jobs,
                    num_shards,
                    engine.arena_pool(),
                )?;
                metrics.exchange_rounds += outcome.shared_rounds;
                for (job, result) in step_jobs.iter().zip(&outcome.results) {
                    if members[job.member].obs && sgc_obs::enabled() {
                        result.metrics.publish();
                    }
                }
                outcome
                    .results
                    .into_iter()
                    .map(|r| (r.colorful_matches, r.metrics.elapsed.as_secs_f64()))
                    .collect()
            }
            None => {
                let run = |j: usize| -> (Count, f64) {
                    let job = &step_jobs[j];
                    let member = &members[job.member];
                    // Cells may run on worker threads that don't inherit the
                    // submitter's obs state, so obs-off members re-suspend.
                    let _pause = (!member.obs).then(sgc_obs::suspend);
                    let ctx = Context::new(
                        engine.graph(),
                        engine.prep(),
                        &colorings[job.coloring],
                        member.num_ranks,
                    )
                    .expect("batch-drawn colorings always cover the graph");
                    let result = count_with_context(
                        &ctx,
                        &member.plan,
                        member.algorithm,
                        member.kernel,
                        engine.arena_pool(),
                    );
                    if member.obs && sgc_obs::enabled() {
                        result.metrics.publish();
                    }
                    (
                        result.colorful_matches,
                        result.metrics.elapsed.as_secs_f64(),
                    )
                };
                if parallel {
                    parallel_indexed(step_jobs.len(), run)
                } else {
                    (0..step_jobs.len()).map(run).collect()
                }
            }
        };
        for (member, job) in cells {
            per_trial[member].push(outcomes[job].0);
            seconds[member] += outcomes[job].1;
        }
    }

    let estimates = members
        .iter()
        .enumerate()
        .map(|(i, member)| {
            summarize_trials(
                std::mem::take(&mut per_trial[i]),
                &member.plan.query,
                seconds[i],
            )
        })
        .collect();
    metrics.total_seconds = started.elapsed().as_secs_f64();
    Ok(BatchResult { estimates, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_graph::{CsrGraph, GraphBuilder};
    use sgc_query::{catalog, QueryGraph};

    fn demo_graph() -> CsrGraph {
        let mut b = GraphBuilder::new(10);
        b.extend_edges([
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (0, 5),
            (5, 6),
            (6, 1),
            (2, 7),
            (7, 8),
            (8, 3),
            (4, 9),
            (9, 0),
            (5, 2),
            (6, 3),
        ]);
        b.build()
    }

    #[test]
    fn batch_is_bit_identical_to_solo_per_query() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        let queries = [catalog::triangle(), catalog::cycle(4), catalog::glet1()];
        let requests: Vec<_> = queries
            .iter()
            .map(|q| engine.count(q).trials(6).seed(41))
            .collect();
        let batch = engine.count_batch(&requests).unwrap();
        assert_eq!(batch.estimates.len(), 3);
        for (query, estimate) in queries.iter().zip(&batch.estimates) {
            let solo = engine.count(query).trials(6).seed(41).estimate().unwrap();
            assert_eq!(estimate.per_trial, solo.per_trial);
            assert_eq!(
                estimate.estimated_matches.to_bits(),
                solo.estimated_matches.to_bits()
            );
            assert_eq!(
                estimate.estimated_subgraphs.to_bits(),
                solo.estimated_subgraphs.to_bits()
            );
        }
    }

    #[test]
    fn same_k_same_seed_queries_share_colorings() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        // glet1, glet2 and youtube all have 5 nodes: with one shared seed a
        // trial step needs ONE 5-coloring for all three.
        let queries = [catalog::glet1(), catalog::glet2(), catalog::youtube()];
        let requests: Vec<_> = queries
            .iter()
            .map(|q| engine.count(q).trials(4).seed(9))
            .collect();
        let batch = engine.count_batch(&requests).unwrap();
        let m = &batch.metrics;
        assert_eq!(m.queries, 3);
        assert_eq!(m.cells, 12);
        assert_eq!(m.colorings_drawn, 4, "one coloring per trial step");
        assert_eq!(m.colorings_shared, 8);
        // Structurally distinct queries: every cell runs its own DP.
        assert_eq!(m.unique_plans, 3);
        assert_eq!(m.plans_deduped, 0);
        assert_eq!(m.dp_runs, 12);
        assert_eq!(m.dp_shared, 0);
        assert_eq!(m.trials_per_query, vec![4, 4, 4]);
    }

    #[test]
    fn structural_twins_share_plans_and_dp_results() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        let triangle = catalog::triangle();
        let twin = QueryGraph::from_edges(3, &[(2, 0), (1, 2), (0, 1)]).unwrap();
        let requests = vec![
            engine.count(&triangle).trials(5).seed(3),
            engine.count(&twin).trials(5).seed(3),
        ];
        let batch = engine.count_batch(&requests).unwrap();
        let m = &batch.metrics;
        assert_eq!(m.unique_plans, 1);
        assert_eq!(m.plans_deduped, 1);
        assert_eq!(m.cells, 10);
        assert_eq!(m.dp_runs, 5, "one DP per trial serves both twins");
        assert_eq!(m.dp_shared, 5);
        assert_eq!(m.colorings_drawn, 5);
        assert_eq!(batch.estimates[0].per_trial, batch.estimates[1].per_trial);
        // ... and the shared result is still the solo result.
        let solo = engine
            .count(&triangle)
            .trials(5)
            .seed(3)
            .estimate()
            .unwrap();
        assert_eq!(batch.estimates[0].per_trial, solo.per_trial);
    }

    #[test]
    fn mixed_seeds_trials_and_algorithms_stay_solo_identical() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        let c4 = catalog::cycle(4);
        let tri = catalog::triangle();
        let requests = vec![
            engine
                .count(&tri)
                .trials(7)
                .seed(1)
                .algorithm(Algorithm::PathSplitting),
            engine
                .count(&tri)
                .trials(3)
                .seed(1)
                .algorithm(Algorithm::DegreeBased),
            engine.count(&c4).trials(5).seed(99),
        ];
        let batch = engine.count_batch(&requests).unwrap();
        let solo_a = engine
            .count(&tri)
            .trials(7)
            .seed(1)
            .algorithm(Algorithm::PathSplitting)
            .estimate()
            .unwrap();
        let solo_b = engine
            .count(&tri)
            .trials(3)
            .seed(1)
            .algorithm(Algorithm::DegreeBased)
            .estimate()
            .unwrap();
        let solo_c = engine.count(&c4).trials(5).seed(99).estimate().unwrap();
        assert_eq!(batch.estimates[0].per_trial, solo_a.per_trial);
        assert_eq!(batch.estimates[1].per_trial, solo_b.per_trial);
        assert_eq!(batch.estimates[2].per_trial, solo_c.per_trial);
        // The two triangle requests differ in algorithm, so they share the
        // plan and (for the first three trials) the coloring, but never a
        // DP result: both algorithms run.
        let m = &batch.metrics;
        assert_eq!(m.unique_plans, 2);
        assert_eq!(m.plans_deduped, 1);
        assert_eq!(m.cells, 15);
        assert_eq!(m.dp_shared, 0);
        // Trials 0..3: triangle coloring shared between the algorithms.
        assert_eq!(m.colorings_shared, 3);
    }

    #[test]
    fn sequential_and_parallel_batches_agree() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        let queries = [catalog::triangle(), catalog::glet1()];
        let serial = engine
            .count_batch(
                &queries
                    .iter()
                    .map(|q| engine.count(q).trials(6).seed(5).parallel(false))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        let parallel = sgc_engine::parallel::run_with_threads(3, || {
            engine
                .count_batch(
                    &queries
                        .iter()
                        .map(|q| engine.count(q).trials(6).seed(5))
                        .collect::<Vec<_>>(),
                )
                .unwrap()
        });
        for (a, b) in serial.estimates.iter().zip(&parallel.estimates) {
            assert_eq!(a.per_trial, b.per_trial);
            assert_eq!(a.estimated_matches.to_bits(), b.estimated_matches.to_bits());
        }
    }

    #[test]
    fn sharded_batches_share_exchange_rounds_and_stay_identical() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        let queries = [catalog::triangle(), catalog::cycle(4), catalog::glet1()];
        let requests: Vec<_> = queries
            .iter()
            .map(|q| {
                engine
                    .count(q)
                    .trials(4)
                    .seed(13)
                    .parallel(false)
                    .sharded(4)
            })
            .collect();
        let batch = engine.count_batch(&requests).unwrap();
        assert!(batch.metrics.exchange_rounds > 0);
        // The shared rounds are at most what solo sharded runs would pay:
        // per trial, max(blocks) rounds instead of Σ blocks.
        let solo_rounds: u64 = queries
            .iter()
            .map(|q| engine.plan(q).unwrap().blocks.len() as u64 * 4)
            .sum();
        assert!(batch.metrics.exchange_rounds < solo_rounds);
        for (query, estimate) in queries.iter().zip(&batch.estimates) {
            let solo = engine.count(query).trials(4).seed(13).estimate().unwrap();
            assert_eq!(estimate.per_trial, solo.per_trial);
        }
    }

    #[test]
    fn empty_batches_and_error_paths() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        let empty = engine.count_batch(&[]).unwrap();
        assert!(empty.estimates.is_empty());
        assert_eq!(empty.metrics.queries, 0);
        assert_eq!(empty.metrics.cells, 0);

        let tri = catalog::triangle();
        // Zero trials.
        assert_eq!(
            engine
                .count_batch(&[engine.count(&tri).trials(0)])
                .unwrap_err(),
            SgcError::ZeroTrials
        );
        // Explicit colorings are estimate-incompatible, batched or not.
        let coloring = Coloring::random(g.num_vertices(), 3, 0);
        assert_eq!(
            engine
                .count_batch(&[engine.count(&tri).coloring(&coloring)])
                .unwrap_err(),
            SgcError::ColoringWithEstimate
        );
        // Zero ranks / zero shards.
        assert_eq!(
            engine
                .count_batch(&[engine.count(&tri).ranks(0)])
                .unwrap_err(),
            SgcError::ZeroRanks
        );
        assert_eq!(
            engine
                .count_batch(&[engine.count(&tri).sharded(0)])
                .unwrap_err(),
            SgcError::ZeroShards
        );
        // Requests from another engine are rejected.
        let other_graph = demo_graph();
        let other = Engine::new(&other_graph);
        assert_eq!(
            engine
                .count_batch(&[other.count(&tri).trials(2)])
                .unwrap_err(),
            SgcError::EngineMismatch
        );
        // Unplannable members fail the batch with the planner's error.
        let mut k4 = QueryGraph::new(4);
        for a in 0..4u8 {
            for b in (a + 1)..4 {
                k4.add_edge(a, b).unwrap();
            }
        }
        assert!(matches!(
            engine
                .count_batch(&[engine.count(&tri).trials(2), engine.count(&k4).trials(2)])
                .unwrap_err(),
            SgcError::Query(_)
        ));
    }

    #[test]
    fn single_node_queries_batch_with_everything_else() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        let one = QueryGraph::new(1);
        let tri = catalog::triangle();
        let requests = vec![
            engine.count(&one).trials(3).seed(2),
            engine.count(&tri).trials(3).seed(2),
        ];
        let batch = engine.count_batch(&requests).unwrap();
        assert!(batch.estimates[0]
            .per_trial
            .iter()
            .all(|&c| c == g.num_vertices() as Count));
        let solo = engine.count(&tri).trials(3).seed(2).estimate().unwrap();
        assert_eq!(batch.estimates[1].per_trial, solo.per_trial);
        // Sharded too: the single-node query resolves through the shared
        // step-0 scalar exchange.
        let sharded = engine
            .count_batch(&[
                engine
                    .count(&one)
                    .trials(3)
                    .seed(2)
                    .parallel(false)
                    .sharded(3),
                engine
                    .count(&tri)
                    .trials(3)
                    .seed(2)
                    .parallel(false)
                    .sharded(3),
            ])
            .unwrap();
        assert_eq!(sharded.estimates[0].per_trial, batch.estimates[0].per_trial);
        assert_eq!(sharded.estimates[1].per_trial, batch.estimates[1].per_trial);
    }
}
