//! Solving blocks into projection tables.
//!
//! This module turns one block of the decomposition tree into its projection
//! table, given the already-computed tables of its children:
//!
//! * leaf-edge blocks are a short chain of joins (edge realization plus the
//!   node annotations of the two endpoints) followed by a projection onto the
//!   boundary node,
//! * cycle blocks are split into two path segments, each built by
//!   [`crate::paths::PathBuilder`], and merged back; the PS algorithm uses a
//!   single split at the boundary nodes, the DB algorithm runs one split per
//!   candidate highest node `a_h` and aggregates (Equation 1).

use crate::config::Algorithm;
use crate::context::Context;
use crate::metrics::RunMetrics;
use crate::paths::{combine_extras, BlockJoinIndex, Field, PathBuilder};
use sgc_engine::parallel::parallel_chunks;
use sgc_engine::{
    BinaryTable, Count, LoadStats, PathTable, ProjectionTable, Signature, UnaryTable,
};
use sgc_graph::vertex::NO_VERTEX;
use sgc_query::{Block, BlockKind, DecompositionTree, QueryNode};

/// Solves `block` into its projection table.
///
/// `child_tables` must already hold the tables of every child of `block`
/// (indexed by block id). The join-side child-table index is built here,
/// once, and shared by every split the solve performs; callers that fan one
/// block out over several workers (the sharded runtime) should build the
/// index themselves and call [`solve_block_with_index`] so it is not
/// rebuilt per worker.
pub fn solve_block(
    ctx: &Context<'_>,
    tree: &DecompositionTree,
    block: &Block,
    child_tables: &[Option<ProjectionTable>],
    algorithm: Algorithm,
    metrics: &mut RunMetrics,
) -> ProjectionTable {
    let index = BlockJoinIndex::build(block, child_tables);
    solve_block_with_index(ctx, tree, block, &index, algorithm, metrics)
}

/// Solves `block` against an already-built [`BlockJoinIndex`].
pub fn solve_block_with_index(
    ctx: &Context<'_>,
    tree: &DecompositionTree,
    block: &Block,
    index: &BlockJoinIndex<'_>,
    algorithm: Algorithm,
    metrics: &mut RunMetrics,
) -> ProjectionTable {
    match &block.kind {
        BlockKind::LeafEdge { .. } => solve_leaf_edge(ctx, tree, block, index, metrics),
        BlockKind::Cycle { .. } => solve_cycle(ctx, tree, block, index, algorithm, metrics),
    }
}

/// Solves a leaf-edge block `(a, b)` (with `b` the degree-one endpoint).
fn solve_leaf_edge(
    ctx: &Context<'_>,
    tree: &DecompositionTree,
    block: &Block,
    index: &BlockJoinIndex<'_>,
    metrics: &mut RunMetrics,
) -> ProjectionTable {
    let (a, b) = match block.kind {
        BlockKind::LeafEdge { boundary, leaf } => (boundary, leaf),
        _ => unreachable!("solve_leaf_edge called on a cycle block"),
    };
    let builder = PathBuilder::new(ctx, tree, block, index, false);
    // The "path" here is the single edge a -> b; both endpoint annotations
    // are folded in (there is no second path to share them with).
    let table = builder.build_path(&[0, 1], true, true, metrics);
    project_path_onto_boundary(
        ctx,
        block,
        &[(a, Field::Start), (b, Field::End)],
        table,
        metrics,
    )
}

/// Solves a cycle block with the chosen algorithm.
fn solve_cycle(
    ctx: &Context<'_>,
    tree: &DecompositionTree,
    block: &Block,
    index: &BlockJoinIndex<'_>,
    algorithm: Algorithm,
    metrics: &mut RunMetrics,
) -> ProjectionTable {
    let nodes = match &block.kind {
        BlockKind::Cycle { nodes } => nodes.clone(),
        _ => unreachable!("solve_cycle called on a leaf-edge block"),
    };
    let l = nodes.len();
    match algorithm {
        Algorithm::PathSplitting => {
            let (s, t) = ps_split_positions(block, &nodes);
            solve_cycle_split(ctx, tree, block, index, s, t, false, metrics)
        }
        Algorithm::DegreeBased => {
            let mut accumulated: Option<ProjectionTable> = None;
            for h in 0..l {
                let d = (h + l / 2) % l;
                let partial = solve_cycle_split(ctx, tree, block, index, h, d, true, metrics);
                accumulated = Some(match accumulated {
                    None => partial,
                    Some(acc) => merge_projection(acc, partial),
                });
            }
            accumulated.expect("cycles have at least three candidate highest nodes")
        }
    }
}

/// The PS split positions: at the two boundary nodes when there are two, at
/// the boundary node and its diagonal when there is one, and at position 0
/// and its diagonal for a root cycle without boundary nodes.
pub(crate) fn ps_split_positions(block: &Block, nodes: &[QueryNode]) -> (usize, usize) {
    let l = nodes.len();
    let position_of = |n: QueryNode| nodes.iter().position(|&x| x == n).unwrap();
    match block.boundary.as_slice() {
        [a, b] => (position_of(*a), position_of(*b)),
        [a] => {
            let s = position_of(*a);
            (s, (s + l / 2) % l)
        }
        [] => (0, l / 2),
        _ => unreachable!("cycle blocks have at most two boundary nodes"),
    }
}

/// Solves one split `(s, t)` of a cycle block: builds the clockwise path
/// `P+ = s..t` and the counter-clockwise path `P- = s..t`, then merges them.
/// With `high_start` set this computes the DB algorithm's per-`a_h` partial
/// counts `cnt(·|C, hi = h)`.
#[allow(clippy::too_many_arguments)]
fn solve_cycle_split(
    ctx: &Context<'_>,
    tree: &DecompositionTree,
    block: &Block,
    index: &BlockJoinIndex<'_>,
    s: usize,
    t: usize,
    high_start: bool,
    metrics: &mut RunMetrics,
) -> ProjectionTable {
    let l = block.kind.len();
    debug_assert!(l >= 3 && s != t);
    // Clockwise positions s, s+1, ..., t and counter-clockwise s, s-1, ..., t.
    let mut plus = vec![s];
    let mut p = s;
    while p != t {
        p = (p + 1) % l;
        plus.push(p);
    }
    let mut minus = vec![s];
    p = s;
    while p != t {
        p = (p + l - 1) % l;
        minus.push(p);
    }

    let builder = PathBuilder::new(ctx, tree, block, index, high_start);
    // Convention (Section 5.2): P+ folds in the annotation of the end node
    // a_d / a_t, P- folds in the annotation of the start node a_h / a_s, so
    // each endpoint annotation is joined exactly once.
    let plus_table = builder.build_path(&plus, false, true, metrics);
    let minus_table = builder.build_path(&minus, true, false, metrics);

    let nodes = block.kind.nodes();
    merge_paths(
        ctx,
        block,
        &builder,
        plus_table,
        minus_table,
        nodes[s],
        nodes[t],
        metrics,
    )
}

/// Merges the two path tables of a split into the block's projection table
/// (Procedure 2 of Figures 4 and 6): join on the shared endpoints, require
/// the signatures to overlap exactly in the endpoint colors, and key the
/// output by the images of the block's boundary nodes.
#[allow(clippy::too_many_arguments)]
fn merge_paths(
    ctx: &Context<'_>,
    block: &Block,
    builder: &PathBuilder<'_, '_>,
    plus: PathTable,
    minus: PathTable,
    start_node: QueryNode,
    end_node: QueryNode,
    metrics: &mut RunMetrics,
) -> ProjectionTable {
    let _ = builder;
    let minus_grouped = minus.group_by_endpoints();
    let plus_entries = plus.into_entries();
    let boundary = block.boundary.clone();
    let slot_of = |node: QueryNode| boundary.iter().position(|&b| b == node);

    let partials = parallel_chunks(&plus_entries, |chunk| {
        let mut scalar: Count = 0;
        let mut unary = UnaryTable::new();
        let mut binary = BinaryTable::new();
        let mut load = LoadStats::new(ctx.partition.num_ranks());
        for &(pkey, pcount) in chunk {
            let Some(list) = minus_grouped.get(&(pkey.start, pkey.end)) else {
                continue;
            };
            load.record_vertex(&ctx.partition, pkey.end, list.len() as u64);
            let shared = Signature::pair(ctx.color(pkey.start), ctx.color(pkey.end));
            for &(mkey, mcount) in list {
                if pkey.sig.intersection(mkey.sig) != shared {
                    continue;
                }
                let Some(mut extras) = combine_extras(pkey.extra, mkey.extra) else {
                    continue;
                };
                // Endpoints double as boundary nodes in some configurations;
                // make sure their slots are filled from the join fields.
                if let Some(slot) = slot_of(start_node) {
                    extras[slot] = pkey.start;
                }
                if let Some(slot) = slot_of(end_node) {
                    extras[slot] = pkey.end;
                }
                let sig = pkey.sig.union(mkey.sig);
                let count = pcount * mcount;
                match boundary.len() {
                    0 => scalar += count,
                    1 => {
                        debug_assert_ne!(extras[0], NO_VERTEX);
                        unary.add(extras[0], sig, count);
                    }
                    2 => {
                        debug_assert_ne!(extras[0], NO_VERTEX);
                        debug_assert_ne!(extras[1], NO_VERTEX);
                        binary.add(extras[0], extras[1], sig, count);
                    }
                    _ => unreachable!(),
                }
            }
        }
        (scalar, unary, binary, load)
    });

    let mut scalar: Count = 0;
    let mut unary = UnaryTable::new();
    let mut binary = BinaryTable::new();
    for (s, u, b, load) in partials {
        scalar += s;
        unary.merge(&u);
        binary.merge(&b);
        metrics.absorb_load(&load);
    }
    let table = match block.boundary.len() {
        0 => ProjectionTable::Scalar(scalar),
        1 => ProjectionTable::Unary(unary),
        2 => ProjectionTable::Binary(binary),
        _ => unreachable!(),
    };
    metrics.observe_table(table.len());
    table
}

/// Projects a fully joined leaf-edge path table onto the block's boundary.
fn project_path_onto_boundary(
    ctx: &Context<'_>,
    block: &Block,
    node_fields: &[(QueryNode, Field)],
    table: PathTable,
    metrics: &mut RunMetrics,
) -> ProjectionTable {
    let _ = ctx;
    let result = match block.boundary.as_slice() {
        [] => {
            let total = table.iter().map(|(_, &c)| c).sum();
            ProjectionTable::Scalar(total)
        }
        [b] => {
            let field = node_fields
                .iter()
                .find(|&&(n, _)| n == *b)
                .map(|&(_, f)| f)
                .expect("boundary node must be an endpoint of the leaf edge");
            let mut unary = UnaryTable::new();
            for (key, &count) in table.iter() {
                let v = match field {
                    Field::Start => key.start,
                    Field::End => key.end,
                };
                unary.add(v, key.sig, count);
            }
            ProjectionTable::Unary(unary)
        }
        other => unreachable!("leaf-edge block with {} boundary nodes", other.len()),
    };
    metrics.observe_table(result.len());
    result
}

/// Adds two projection tables of the same shape (used to aggregate the DB
/// algorithm's per-highest-node partial tables, Equation 1, and by the
/// sharded runtime's exchange step to sum per-shard partial tables).
pub(crate) fn merge_projection(a: ProjectionTable, b: ProjectionTable) -> ProjectionTable {
    match (a, b) {
        (ProjectionTable::Scalar(x), ProjectionTable::Scalar(y)) => ProjectionTable::Scalar(x + y),
        (ProjectionTable::Unary(mut x), ProjectionTable::Unary(y)) => {
            x.merge(&y);
            ProjectionTable::Unary(x)
        }
        (ProjectionTable::Binary(mut x), ProjectionTable::Binary(y)) => {
            x.merge(&y);
            ProjectionTable::Binary(x)
        }
        _ => unreachable!("partial tables of one block always have the same shape"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_graph::{Coloring, GraphBuilder};
    use sgc_query::{decompose, QueryGraph};

    /// Counts colorful matches of a pure triangle query on a data triangle
    /// with rainbow colors — 6 matches (3! orientations), for both algorithms.
    #[test]
    fn triangle_on_rainbow_triangle() {
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(0, 1), (1, 2), (2, 0)]);
        let g = b.build();
        let coloring = Coloring::from_colors(vec![0, 1, 2], 3);
        let query = QueryGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let tree = decompose(&query).unwrap();
        let prep = crate::context::GraphPrep::new(&g);
        let ctx = Context::new(&g, &prep, &coloring, 4).unwrap();
        for algorithm in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
            let mut metrics = RunMetrics::new(4);
            let table = solve_block(
                &ctx,
                &tree,
                &tree.blocks[0],
                &[None],
                algorithm,
                &mut metrics,
            );
            assert_eq!(table.total(), 6, "{algorithm}");
            assert!(metrics.total_ops > 0);
        }
    }

    /// A monochromatic data triangle has no colorful matches.
    #[test]
    fn triangle_without_colors_counts_zero() {
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(0, 1), (1, 2), (2, 0)]);
        let g = b.build();
        let coloring = Coloring::from_colors(vec![0, 0, 1], 3);
        let query = QueryGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let tree = decompose(&query).unwrap();
        let prep = crate::context::GraphPrep::new(&g);
        let ctx = Context::new(&g, &prep, &coloring, 2).unwrap();
        for algorithm in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
            let mut metrics = RunMetrics::new(2);
            let table = solve_block(
                &ctx,
                &tree,
                &tree.blocks[0],
                &[None],
                algorithm,
                &mut metrics,
            );
            assert_eq!(table.total(), 0, "{algorithm}");
        }
    }
}
