//! Brute-force reference counters.
//!
//! These enumerate matches explicitly by backtracking and therefore run in
//! time exponential in the query size; they exist purely as the correctness
//! oracle for the PS/DB implementations (and for the estimator's unbiasedness
//! tests) on small graphs. The definitions follow Section 2 exactly:
//!
//! * a *match* is an injective mapping `π : V_Q → V_G` such that every query
//!   edge maps to a data edge (non-induced subgraph semantics),
//! * a *colorful match* additionally maps the query nodes to distinctly
//!   colored data vertices.

use sgc_engine::Count;
use sgc_graph::{Coloring, CsrGraph, VertexId};
use sgc_query::{QueryGraph, QueryNode};

/// Counts all matches (injective homomorphisms) of `query` in `graph`.
///
/// Intended for small inputs only — the search is exponential in the query
/// size.
pub fn count_matches(graph: &CsrGraph, query: &QueryGraph) -> Count {
    count_with_filter(graph, query, |_, _| true)
}

/// Counts the colorful matches of `query` in `graph` under `coloring`.
pub fn count_colorful_matches(graph: &CsrGraph, query: &QueryGraph, coloring: &Coloring) -> Count {
    assert_eq!(coloring.num_vertices(), graph.num_vertices());
    let mut used_colors = vec![false; coloring.num_colors()];
    // The filter tracks used colors via interior state captured per call; to
    // keep the recursion simple we re-check distinctness over the partial
    // mapping instead.
    let _ = &mut used_colors;
    count_with_filter(graph, query, |mapped, v| {
        let color = coloring.color(v);
        mapped.iter().flatten().all(|&u| coloring.color(u) != color)
    })
}

/// Shared backtracking search. `accept(mapped, candidate)` is invoked before
/// extending the partial mapping with `candidate`; returning `false` prunes.
fn count_with_filter(
    graph: &CsrGraph,
    query: &QueryGraph,
    accept: impl Fn(&[Option<VertexId>], VertexId) -> bool,
) -> Count {
    let k = query.num_nodes();
    if k == 0 {
        return 1;
    }
    if k > graph.num_vertices() {
        return 0;
    }
    // Order query nodes so each one (after the first) has a previously mapped
    // neighbor; for connected queries a BFS order gives exactly that. For
    // disconnected queries later nodes may lack mapped neighbors and fall back
    // to scanning all vertices.
    let order = bfs_order(query);
    let mut mapping: Vec<Option<VertexId>> = vec![None; k];
    let mut used = vec![false; graph.num_vertices()];
    let mut count = 0;
    extend(
        graph,
        query,
        &order,
        0,
        &mut mapping,
        &mut used,
        &accept,
        &mut count,
    );
    count
}

fn bfs_order(query: &QueryGraph) -> Vec<QueryNode> {
    let k = query.num_nodes();
    let mut order = Vec::with_capacity(k);
    let mut seen = vec![false; k];
    for start in 0..k as QueryNode {
        if seen[start as usize] {
            continue;
        }
        let mut queue = std::collections::VecDeque::from([start]);
        seen[start as usize] = true;
        while let Some(a) = queue.pop_front() {
            order.push(a);
            for b in query.neighbors(a) {
                if !seen[b as usize] {
                    seen[b as usize] = true;
                    queue.push_back(b);
                }
            }
        }
    }
    order
}

#[allow(clippy::too_many_arguments)]
fn extend(
    graph: &CsrGraph,
    query: &QueryGraph,
    order: &[QueryNode],
    depth: usize,
    mapping: &mut Vec<Option<VertexId>>,
    used: &mut Vec<bool>,
    accept: &impl Fn(&[Option<VertexId>], VertexId) -> bool,
    count: &mut Count,
) {
    if depth == order.len() {
        *count += 1;
        return;
    }
    let a = order[depth];
    // Candidate data vertices: neighbors of an already-mapped query neighbor
    // if one exists (much cheaper), otherwise every vertex.
    let anchor = query
        .neighbors(a)
        .find_map(|b| mapping[b as usize].map(|v| (b, v)));
    let candidates: Vec<VertexId> = match anchor {
        Some((_, v)) => graph.neighbors(v).to_vec(),
        None => graph.vertices().collect(),
    };
    for v in candidates {
        if used[v as usize] || !accept(mapping, v) {
            continue;
        }
        // Every mapped query neighbor must be a data neighbor of v.
        let consistent = query.neighbors(a).all(|b| match mapping[b as usize] {
            Some(u) => graph.has_edge(u, v),
            None => true,
        });
        if !consistent {
            continue;
        }
        mapping[a as usize] = Some(v);
        used[v as usize] = true;
        extend(graph, query, order, depth + 1, mapping, used, accept, count);
        mapping[a as usize] = None;
        used[v as usize] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_graph::GraphBuilder;
    use sgc_query::catalog;

    fn complete_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn triangle_matches_in_k4() {
        // K4 has 4 triangles, each with 3! = 6 matches.
        assert_eq!(count_matches(&complete_graph(4), &catalog::triangle()), 24);
    }

    #[test]
    fn path_matches_in_complete_graph() {
        // P3 matches in K4: ordered choices of 3 distinct vertices = 24.
        assert_eq!(count_matches(&complete_graph(4), &catalog::path(3)), 24);
    }

    #[test]
    fn cycle4_matches_in_k4() {
        // K4 contains 3 distinct 4-cycles, each with aut(C4) = 8 matches.
        assert_eq!(count_matches(&complete_graph(4), &catalog::cycle(4)), 24);
    }

    #[test]
    fn no_matches_when_query_is_larger_than_graph() {
        assert_eq!(count_matches(&complete_graph(3), &catalog::cycle(4)), 0);
    }

    #[test]
    fn colorful_matches_respect_colors() {
        let g = complete_graph(3);
        let rainbow = Coloring::from_colors(vec![0, 1, 2], 3);
        let mono = Coloring::from_colors(vec![0, 0, 0], 3);
        assert_eq!(
            count_colorful_matches(&g, &catalog::triangle(), &rainbow),
            6
        );
        assert_eq!(count_colorful_matches(&g, &catalog::triangle(), &mono), 0);
    }

    #[test]
    fn colorful_is_a_subset_of_all_matches() {
        let g = complete_graph(5);
        let coloring = Coloring::random(5, 4, 3);
        let q = catalog::cycle(4);
        assert!(count_colorful_matches(&g, &q, &coloring) <= count_matches(&g, &q));
    }
}
