//! Run configuration for the counting algorithms.

use crate::kernel::KernelKind;

/// Which algorithm solves the cycle blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The baseline Path Splitting algorithm (Figure 4): equivalent to the
    /// dynamic program of Alon et al.; cycles are split at their boundary
    /// nodes and paths are extended without any pruning.
    PathSplitting,
    /// The paper's Degree Based algorithm (Figures 5–7): cycles are split at
    /// every possible highest node under the degree ordering, and only
    /// high-starting paths are extended.
    DegreeBased,
}

impl Algorithm {
    /// Short name used in experiment output ("PS" / "DB").
    pub fn short_name(&self) -> &'static str {
        match self {
            Algorithm::PathSplitting => "PS",
            Algorithm::DegreeBased => "DB",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Configuration of a single colorful-counting run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CountConfig {
    /// Cycle-solving algorithm.
    pub algorithm: Algorithm,
    /// Number of simulated ranks used for load attribution (the paper uses
    /// 32–512 MPI ranks; this only affects the reported load vectors, not the
    /// result or the actual parallelism).
    pub num_ranks: usize,
    /// Which join-kernel implementation runs the DP (default: columnar).
    /// Both kernels are bit-identical; this switch exists for differential
    /// testing and benchmarking.
    pub kernel: KernelKind,
    /// Whether runs record observability spans and publish run counters
    /// into the `sgc-obs` registry (default: on). Observability reads,
    /// never branches, the DP: counts are bit-identical either way, which
    /// `tests/obs.rs` pins differentially.
    pub obs: bool,
}

impl CountConfig {
    /// Configuration for the given algorithm with the default rank count and
    /// kernel.
    pub fn new(algorithm: Algorithm) -> Self {
        CountConfig {
            algorithm,
            num_ranks: 64,
            kernel: KernelKind::default(),
            obs: true,
        }
    }

    /// Sets the number of simulated ranks. A zero rank count is rejected at
    /// run time with [`SgcError::ZeroRanks`](crate::SgcError::ZeroRanks)
    /// rather than panicking here.
    pub fn with_ranks(mut self, num_ranks: usize) -> Self {
        self.num_ranks = num_ranks;
        self
    }

    /// Selects the join kernel (scalar or columnar).
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Enables or disables per-run observability (spans + registry
    /// publication). Counts are unaffected.
    pub fn with_obs(mut self, obs: bool) -> Self {
        self.obs = obs;
        self
    }
}

impl Default for CountConfig {
    fn default() -> Self {
        CountConfig::new(Algorithm::DegreeBased)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_degree_based() {
        let c = CountConfig::default();
        assert_eq!(c.algorithm, Algorithm::DegreeBased);
        assert_eq!(c.num_ranks, 64);
        assert_eq!(c.kernel, KernelKind::Columnar);
        assert!(c.obs, "observability defaults to on");
    }

    #[test]
    fn builder_methods() {
        let c = CountConfig::new(Algorithm::PathSplitting)
            .with_ranks(512)
            .with_kernel(KernelKind::Scalar)
            .with_obs(false);
        assert_eq!(c.algorithm, Algorithm::PathSplitting);
        assert_eq!(c.num_ranks, 512);
        assert_eq!(c.kernel, KernelKind::Scalar);
        assert!(!c.obs);
    }

    #[test]
    fn display_names() {
        assert_eq!(Algorithm::PathSplitting.to_string(), "PS");
        assert_eq!(Algorithm::DegreeBased.to_string(), "DB");
    }

    #[test]
    fn zero_ranks_is_deferred_to_run_time_validation() {
        // Constructing the config is allowed; the engine rejects it with
        // SgcError::ZeroRanks when a request runs (see engine::tests).
        let c = CountConfig::default().with_ranks(0);
        assert_eq!(c.num_ranks, 0);
    }
}
