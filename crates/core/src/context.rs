//! The per-run counting context and the reusable graph preprocessing.
//!
//! The paper amortizes one expensive preprocessing pass over the data graph —
//! the degree-based total order and the rank-sorted adjacency lists — across
//! hundreds of random-coloring trials. That pass lives in [`GraphPrep`],
//! built once per [`Engine`](crate::Engine) (or once per call in the
//! deprecated free functions). [`Context`] then bundles a `GraphPrep` with
//! the *per-trial* inputs — the coloring and the simulated rank partition —
//! so that the algorithm code passes a single reference around.

use crate::error::SgcError;
use crate::runtime::shard::VertexShard;
use sgc_engine::Signature;
use sgc_graph::{BlockPartition, Coloring, CsrGraph, DegreeOrder, VertexId};
use std::cell::Cell;

thread_local! {
    /// Number of [`GraphPrep`] constructions performed by this thread. Used
    /// by tests to verify that an [`Engine`](crate::Engine) amortizes the
    /// preprocessing instead of redoing it per trial. Thread-local rather
    /// than process-global so that concurrently running tests (libtest runs
    /// tests on several threads of one process) cannot perturb each other's
    /// deltas.
    static PREP_BUILDS: Cell<usize> = const { Cell::new(0) };
}

/// Number of [`GraphPrep`] constructions performed by the calling thread.
///
/// To assert "no hidden rebuilds" across a multi-trial estimation, run the
/// estimation with `.parallel(false)` so every trial executes on the calling
/// thread and any rebuild would be visible here.
pub fn prep_build_count() -> usize {
    PREP_BUILDS.with(|c| c.get())
}

/// The coloring-independent preprocessing of a data graph: the degree-based
/// total order and the adjacency lists re-sorted by ascending degree rank.
///
/// Building this is `O(m log m)` (a sort of every adjacency list); everything
/// else in a counting run only reads it. Build it once and share it across
/// trials.
pub struct GraphPrep {
    /// Degree-based total order on data vertices (used by the DB algorithm).
    pub order: DegreeOrder,
    /// Adjacency lists re-sorted by ascending degree rank; `ranked_offsets`
    /// delimits each vertex's slice. Lets the DB algorithm enumerate only the
    /// neighbors below a given rank (the MINBUCKET-style pruning) instead of
    /// scanning the full list and rejecting.
    ranked_neighbors: Vec<VertexId>,
    /// `ranked_ranks[i]` = the degree rank of `ranked_neighbors[i]`, so the
    /// per-row binary search in [`Context::lower_neighbors`] scans one dense
    /// sorted array instead of chasing a rank lookup per probe.
    ranked_ranks: Vec<u32>,
    ranked_offsets: Vec<usize>,
}

impl GraphPrep {
    /// Runs the preprocessing pass over `graph`.
    pub fn new(graph: &CsrGraph) -> Self {
        PREP_BUILDS.with(|c| c.set(c.get() + 1));
        let order = DegreeOrder::new(graph);
        let mut ranked_neighbors = Vec::with_capacity(2 * graph.num_edges());
        let mut ranked_ranks = Vec::with_capacity(2 * graph.num_edges());
        let mut ranked_offsets = Vec::with_capacity(graph.num_vertices() + 1);
        ranked_offsets.push(0);
        let mut scratch: Vec<VertexId> = Vec::new();
        for v in graph.vertices() {
            scratch.clear();
            scratch.extend_from_slice(graph.neighbors(v));
            scratch.sort_unstable_by_key(|&w| order.rank(w));
            ranked_neighbors.extend_from_slice(&scratch);
            ranked_ranks.extend(scratch.iter().map(|&w| order.rank(w)));
            ranked_offsets.push(ranked_neighbors.len());
        }
        GraphPrep {
            order,
            ranked_neighbors,
            ranked_ranks,
            ranked_offsets,
        }
    }
}

/// Immutable state shared by every join of a counting run: the data graph,
/// its reusable preprocessing, and the per-trial coloring and partition.
pub struct Context<'a> {
    /// The data graph.
    pub graph: &'a CsrGraph,
    /// The current random coloring (k colors, k = query size).
    pub coloring: &'a Coloring,
    /// Simulated 1D block partition of vertices over ranks.
    pub partition: BlockPartition,
    prep: &'a GraphPrep,
    /// When set, path construction only enumerates start vertices owned by
    /// this shard; the sharded runtime sums the resulting partial tables
    /// back together in its exchange step.
    shard: Option<VertexShard>,
}

impl<'a> Context<'a> {
    /// Checks that `coloring` covers `graph` and that `num_ranks` is
    /// positive — the validation shared by [`Context::new`] and the sharded
    /// runtime (which validates once up front, then builds one context per
    /// shard infallibly).
    pub(crate) fn validate(
        graph: &CsrGraph,
        coloring: &Coloring,
        num_ranks: usize,
    ) -> Result<(), SgcError> {
        if coloring.num_vertices() != graph.num_vertices() {
            return Err(SgcError::ColoringSizeMismatch {
                graph_vertices: graph.num_vertices(),
                coloring_vertices: coloring.num_vertices(),
            });
        }
        if num_ranks == 0 {
            return Err(SgcError::ZeroRanks);
        }
        Ok(())
    }

    /// Builds a context for one run over `graph` with `coloring`, reusing the
    /// preprocessing in `prep` and attributing load to `num_ranks` simulated
    /// ranks.
    ///
    /// # Errors
    /// [`SgcError::ColoringSizeMismatch`] if the coloring does not cover
    /// every vertex of the graph; [`SgcError::ZeroRanks`] if `num_ranks` is
    /// zero.
    pub fn new(
        graph: &'a CsrGraph,
        prep: &'a GraphPrep,
        coloring: &'a Coloring,
        num_ranks: usize,
    ) -> Result<Self, SgcError> {
        Context::validate(graph, coloring, num_ranks)?;
        Ok(Context {
            graph,
            coloring,
            partition: BlockPartition::new(graph.num_vertices(), num_ranks),
            prep,
            shard: None,
        })
    }

    /// Builds a context restricted to one vertex shard: path construction
    /// enumerates only start vertices in `shard`'s owned range. Inputs must
    /// already have passed [`Context::validate`].
    pub(crate) fn for_shard(
        graph: &'a CsrGraph,
        prep: &'a GraphPrep,
        coloring: &'a Coloring,
        num_ranks: usize,
        shard: VertexShard,
    ) -> Self {
        debug_assert!(Context::validate(graph, coloring, num_ranks).is_ok());
        Context {
            graph,
            coloring,
            partition: BlockPartition::new(graph.num_vertices(), num_ranks),
            prep,
            shard: Some(shard),
        }
    }

    /// The range of start vertices this context enumerates when seeding a
    /// path table: the shard's owned range for sharded contexts, every
    /// vertex otherwise.
    #[inline]
    pub fn start_vertices(&self) -> std::ops::Range<VertexId> {
        match &self.shard {
            Some(shard) => shard.range(),
            None => 0..self.graph.num_vertices() as VertexId,
        }
    }

    /// Whether `v` may start a path in this context (always true without a
    /// shard scope).
    #[inline]
    pub fn owns_start(&self, v: VertexId) -> bool {
        match &self.shard {
            Some(shard) => shard.owns(v),
            None => true,
        }
    }

    /// Whether this context is restricted to one vertex shard. Lets seeding
    /// code pick between probing the shard's (small) owned range and
    /// scanning a full candidate set.
    #[inline]
    pub fn is_sharded(&self) -> bool {
        self.shard.is_some()
    }

    /// The degree-based total order on data vertices.
    #[inline]
    pub fn order(&self) -> &DegreeOrder {
        &self.prep.order
    }

    /// Neighbors of `v` sorted by ascending degree rank.
    #[inline]
    pub fn neighbors_by_rank(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.prep.ranked_neighbors[self.prep.ranked_offsets[v]..self.prep.ranked_offsets[v + 1]]
    }

    /// The neighbors of `v` that are strictly lower than `than` in the degree
    /// ordering — the only candidates a high-starting path from `than` may
    /// extend to.
    #[inline]
    pub fn lower_neighbors(&self, v: VertexId, than: VertexId) -> &[VertexId] {
        let v = v as usize;
        let span = self.prep.ranked_offsets[v]..self.prep.ranked_offsets[v + 1];
        let list = &self.prep.ranked_neighbors[span.clone()];
        let ranks = &self.prep.ranked_ranks[span];
        let bound = self.prep.order.rank(than);
        let cut = ranks.partition_point(|&r| r < bound);
        &list[..cut]
    }

    /// Color of data vertex `v`.
    #[inline]
    pub fn color(&self, v: VertexId) -> u8 {
        self.coloring.color(v)
    }

    /// Signature containing only the color of `v`.
    #[inline]
    pub fn color_sig(&self, v: VertexId) -> Signature {
        Signature::singleton(self.coloring.color(v))
    }

    /// Number of colors `k`.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.coloring.num_colors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_graph::GraphBuilder;

    fn tiny() -> CsrGraph {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1), (1, 2), (2, 3)]);
        b.build()
    }

    #[test]
    fn context_exposes_colors_and_order() {
        let g = tiny();
        let prep = GraphPrep::new(&g);
        let col = Coloring::from_colors(vec![0, 1, 2, 0], 3);
        let ctx = Context::new(&g, &prep, &col, 4).unwrap();
        assert_eq!(ctx.color(1), 1);
        assert_eq!(ctx.color_sig(2), Signature::singleton(2));
        assert_eq!(ctx.num_colors(), 3);
        // Vertex 1 and 2 have degree 2, higher than endpoints.
        assert!(ctx.order().higher(1, 0));
        assert_eq!(ctx.partition.num_ranks(), 4);
    }

    #[test]
    fn ranked_neighbors_are_sorted_and_prefixes_are_lower() {
        let g = tiny();
        let prep = GraphPrep::new(&g);
        let col = Coloring::from_colors(vec![0, 1, 2, 0], 3);
        let ctx = Context::new(&g, &prep, &col, 2).unwrap();
        for v in g.vertices() {
            let ranked = ctx.neighbors_by_rank(v);
            assert_eq!(ranked.len(), g.degree(v));
            assert!(ranked
                .windows(2)
                .all(|w| ctx.order().rank(w[0]) <= ctx.order().rank(w[1])));
            for &than in &[0u32, 1, 2, 3] {
                for &w in ctx.lower_neighbors(v, than) {
                    assert!(ctx.order().higher(than, w));
                }
                let lower = ctx.lower_neighbors(v, than).len();
                let full: usize = ranked
                    .iter()
                    .filter(|&&w| ctx.order().higher(than, w))
                    .count();
                assert_eq!(lower, full);
            }
        }
    }

    #[test]
    fn one_prep_serves_many_colorings() {
        let g = tiny();
        let before = prep_build_count();
        let prep = GraphPrep::new(&g);
        for seed in 0..5 {
            let col = Coloring::random(g.num_vertices(), 3, seed);
            let ctx = Context::new(&g, &prep, &col, 2).unwrap();
            assert_eq!(ctx.num_colors(), 3);
        }
        assert_eq!(prep_build_count() - before, 1);
    }

    #[test]
    fn mismatched_coloring_is_an_error() {
        let g = tiny();
        let prep = GraphPrep::new(&g);
        let col = Coloring::from_colors(vec![0, 1], 2);
        match Context::new(&g, &prep, &col, 2).err() {
            Some(SgcError::ColoringSizeMismatch {
                graph_vertices,
                coloring_vertices,
            }) => {
                assert_eq!(graph_vertices, 4);
                assert_eq!(coloring_vertices, 2);
            }
            other => panic!("expected ColoringSizeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn shard_scope_restricts_start_vertices() {
        let g = tiny();
        let prep = GraphPrep::new(&g);
        let col = Coloring::from_colors(vec![0, 1, 2, 0], 3);
        let full = Context::new(&g, &prep, &col, 2).unwrap();
        assert_eq!(full.start_vertices(), 0..4);
        assert!((0..4u32).all(|v| full.owns_start(v)));

        let plan = crate::runtime::ShardPlan::new(g.num_vertices(), 2).unwrap();
        let ctx0 = Context::for_shard(&g, &prep, &col, 2, plan.shard(0));
        let ctx1 = Context::for_shard(&g, &prep, &col, 2, plan.shard(1));
        assert_eq!(ctx0.start_vertices(), 0..2);
        assert_eq!(ctx1.start_vertices(), 2..4);
        for v in 0..4u32 {
            assert_eq!(ctx0.owns_start(v), v < 2);
            assert_eq!(ctx1.owns_start(v), v >= 2);
        }
    }

    #[test]
    fn zero_ranks_is_an_error() {
        let g = tiny();
        let prep = GraphPrep::new(&g);
        let col = Coloring::from_colors(vec![0, 1, 2, 0], 3);
        assert!(matches!(
            Context::new(&g, &prep, &col, 0),
            Err(SgcError::ZeroRanks)
        ));
    }
}
