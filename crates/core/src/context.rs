//! The per-run counting context.
//!
//! Bundles the immutable inputs every join needs — the data graph, the
//! coloring, the degree ordering (for the DB algorithm's `u ≻ w` checks) and
//! the simulated rank partition (for load attribution) — so that the
//! algorithm code passes a single reference around.

use sgc_engine::Signature;
use sgc_graph::{BlockPartition, Coloring, CsrGraph, DegreeOrder, VertexId};

/// Immutable state shared by every join of a counting run.
pub struct Context<'a> {
    /// The data graph.
    pub graph: &'a CsrGraph,
    /// The current random coloring (k colors, k = query size).
    pub coloring: &'a Coloring,
    /// Degree-based total order on data vertices (used by the DB algorithm).
    pub order: DegreeOrder,
    /// Simulated 1D block partition of vertices over ranks.
    pub partition: BlockPartition,
    /// Adjacency lists re-sorted by ascending degree rank; `ranked_offsets`
    /// delimits each vertex's slice. Lets the DB algorithm enumerate only the
    /// neighbors below a given rank (the MINBUCKET-style pruning) instead of
    /// scanning the full list and rejecting.
    ranked_neighbors: Vec<VertexId>,
    ranked_offsets: Vec<usize>,
}

impl<'a> Context<'a> {
    /// Builds a context for a run over `graph` with `coloring`, attributing
    /// load to `num_ranks` simulated ranks.
    pub fn new(graph: &'a CsrGraph, coloring: &'a Coloring, num_ranks: usize) -> Self {
        assert_eq!(
            coloring.num_vertices(),
            graph.num_vertices(),
            "coloring must cover every vertex of the graph"
        );
        let order = DegreeOrder::new(graph);
        let mut ranked_neighbors = Vec::with_capacity(2 * graph.num_edges());
        let mut ranked_offsets = Vec::with_capacity(graph.num_vertices() + 1);
        ranked_offsets.push(0);
        let mut scratch: Vec<VertexId> = Vec::new();
        for v in graph.vertices() {
            scratch.clear();
            scratch.extend_from_slice(graph.neighbors(v));
            scratch.sort_unstable_by_key(|&w| order.rank(w));
            ranked_neighbors.extend_from_slice(&scratch);
            ranked_offsets.push(ranked_neighbors.len());
        }
        Context {
            graph,
            coloring,
            order,
            partition: BlockPartition::new(graph.num_vertices(), num_ranks),
            ranked_neighbors,
            ranked_offsets,
        }
    }

    /// Neighbors of `v` sorted by ascending degree rank.
    #[inline]
    pub fn neighbors_by_rank(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.ranked_neighbors[self.ranked_offsets[v]..self.ranked_offsets[v + 1]]
    }

    /// The neighbors of `v` that are strictly lower than `than` in the degree
    /// ordering — the only candidates a high-starting path from `than` may
    /// extend to.
    #[inline]
    pub fn lower_neighbors(&self, v: VertexId, than: VertexId) -> &[VertexId] {
        let list = self.neighbors_by_rank(v);
        let bound = self.order.rank(than);
        let cut = list.partition_point(|&w| self.order.rank(w) < bound);
        &list[..cut]
    }

    /// Color of data vertex `v`.
    #[inline]
    pub fn color(&self, v: VertexId) -> u8 {
        self.coloring.color(v)
    }

    /// Signature containing only the color of `v`.
    #[inline]
    pub fn color_sig(&self, v: VertexId) -> Signature {
        Signature::singleton(self.coloring.color(v))
    }

    /// Number of colors `k`.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.coloring.num_colors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_graph::GraphBuilder;

    fn tiny() -> CsrGraph {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1), (1, 2), (2, 3)]);
        b.build()
    }

    #[test]
    fn context_exposes_colors_and_order() {
        let g = tiny();
        let col = Coloring::from_colors(vec![0, 1, 2, 0], 3);
        let ctx = Context::new(&g, &col, 4);
        assert_eq!(ctx.color(1), 1);
        assert_eq!(ctx.color_sig(2), Signature::singleton(2));
        assert_eq!(ctx.num_colors(), 3);
        // Vertex 1 and 2 have degree 2, higher than endpoints.
        assert!(ctx.order.higher(1, 0));
        assert_eq!(ctx.partition.num_ranks(), 4);
    }

    #[test]
    fn ranked_neighbors_are_sorted_and_prefixes_are_lower() {
        let g = tiny();
        let col = Coloring::from_colors(vec![0, 1, 2, 0], 3);
        let ctx = Context::new(&g, &col, 2);
        for v in g.vertices() {
            let ranked = ctx.neighbors_by_rank(v);
            assert_eq!(ranked.len(), g.degree(v));
            assert!(ranked
                .windows(2)
                .all(|w| ctx.order.rank(w[0]) <= ctx.order.rank(w[1])));
            for &than in &[0u32, 1, 2, 3] {
                for &w in ctx.lower_neighbors(v, than) {
                    assert!(ctx.order.higher(than, w));
                }
                let lower = ctx.lower_neighbors(v, than).len();
                let full: usize = ranked
                    .iter()
                    .filter(|&&w| ctx.order.higher(than, w))
                    .count();
                assert_eq!(lower, full);
            }
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_coloring_panics() {
        let g = tiny();
        let col = Coloring::from_colors(vec![0, 1], 2);
        let _ = Context::new(&g, &col, 2);
    }
}
