//! The Degree Based (DB) algorithm — the paper's main contribution.
//!
//! DB partitions the colorful matches of every cycle block by the *highest*
//! data vertex (in the increasing degree-then-id order) among the images of
//! the cycle's nodes, and computes each group separately by building only
//! *high-starting* paths from that vertex (Section 5.1, Figures 5–6;
//! generalised to annotated cycles in Section 5.2, Figure 7). The `u ≻ w`
//! pruning keeps high-degree vertices from blowing up the intermediate
//! tables, which both reduces total work and balances the per-rank load —
//! the MINBUCKET idea lifted from triangles to arbitrary treewidth-2 queries.

use crate::config::Algorithm;
use crate::driver::CountResult;
use crate::engine::Engine;
use crate::error::SgcError;
use sgc_graph::{Coloring, CsrGraph};
use sgc_query::QueryGraph;

/// Counts colorful matches with the DB algorithm (one-shot convenience
/// wrapper around [`Engine`] with [`Algorithm::DegreeBased`]).
pub fn count_colorful_db(
    graph: &CsrGraph,
    coloring: &Coloring,
    query: &QueryGraph,
) -> Result<CountResult, SgcError> {
    Engine::new(graph)
        .count(query)
        .algorithm(Algorithm::DegreeBased)
        .coloring(coloring)
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ps::count_colorful_ps;
    use sgc_graph::GraphBuilder;

    /// PS and DB must agree on every query/coloring — this is the core
    /// equivalence the paper relies on (they compute the same quantity).
    #[test]
    fn db_equals_ps_on_a_small_skewed_graph() {
        // A star plus a few cycle edges, so degrees differ substantially.
        let mut b = GraphBuilder::new(8);
        for v in 1..8 {
            b.add_edge(0, v);
        }
        b.extend_edges([(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 1)]);
        let g = b.build();
        for (qname, query) in [
            ("triangle", sgc_query::catalog::triangle()),
            ("c4", sgc_query::catalog::cycle(4)),
            ("glet1", sgc_query::catalog::glet1()),
            ("youtube", sgc_query::catalog::youtube()),
        ] {
            for seed in 0..3 {
                let coloring = Coloring::random(8, query.num_nodes(), seed);
                let db = count_colorful_db(&g, &coloring, &query).unwrap();
                let ps = count_colorful_ps(&g, &coloring, &query).unwrap();
                assert_eq!(
                    db.colorful_matches, ps.colorful_matches,
                    "PS/DB disagree on {qname} with seed {seed}"
                );
            }
        }
    }
}
