//! Bottom-up evaluation of a decomposition tree (the "plan solver").
//!
//! Implements the overall algorithm of Figure 3: traverse the decomposition
//! tree bottom-up, compute each block's projection table from its children's
//! tables, and report the root's aggregate as the number of colorful matches
//! of the whole query under the given coloring.
//!
//! The [`Engine`] is the public entry point; the free
//! functions in this module are deprecated shims kept for callers that have
//! not migrated yet. They rebuild the graph preprocessing on every call —
//! exactly the cost the engine amortizes away.

use crate::blocks::solve_block;
use crate::config::{Algorithm, CountConfig};
use crate::context::{Context, GraphPrep};
use crate::engine::Engine;
use crate::error::SgcError;
use crate::kernel::{solve_block_columnar, ArenaPool, KernelKind};
use crate::metrics::RunMetrics;
use crate::paths::BlockJoinIndex;
use sgc_engine::{Count, ProjectionTable};
use sgc_graph::{Coloring, CsrGraph};
use sgc_query::{DecompositionTree, QueryGraph};
use std::time::Instant;

/// The outcome of one colorful-counting run.
#[derive(Clone, Debug)]
pub struct CountResult {
    /// Number of colorful matches of the query under the given coloring.
    pub colorful_matches: Count,
    /// Run metrics (loads, operation counts, table sizes, elapsed time).
    pub metrics: RunMetrics,
}

/// Evaluates `tree` bottom-up in `ctx`. The context is assumed validated
/// (coloring covers the graph, positive rank count); the color count must
/// match the query, which callers in this crate check before building `ctx`.
pub(crate) fn count_with_context(
    ctx: &Context<'_>,
    tree: &DecompositionTree,
    algorithm: Algorithm,
    kernel: KernelKind,
    pool: &ArenaPool,
) -> CountResult {
    let started = Instant::now();
    let mut metrics = RunMetrics::new(ctx.partition.num_ranks());

    let colorful_matches = match tree.root {
        // Single-node query: every vertex is a colorful match.
        None => ctx.graph.num_vertices() as Count,
        Some(root) => {
            let mut tables: Vec<Option<ProjectionTable>> = vec![None; tree.blocks.len()];
            match kernel {
                KernelKind::Scalar => {
                    for block in &tree.blocks {
                        let _span = sgc_obs::span(sgc_obs::Stage::DpBlockScalar);
                        let table = solve_block(ctx, tree, block, &tables, algorithm, &mut metrics);
                        tables[block.id] = Some(table);
                    }
                }
                KernelKind::Columnar => {
                    let (mut arena, reused) = pool.checkout();
                    let before = arena.capacity_bytes();
                    for block in &tree.blocks {
                        let _span = sgc_obs::span(sgc_obs::Stage::DpBlockColumnar);
                        let index = BlockJoinIndex::build(block, &tables);
                        let table = solve_block_columnar(
                            ctx,
                            tree,
                            block,
                            &index,
                            algorithm,
                            &mut arena,
                            &mut metrics,
                        );
                        tables[block.id] = Some(table);
                    }
                    let after = arena.capacity_bytes();
                    metrics.kernel.record_checkout(
                        after as u64,
                        reused,
                        after.saturating_sub(before) as u64,
                    );
                    pool.give_back(arena);
                }
            }
            tables[root]
                .as_ref()
                .expect("root table was just computed")
                .total()
        }
    };
    metrics.elapsed = started.elapsed();
    CountResult {
        colorful_matches,
        metrics,
    }
}

/// Counts the colorful matches of the query represented by `tree` in `graph`
/// under `coloring`.
///
/// Deprecated: this rebuilds the graph preprocessing on every call. Bind an
/// [`Engine`] once and reuse it instead.
#[deprecated(
    since = "0.2.0",
    note = "use Engine::new(&graph).count(&tree.query).plan(&tree).coloring(&coloring).run()"
)]
pub fn count_colorful_with_tree(
    graph: &CsrGraph,
    coloring: &Coloring,
    tree: &DecompositionTree,
    config: &CountConfig,
) -> Result<CountResult, SgcError> {
    Engine::new(graph)
        .count(&tree.query)
        .plan(tree)
        .coloring(coloring)
        .config(*config)
        .run()
}

/// Counts the colorful matches of `query` in `graph` under `coloring`,
/// planning the decomposition with the Section 6 heuristic.
///
/// Deprecated: this rebuilds the graph preprocessing on every call. Bind an
/// [`Engine`] once and reuse it instead.
#[deprecated(
    since = "0.2.0",
    note = "use Engine::new(&graph).count(&query).coloring(&coloring).run()"
)]
pub fn count_colorful(
    graph: &CsrGraph,
    coloring: &Coloring,
    query: &QueryGraph,
    config: &CountConfig,
) -> Result<CountResult, SgcError> {
    Engine::new(graph)
        .count(query)
        .coloring(coloring)
        .config(*config)
        .run()
}

/// One-shot counting that builds a fresh [`GraphPrep`] per call, mirroring
/// the pre-`Engine` behaviour so the `engine_reuse` benchmark can pin the
/// amortization win.
///
/// Hidden from docs: this is benchmark support, not a supported third
/// counting path — it deliberately defeats the amortization the [`Engine`]
/// provides.
#[doc(hidden)]
pub fn count_colorful_fresh_prep(
    graph: &CsrGraph,
    coloring: &Coloring,
    tree: &DecompositionTree,
    config: &CountConfig,
) -> Result<CountResult, SgcError> {
    if coloring.num_colors() != tree.query.num_nodes() {
        return Err(SgcError::WrongColorCount {
            expected: tree.query.num_nodes(),
            actual: coloring.num_colors(),
        });
    }
    let prep = GraphPrep::new(graph);
    let ctx = Context::new(graph, &prep, coloring, config.num_ranks)?;
    // A fresh pool per call: this path deliberately forgoes all amortization.
    let pool = ArenaPool::new();
    Ok(count_with_context(
        &ctx,
        tree,
        config.algorithm,
        config.kernel,
        &pool,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use crate::engine::Engine;
    use sgc_graph::GraphBuilder;

    fn cycle_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(i as u32, ((i + 1) % n) as u32);
        }
        b.build()
    }

    #[test]
    fn rainbow_square_counts_eight_matches() {
        // C4 data graph with 4 distinct colors; the C4 query has 8
        // automorphism-distinct colorful matches (aut(C4) = 8, one subgraph).
        let g = cycle_graph(4);
        let engine = Engine::new(&g);
        let coloring = Coloring::from_colors(vec![0, 1, 2, 3], 4);
        let query = sgc_query::catalog::cycle(4);
        for alg in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
            let res = engine
                .count(&query)
                .algorithm(alg)
                .coloring(&coloring)
                .run()
                .unwrap();
            assert_eq!(res.colorful_matches, 8, "{alg}");
        }
    }

    #[test]
    fn path_query_on_path_graph() {
        // Data path 0-1-2 with rainbow colors; query P3 has 2 colorful
        // matches (the two directions).
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(0, 1), (1, 2)]);
        let g = b.build();
        let engine = Engine::new(&g);
        let coloring = Coloring::from_colors(vec![0, 1, 2], 3);
        let query = sgc_query::catalog::path(3);
        for alg in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
            let res = engine
                .count(&query)
                .algorithm(alg)
                .coloring(&coloring)
                .run()
                .unwrap();
            assert_eq!(res.colorful_matches, 2, "{alg}");
        }
    }

    #[test]
    fn single_node_query_counts_vertices() {
        let g = cycle_graph(5);
        let coloring = Coloring::from_colors(vec![0; 5], 1);
        let query = QueryGraph::new(1);
        let res = Engine::new(&g)
            .count(&query)
            .coloring(&coloring)
            .run()
            .unwrap();
        assert_eq!(res.colorful_matches, 5);
    }

    #[test]
    fn single_edge_query_counts_bichromatic_edges() {
        // Path 0-1-2 colored 0,1,0: edges (0,1) and (1,2) are both
        // bichromatic; each contributes 2 matches (both orientations).
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(0, 1), (1, 2)]);
        let g = b.build();
        let coloring = Coloring::from_colors(vec![0, 1, 0], 2);
        let query = QueryGraph::from_edges(2, &[(0, 1)]).unwrap();
        let res = Engine::new(&g)
            .count(&query)
            .coloring(&coloring)
            .run()
            .unwrap();
        assert_eq!(res.colorful_matches, 4);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_agree_with_the_engine() {
        let g = cycle_graph(6);
        let coloring = Coloring::random(g.num_vertices(), 4, 3);
        let query = sgc_query::catalog::cycle(4);
        let config = CountConfig::default();
        let tree = sgc_query::decompose(&query).unwrap();
        let via_engine = Engine::new(&g)
            .count(&query)
            .coloring(&coloring)
            .run()
            .unwrap()
            .colorful_matches;
        let via_free = count_colorful(&g, &coloring, &query, &config)
            .unwrap()
            .colorful_matches;
        let via_tree = count_colorful_with_tree(&g, &coloring, &tree, &config)
            .unwrap()
            .colorful_matches;
        let via_fresh = count_colorful_fresh_prep(&g, &coloring, &tree, &config)
            .unwrap()
            .colorful_matches;
        assert_eq!(via_engine, via_free);
        assert_eq!(via_engine, via_tree);
        assert_eq!(via_engine, via_fresh);
    }

    #[test]
    #[allow(deprecated)]
    fn wrong_color_count_is_an_error_not_a_panic() {
        let g = cycle_graph(4);
        let coloring = Coloring::from_colors(vec![0; 4], 2);
        let query = sgc_query::catalog::cycle(4);
        let tree = sgc_query::decompose(&query).unwrap();
        let err =
            count_colorful_with_tree(&g, &coloring, &tree, &CountConfig::default()).unwrap_err();
        assert_eq!(
            err,
            SgcError::WrongColorCount {
                expected: 4,
                actual: 2
            }
        );
    }
}
