//! Bottom-up evaluation of a decomposition tree (the "plan solver").
//!
//! Implements the overall algorithm of Figure 3: traverse the decomposition
//! tree bottom-up, compute each block's projection table from its children's
//! tables, and report the root's aggregate as the number of colorful matches
//! of the whole query under the given coloring.

use crate::blocks::solve_block;
use crate::config::CountConfig;
use crate::context::Context;
use crate::metrics::RunMetrics;
use sgc_engine::{Count, ProjectionTable};
use sgc_graph::{Coloring, CsrGraph};
use sgc_query::{heuristic_plan, DecompositionTree, QueryError, QueryGraph};
use std::time::Instant;

/// The outcome of one colorful-counting run.
#[derive(Clone, Debug)]
pub struct CountResult {
    /// Number of colorful matches of the query under the given coloring.
    pub colorful_matches: Count,
    /// Run metrics (loads, operation counts, table sizes, elapsed time).
    pub metrics: RunMetrics,
}

/// Counts the colorful matches of the query represented by `tree` in `graph`
/// under `coloring`.
///
/// # Panics
/// Panics if the coloring does not use exactly as many colors as the query
/// has nodes, or does not cover the graph.
pub fn count_colorful_with_tree(
    graph: &CsrGraph,
    coloring: &Coloring,
    tree: &DecompositionTree,
    config: &CountConfig,
) -> CountResult {
    assert_eq!(
        coloring.num_colors(),
        tree.query.num_nodes(),
        "color coding uses exactly k colors for a k-node query"
    );
    let started = Instant::now();
    let ctx = Context::new(graph, coloring, config.num_ranks);
    let mut metrics = RunMetrics::new(config.num_ranks);

    let colorful_matches = match tree.root {
        // Single-node query: every vertex is a colorful match.
        None => graph.num_vertices() as Count,
        Some(root) => {
            let mut tables: Vec<Option<ProjectionTable>> = vec![None; tree.blocks.len()];
            for block in &tree.blocks {
                let table =
                    solve_block(&ctx, tree, block, &tables, config.algorithm, &mut metrics);
                tables[block.id] = Some(table);
            }
            tables[root]
                .as_ref()
                .expect("root table was just computed")
                .total()
        }
    };
    metrics.elapsed = started.elapsed();
    CountResult {
        colorful_matches,
        metrics,
    }
}

/// Counts the colorful matches of `query` in `graph` under `coloring`,
/// planning the decomposition with the Section 6 heuristic.
pub fn count_colorful(
    graph: &CsrGraph,
    coloring: &Coloring,
    query: &QueryGraph,
    config: &CountConfig,
) -> Result<CountResult, QueryError> {
    let tree = heuristic_plan(query)?;
    Ok(count_colorful_with_tree(graph, coloring, &tree, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use sgc_graph::GraphBuilder;

    fn cycle_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(i as u32, ((i + 1) % n) as u32);
        }
        b.build()
    }

    #[test]
    fn rainbow_square_counts_eight_matches() {
        // C4 data graph with 4 distinct colors; the C4 query has 8
        // automorphism-distinct colorful matches (aut(C4) = 8, one subgraph).
        let g = cycle_graph(4);
        let coloring = Coloring::from_colors(vec![0, 1, 2, 3], 4);
        let query = sgc_query::catalog::cycle(4);
        for alg in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
            let res = count_colorful(&g, &coloring, &query, &CountConfig::new(alg)).unwrap();
            assert_eq!(res.colorful_matches, 8, "{alg}");
        }
    }

    #[test]
    fn path_query_on_path_graph() {
        // Data path 0-1-2 with rainbow colors; query P3 has 2 colorful
        // matches (the two directions).
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(0, 1), (1, 2)]);
        let g = b.build();
        let coloring = Coloring::from_colors(vec![0, 1, 2], 3);
        let query = sgc_query::catalog::path(3);
        for alg in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
            let res = count_colorful(&g, &coloring, &query, &CountConfig::new(alg)).unwrap();
            assert_eq!(res.colorful_matches, 2, "{alg}");
        }
    }

    #[test]
    fn single_node_query_counts_vertices() {
        let g = cycle_graph(5);
        let coloring = Coloring::from_colors(vec![0; 5], 1);
        let query = QueryGraph::new(1);
        let res = count_colorful(&g, &coloring, &query, &CountConfig::default()).unwrap();
        assert_eq!(res.colorful_matches, 5);
    }

    #[test]
    fn single_edge_query_counts_bichromatic_edges() {
        // Path 0-1-2 colored 0,1,0: edges (0,1) and (1,2) are both
        // bichromatic; each contributes 2 matches (both orientations).
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(0, 1), (1, 2)]);
        let g = b.build();
        let coloring = Coloring::from_colors(vec![0, 1, 0], 2);
        let query = QueryGraph::from_edges(2, &[(0, 1)]);
        let res = count_colorful(&g, &coloring, &query, &CountConfig::default()).unwrap();
        assert_eq!(res.colorful_matches, 4);
    }

    #[test]
    fn rejects_invalid_queries() {
        let g = cycle_graph(4);
        let coloring = Coloring::from_colors(vec![0; 4], 4);
        let mut k4 = QueryGraph::new(4);
        for a in 0..4u8 {
            for b in (a + 1)..4 {
                k4.add_edge(a, b);
            }
        }
        assert!(count_colorful(&g, &coloring, &k4, &CountConfig::default()).is_err());
    }

    #[test]
    #[should_panic]
    fn wrong_color_count_panics() {
        let g = cycle_graph(4);
        let coloring = Coloring::from_colors(vec![0; 4], 2);
        let query = sgc_query::catalog::cycle(4);
        let tree = sgc_query::decompose(&query).unwrap();
        let _ = count_colorful_with_tree(&g, &coloring, &tree, &CountConfig::default());
    }
}
