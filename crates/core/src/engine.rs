//! The bind-once counting front door.
//!
//! [`Engine::new`] binds to a data graph and runs the expensive
//! coloring-independent preprocessing (degree order, rank-sorted adjacency)
//! exactly once. Every subsequent request — exact colorful counts or
//! multi-trial estimates, for any query — reuses that work. Decomposition
//! plans are cached per query, so repeated queries skip the planner too.
//!
//! ```
//! use sgc_core::{Algorithm, Engine};
//! use sgc_graph::GraphBuilder;
//! use sgc_query::catalog;
//!
//! let mut b = GraphBuilder::new(5);
//! b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
//! let graph = b.build();
//!
//! let engine = Engine::new(&graph); // preprocessing happens here, once
//! let estimate = engine
//!     .count(&catalog::triangle())
//!     .algorithm(Algorithm::DegreeBased)
//!     .trials(32)
//!     .seed(7)
//!     .estimate()
//!     .unwrap();
//! assert!(estimate.estimated_matches >= 0.0);
//! ```

use crate::config::{Algorithm, CountConfig};
use crate::context::{Context, GraphPrep};
use crate::driver::{count_with_context, CountResult};
use crate::error::SgcError;
use crate::estimator::{summarize_trials, Estimate, EstimateConfig, TrialAccumulator};
use crate::explain::PlanReport;
use crate::kernel::{ArenaPool, KernelKind};
use crate::runtime::shard::count_sharded;
use sgc_engine::parallel::parallel_indexed;
use sgc_engine::Count;
use sgc_graph::{Coloring, CsrGraph};
use sgc_query::{
    canonical_key, heuristic_plan, CanonicalQueryKey, DecompositionTree, Pattern, QueryGraph,
};
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The engine's hold on its data graph: either a borrow (the classic
/// bind-once-in-scope usage) or shared ownership through an `Arc` (what a
/// long-lived service needs so that `Engine<'static>` can cross into worker
/// threads without a self-referential struct).
enum GraphRef<'g> {
    Borrowed(&'g CsrGraph),
    Shared(Arc<CsrGraph>),
}

impl std::ops::Deref for GraphRef<'_> {
    type Target = CsrGraph;

    fn deref(&self) -> &CsrGraph {
        match self {
            GraphRef::Borrowed(graph) => graph,
            GraphRef::Shared(graph) => graph,
        }
    }
}

/// A long-lived counting engine bound to one data graph.
///
/// Construction runs the `O(m log m)` preprocessing pass ([`GraphPrep`]);
/// requests created with [`Engine::count`] share it across queries, trials
/// and threads. The engine also memoizes decomposition plans per query,
/// keyed by the canonical form from [`sgc_query::canonical_key`].
pub struct Engine<'g> {
    graph: GraphRef<'g>,
    prep: GraphPrep,
    plan_cache: Mutex<HashMap<CanonicalQueryKey, Arc<DecompositionTree>>>,
    default_config: CountConfig,
    /// Reusable columnar-kernel arenas, shared by every request (and every
    /// worker task) of this engine: trial `i + 1` solves into the buffers
    /// trial `i` grew.
    arena_pool: ArenaPool,
}

impl Engine<'static> {
    /// Binds an engine to a shared graph with the default [`CountConfig`].
    ///
    /// The returned engine owns a reference count on the graph and has no
    /// borrowed lifetime, so it can be stored in `'static` contexts — worker
    /// threads, services, globals. The `sgc-service` worker pool is the
    /// canonical caller: one shared `Engine<'static>` serves every job.
    pub fn from_shared(graph: Arc<CsrGraph>) -> Self {
        Engine::from_shared_with_config(graph, CountConfig::default())
    }

    /// Binds an engine to a shared graph with `config` as the default for
    /// every request.
    pub fn from_shared_with_config(graph: Arc<CsrGraph>, config: CountConfig) -> Self {
        Engine::build(GraphRef::Shared(graph), config)
    }
}

impl<'g> Engine<'g> {
    /// Binds an engine to `graph` with the default [`CountConfig`], running
    /// the preprocessing pass once.
    pub fn new(graph: &'g CsrGraph) -> Self {
        Engine::with_config(graph, CountConfig::default())
    }

    /// Binds an engine to `graph` with `config` as the default for every
    /// request (individual requests can still override it).
    pub fn with_config(graph: &'g CsrGraph, config: CountConfig) -> Self {
        Engine::build(GraphRef::Borrowed(graph), config)
    }

    fn build(graph: GraphRef<'g>, config: CountConfig) -> Self {
        let _span = config.obs.then(|| sgc_obs::span(sgc_obs::Stage::Bind));
        let prep = GraphPrep::new(&graph);
        Engine {
            graph,
            prep,
            plan_cache: Mutex::new(HashMap::new()),
            default_config: config,
            arena_pool: ArenaPool::new(),
        }
    }

    /// The engine's columnar-kernel arena pool.
    pub(crate) fn arena_pool(&self) -> &ArenaPool {
        &self.arena_pool
    }

    /// The bound data graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The reusable preprocessing (degree order, rank-sorted adjacency).
    pub fn prep(&self) -> &GraphPrep {
        &self.prep
    }

    /// The decomposition plan for `query`, planned with the Section 6
    /// heuristic on first use and served from the cache afterwards.
    ///
    /// # Errors
    /// [`SgcError::Query`] if the query has no treewidth-≤2 decomposition.
    pub fn plan(&self, query: &QueryGraph) -> Result<Arc<DecompositionTree>, SgcError> {
        let key = canonical_key(query);
        if let Some(plan) = self.lock_cache().get(&key) {
            return Ok(Arc::clone(plan));
        }
        // Plan outside the critical section: concurrent planners of distinct
        // queries don't serialize, and a panicking planner can't poison the
        // cache for the rest of the engine's life. Racing threads may both
        // plan the same query; the first insert wins and both get that plan.
        let plan = {
            let _span = sgc_obs::span(sgc_obs::Stage::Plan);
            Arc::new(heuristic_plan(query)?)
        };
        Ok(Arc::clone(self.lock_cache().entry(key).or_insert(plan)))
    }

    /// Number of distinct queries currently held in the plan cache.
    pub fn cached_plans(&self) -> usize {
        self.lock_cache().len()
    }

    /// Locks the plan cache, recovering from poisoning: the cache only holds
    /// completed `Arc<DecompositionTree>` entries, so a panic elsewhere
    /// cannot leave it in a torn state.
    fn lock_cache(
        &self,
    ) -> std::sync::MutexGuard<'_, HashMap<CanonicalQueryKey, Arc<DecompositionTree>>> {
        self.plan_cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Starts a counting request for `query`, to be finished with
    /// [`CountRequest::run`] or [`CountRequest::estimate`]. Trial count and
    /// seed default to [`EstimateConfig::default`]'s values.
    ///
    /// ```
    /// use sgc_core::Engine;
    /// use sgc_graph::{Coloring, GraphBuilder};
    /// use sgc_query::catalog;
    ///
    /// let mut b = GraphBuilder::new(3);
    /// b.extend_edges([(0, 1), (1, 2), (2, 0)]);
    /// let graph = b.build();
    ///
    /// // A rainbow-colored data triangle has 3! = 6 colorful matches of the
    /// // triangle query (one per orientation of the mapping).
    /// let coloring = Coloring::from_colors(vec![0, 1, 2], 3);
    /// let result = Engine::new(&graph)
    ///     .count(&catalog::triangle())
    ///     .coloring(&coloring)
    ///     .run()
    ///     .unwrap();
    /// assert_eq!(result.colorful_matches, 6);
    /// ```
    pub fn count<'e, 'a>(&'e self, query: &'a QueryGraph) -> CountRequest<'e, 'g, 'a> {
        self.request(Cow::Borrowed(query))
    }

    /// Starts a counting request for a textual pattern: the parsing front
    /// door. The text is parsed with the built-in
    /// [`Registry`](sgc_query::Registry) (edge lists, generator macros and
    /// catalog names all work; see [`sgc_query::parse`] for the grammar) and
    /// the resulting request behaves exactly like
    /// [`count`](Engine::count) of the equivalent constructor-built query —
    /// same plan cache entry, bit-identical counts.
    ///
    /// ```
    /// use sgc_core::Engine;
    /// use sgc_graph::GraphBuilder;
    /// use sgc_query::catalog;
    ///
    /// let mut b = GraphBuilder::new(5);
    /// b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
    /// let graph = b.build();
    /// let engine = Engine::new(&graph);
    ///
    /// let by_text = engine.count_str("a-b, b-c, c-a").unwrap().seed(7).run().unwrap();
    /// let by_ctor = engine.count(&catalog::triangle()).seed(7).run().unwrap();
    /// assert_eq!(by_text.colorful_matches, by_ctor.colorful_matches);
    /// ```
    ///
    /// # Errors
    /// [`SgcError::Pattern`] with the byte span of the offending token for
    /// malformed patterns (never a panic).
    pub fn count_str<'e, 'a>(
        &'e self,
        pattern: &str,
    ) -> Result<CountRequest<'e, 'g, 'a>, SgcError> {
        let query = Pattern::parse(pattern)?.into_query();
        Ok(self.request(Cow::Owned(query)))
    }

    /// Explains what a request for `query` would do, without running it: the
    /// candidate decomposition trees with their Section 6 cost vectors, the
    /// heuristic's choice (exactly the plan [`Engine::plan`] caches), the
    /// treewidth verdict, and upper bounds on the projection-table sizes on
    /// this engine's graph. The returned [`PlanReport`] `Display`s as the
    /// explain text.
    ///
    /// `&Pattern` dereferences to `&QueryGraph`, so parsed patterns can be
    /// explained directly: `engine.explain(&pattern)`.
    ///
    /// # Errors
    /// [`SgcError::Query`] for unplannable queries (empty, disconnected,
    /// treewidth > 2).
    pub fn explain(&self, query: &QueryGraph) -> Result<PlanReport, SgcError> {
        crate::explain::build_report(
            self.graph().num_vertices(),
            query,
            self.default_config.algorithm,
        )
    }

    /// [`explain`](Engine::explain) for a textual pattern.
    ///
    /// ```
    /// use sgc_core::Engine;
    /// use sgc_graph::GraphBuilder;
    ///
    /// let mut b = GraphBuilder::new(4);
    /// b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
    /// let graph = b.build();
    /// let report = Engine::new(&graph).explain_str("cycle(3)").unwrap();
    /// assert_eq!(report.num_nodes, 3);
    /// assert_eq!(report.candidates.len(), 1);
    /// println!("{report}"); // the explain text
    /// ```
    ///
    /// # Errors
    /// [`SgcError::Pattern`] for malformed patterns, plus everything
    /// [`explain`](Engine::explain) reports.
    pub fn explain_str(&self, pattern: &str) -> Result<PlanReport, SgcError> {
        let query = Pattern::parse(pattern)?.into_query();
        self.explain(&query)
    }

    /// Executes many counting requests as one batch: every trial step draws
    /// each needed coloring **once** (queries with the same node count and
    /// effective seed share it) and runs the PS/DB dynamic program per
    /// *distinct* query against that shared coloring — structurally
    /// identical requests share one plan and one DP result.
    ///
    /// Every request's estimate is **bit-identical** to its solo
    /// [`estimate`](CountRequest::estimate): trial `i` of a request still
    /// colors with `seed + i` and runs the same DP, so batching changes how
    /// often shared work happens, never what any query observes. The
    /// returned [`BatchMetrics`](crate::BatchMetrics) report how much was
    /// shared.
    ///
    /// Requests must come from this engine (so they share its graph,
    /// preprocessing and plan cache); a request carrying an explicit
    /// coloring is rejected exactly like a solo `estimate`. If any request
    /// asked for [`sharded`](CountRequest::sharded) execution and the batch
    /// runs sequentially ([`parallel(false)`](CountRequest::parallel) on
    /// every member), each trial step runs through the batch-aware sharded
    /// runtime: one exchange round serves all queries in a block step.
    ///
    /// ```
    /// use sgc_core::Engine;
    /// use sgc_graph::GraphBuilder;
    /// use sgc_query::catalog;
    ///
    /// let mut b = GraphBuilder::new(6);
    /// b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
    /// let graph = b.build();
    /// let engine = Engine::new(&graph);
    ///
    /// let queries = [catalog::triangle(), catalog::cycle(4)];
    /// let requests: Vec<_> = queries
    ///     .iter()
    ///     .map(|q| engine.count(q).trials(8).seed(7))
    ///     .collect();
    /// let batch = engine.count_batch(&requests).unwrap();
    ///
    /// // Bit-identical to the solo runs, with shared colorings underneath.
    /// for (query, estimate) in queries.iter().zip(&batch.estimates) {
    ///     let solo = engine.count(query).trials(8).seed(7).estimate().unwrap();
    ///     assert_eq!(estimate.per_trial, solo.per_trial);
    /// }
    /// ```
    ///
    /// # Errors
    /// [`SgcError::EngineMismatch`] for a request built by another engine,
    /// [`SgcError::ColoringWithEstimate`] for an explicit coloring,
    /// [`SgcError::ZeroTrials`] / [`SgcError::ZeroRanks`] /
    /// [`SgcError::ZeroShards`] for zero trials, ranks or shards, plus the
    /// planning errors of [`run`](CountRequest::run).
    pub fn count_batch<'a>(
        &self,
        requests: &[CountRequest<'_, 'g, 'a>],
    ) -> Result<crate::batch::BatchResult, SgcError> {
        crate::batch::execute(self, requests)
    }

    fn request<'e, 'a>(&'e self, query: Cow<'a, QueryGraph>) -> CountRequest<'e, 'g, 'a> {
        let estimate_defaults = EstimateConfig::default();
        CountRequest {
            engine: self,
            query,
            algorithm: self.default_config.algorithm,
            num_ranks: self.default_config.num_ranks,
            kernel: self.default_config.kernel,
            coloring: None,
            plan: None,
            trials: estimate_defaults.trials,
            seed: estimate_defaults.seed,
            parallel: true,
            shards: None,
            obs: self.default_config.obs,
        }
    }
}

/// Either a caller-supplied plan or a cache-owned one.
pub(crate) enum PlanRef<'a> {
    Borrowed(&'a DecompositionTree),
    Cached(Arc<DecompositionTree>),
}

impl std::ops::Deref for PlanRef<'_> {
    type Target = DecompositionTree;

    fn deref(&self) -> &DecompositionTree {
        match self {
            PlanRef::Borrowed(tree) => tree,
            PlanRef::Cached(tree) => tree,
        }
    }
}

/// A builder for one counting or estimation request.
///
/// Created by [`Engine::count`]; terminated by [`run`](CountRequest::run)
/// (one exact colorful count) or [`estimate`](CountRequest::estimate)
/// (multi-trial approximate counting).
#[must_use = "a CountRequest does nothing until .run() or .estimate() is called"]
pub struct CountRequest<'e, 'g, 'a> {
    pub(crate) engine: &'e Engine<'g>,
    pub(crate) query: Cow<'a, QueryGraph>,
    pub(crate) algorithm: Algorithm,
    pub(crate) num_ranks: usize,
    pub(crate) kernel: KernelKind,
    pub(crate) coloring: Option<&'a Coloring>,
    pub(crate) plan: Option<&'a DecompositionTree>,
    pub(crate) trials: usize,
    pub(crate) seed: u64,
    pub(crate) parallel: bool,
    pub(crate) shards: Option<usize>,
    pub(crate) obs: bool,
}

impl<'e, 'g, 'a> CountRequest<'e, 'g, 'a> {
    /// Selects the cycle-solving algorithm (default: the engine's).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the number of simulated ranks for load attribution (default: the
    /// engine's). Zero is rejected at run time with [`SgcError::ZeroRanks`].
    pub fn ranks(mut self, num_ranks: usize) -> Self {
        self.num_ranks = num_ranks;
        self
    }

    /// Applies a whole [`CountConfig`] (algorithm, ranks, kernel and
    /// observability toggle) at once.
    pub fn config(mut self, config: CountConfig) -> Self {
        self.algorithm = config.algorithm;
        self.num_ranks = config.num_ranks;
        self.kernel = config.kernel;
        self.obs = config.obs;
        self
    }

    /// Enables or disables observability for this request (default: the
    /// engine's, normally on): stage spans on the threads that execute the
    /// run and publication of run counters into the `sgc-obs` registry.
    /// Counts are bit-identical either way — observability reads, never
    /// branches, the DP.
    pub fn obs(mut self, obs: bool) -> Self {
        self.obs = obs;
        self
    }

    /// Selects the join kernel (default: the engine's, normally
    /// [`KernelKind::Columnar`]). Counts are bit-identical across kernels;
    /// the switch exists for differential testing and benchmarking.
    pub fn kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Uses an explicit coloring for [`run`](CountRequest::run) instead of a
    /// seeded random one. Incompatible with
    /// [`estimate`](CountRequest::estimate), which draws its own per-trial
    /// colorings and rejects the combination with
    /// [`SgcError::ColoringWithEstimate`].
    pub fn coloring(mut self, coloring: &'a Coloring) -> Self {
        self.coloring = Some(coloring);
        self
    }

    /// Uses an explicit decomposition plan instead of the engine's cached
    /// heuristic plan. The plan must decompose the same query.
    pub fn plan(mut self, plan: &'a DecompositionTree) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Number of independent random colorings for
    /// [`estimate`](CountRequest::estimate) (default 3).
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Base RNG seed. Trial `i` always colors with `seed + i`, regardless of
    /// how trials are scheduled over threads.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables trial-level parallelism for
    /// [`estimate`](CountRequest::estimate) (default on). The estimate is
    /// bit-identical either way; this only exists for measurement and tests.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Routes the request through the sharded rank-runtime: the data graph's
    /// vertices are block-partitioned into `num_shards` shards, each shard
    /// solves every block of the plan over the paths starting in its own
    /// vertex range on a worker thread, and the per-shard partial-sum tables
    /// are combined in an explicit exchange round per block
    /// ([`runtime`](crate::runtime), mirroring the paper's rank model and
    /// alltoall, Sections 5–7).
    ///
    /// The count is **bit-identical** to the unsharded path for every shard
    /// count ≥ 1; what changes is the execution (real per-shard parallelism)
    /// and the metrics: the result's
    /// [`RunMetrics::shards`](crate::RunMetrics::shards) reports what each
    /// shard actually did. Zero shards is rejected at run time with
    /// [`SgcError::ZeroShards`].
    ///
    /// For [`estimate`](CountRequest::estimate), per-trial sharding applies
    /// when trial-level parallelism is disabled; see there for the
    /// interaction.
    ///
    /// ```
    /// use sgc_core::Engine;
    /// use sgc_graph::GraphBuilder;
    /// use sgc_query::catalog;
    ///
    /// let mut b = GraphBuilder::new(5);
    /// b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
    /// let graph = b.build();
    /// let engine = Engine::new(&graph);
    ///
    /// let serial = engine.count(&catalog::triangle()).seed(3).run().unwrap();
    /// let sharded = engine
    ///     .count(&catalog::triangle())
    ///     .seed(3)
    ///     .sharded(4)
    ///     .run()
    ///     .unwrap();
    /// assert_eq!(sharded.colorful_matches, serial.colorful_matches);
    ///
    /// let shards = sharded.metrics.shards.expect("sharded runs report shard metrics");
    /// assert_eq!(shards.num_shards(), 4);
    /// assert!(shards.imbalance() >= 1.0);
    /// ```
    pub fn sharded(mut self, num_shards: usize) -> Self {
        self.shards = Some(num_shards);
        self
    }

    pub(crate) fn resolve_plan(&self) -> Result<PlanRef<'a>, SgcError> {
        match self.plan {
            Some(tree) => {
                // Same canonical form as the cache key, so "is this plan for
                // this query" and "would the cache treat these queries as
                // equal" can never diverge.
                if canonical_key(&tree.query) != canonical_key(&self.query) {
                    return Err(SgcError::PlanQueryMismatch {
                        query_nodes: self.query.num_nodes(),
                        plan_nodes: tree.query.num_nodes(),
                        query_edges: self.query.num_edges(),
                        plan_edges: tree.query.num_edges(),
                    });
                }
                Ok(PlanRef::Borrowed(tree))
            }
            None => Ok(PlanRef::Cached(self.engine.plan(&self.query)?)),
        }
    }

    /// Runs one colorful count under the request's coloring (explicit via
    /// [`coloring`](CountRequest::coloring), or a random one drawn from
    /// [`seed`](CountRequest::seed)).
    ///
    /// # Errors
    /// [`SgcError::Query`] for unplannable queries,
    /// [`SgcError::PlanQueryMismatch`] for a plan of a different query,
    /// [`SgcError::WrongColorCount`] / [`SgcError::ColoringSizeMismatch`]
    /// for an unusable coloring, [`SgcError::ZeroRanks`] for a zero rank
    /// count, and [`SgcError::ZeroShards`] for a sharded request with zero
    /// shards.
    pub fn run(self) -> Result<CountResult, SgcError> {
        // A disabled request suspends span recording on this thread for the
        // whole run (the sharded fan-out re-suspends on its workers).
        let _pause = (!self.obs).then(sgc_obs::suspend);
        let plan = self.resolve_plan()?;
        let k = self.query.num_nodes();
        let fresh;
        let coloring = match self.coloring {
            Some(coloring) => {
                if coloring.num_colors() != k {
                    return Err(SgcError::WrongColorCount {
                        expected: k,
                        actual: coloring.num_colors(),
                    });
                }
                coloring
            }
            None => {
                let _span = sgc_obs::span(sgc_obs::Stage::Coloring);
                fresh = Coloring::random(self.engine.graph().num_vertices(), k, self.seed);
                &fresh
            }
        };
        let result = match self.shards {
            Some(num_shards) => count_sharded(
                self.engine.graph(),
                &self.engine.prep,
                coloring,
                &plan,
                self.algorithm,
                self.num_ranks,
                num_shards,
                self.kernel,
                self.engine.arena_pool(),
                self.obs,
            )?,
            None => {
                let ctx = Context::new(
                    self.engine.graph(),
                    &self.engine.prep,
                    coloring,
                    self.num_ranks,
                )?;
                count_with_context(
                    &ctx,
                    &plan,
                    self.algorithm,
                    self.kernel,
                    self.engine.arena_pool(),
                )
            }
        };
        if self.obs {
            result.metrics.publish();
        }
        Ok(result)
    }

    /// Runs `trials` independent colorful counts (trial `i` colored with
    /// `seed + i`) and scales them into an estimate of the match count.
    ///
    /// Trials run in parallel over the current thread pool unless
    /// [`parallel(false)`](CountRequest::parallel) was set; the result is
    /// bit-identical either way. The engine's preprocessing is reused by
    /// every trial — nothing graph-dependent is rebuilt. With
    /// [`sharded`](CountRequest::sharded) set and sequential trials
    /// ([`parallel(false)`](CountRequest::parallel)), each trial runs
    /// through the sharded rank-runtime, parallelising *within* the trial
    /// instead of across trials; under parallel trials the shards would
    /// only serialize, so the unsharded per-trial path is used (the counts
    /// are identical in all three modes).
    ///
    /// ```
    /// use sgc_core::Engine;
    /// use sgc_graph::GraphBuilder;
    /// use sgc_query::catalog;
    ///
    /// let mut b = GraphBuilder::new(4);
    /// b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
    /// let graph = b.build();
    /// let engine = Engine::new(&graph);
    ///
    /// let estimate = engine
    ///     .count(&catalog::triangle())
    ///     .trials(8)
    ///     .seed(1)
    ///     .estimate()
    ///     .unwrap();
    /// assert_eq!(estimate.per_trial.len(), 8);
    /// // Rerunning with the same seed is deterministic.
    /// let again = engine
    ///     .count(&catalog::triangle())
    ///     .trials(8)
    ///     .seed(1)
    ///     .estimate()
    ///     .unwrap();
    /// assert_eq!(estimate.per_trial, again.per_trial);
    /// ```
    ///
    /// # Errors
    /// [`SgcError::ZeroTrials`] for zero trials,
    /// [`SgcError::ColoringWithEstimate`] if an explicit coloring was set,
    /// plus every error [`run`](CountRequest::run) can report except the
    /// coloring-shape ones.
    pub fn estimate(self) -> Result<Estimate, SgcError> {
        if self.trials == 0 {
            return Err(SgcError::ZeroTrials);
        }
        let trials = self.trials;
        // `estimate` is literally one full chunk of the incremental API:
        // fixed-trial and early-stopped estimation share every line of the
        // trial loop, which is what makes the anytime-consistency contract
        // (stream stopped after `t` trials ≡ batch run of `t` trials) hold
        // by construction.
        let mut stream = self.estimate_incremental()?;
        stream.run_chunk(trials);
        stream.estimate()
    }

    /// Starts an incremental estimation: a [`TrialStream`] that runs trials
    /// in caller-controlled chunks and surfaces streaming precision
    /// statistics after each, instead of committing to a trial count up
    /// front.
    ///
    /// The per-trial determinism contract is unchanged — trial `i` colors
    /// with `seed + i` no matter how the trials are chunked or scheduled —
    /// so an early-stopped stream is *anytime-consistent*: its estimate
    /// after `t` trials is bit-identical to
    /// [`trials(t)`](CountRequest::trials)`.estimate()`. This is the engine
    /// half of adaptive trial scheduling; the `sgc-service` worker loop is
    /// the canonical consumer.
    ///
    /// ```
    /// use sgc_core::Engine;
    /// use sgc_graph::GraphBuilder;
    /// use sgc_query::catalog;
    ///
    /// let mut b = GraphBuilder::new(5);
    /// b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
    /// let graph = b.build();
    /// let engine = Engine::new(&graph);
    /// let triangle = catalog::triangle();
    ///
    /// let mut stream = engine
    ///     .count(&triangle)
    ///     .seed(3)
    ///     .estimate_incremental()
    ///     .unwrap();
    /// while stream.trials_run() < 24 && stream.relative_half_width(0.95) > 0.25 {
    ///     stream.run_chunk(4);
    /// }
    /// let adaptive = stream.estimate().unwrap();
    ///
    /// // Anytime consistency: a batch run of exactly that many trials is
    /// // bit-identical.
    /// let batch = engine
    ///     .count(&triangle)
    ///     .seed(3)
    ///     .trials(adaptive.per_trial.len())
    ///     .estimate()
    ///     .unwrap();
    /// assert_eq!(adaptive.per_trial, batch.per_trial);
    /// assert_eq!(adaptive.estimated_matches, batch.estimated_matches);
    /// ```
    ///
    /// # Errors
    /// [`SgcError::ColoringWithEstimate`] if an explicit coloring was set,
    /// [`SgcError::ZeroRanks`] / [`SgcError::ZeroShards`] for zero ranks or
    /// shards, plus the planning errors of [`run`](CountRequest::run).
    pub fn estimate_incremental(self) -> Result<TrialStream<'e, 'g, 'a>, SgcError> {
        if self.coloring.is_some() {
            return Err(SgcError::ColoringWithEstimate);
        }
        if self.num_ranks == 0 {
            return Err(SgcError::ZeroRanks);
        }
        if self.shards == Some(0) {
            return Err(SgcError::ZeroShards);
        }
        let plan = self.resolve_plan()?;
        // Per-trial sharding only helps when the trials themselves run
        // sequentially: the shard fan-out then has the whole pool to
        // itself. Under parallel trials the pool is already saturated at
        // trial granularity (nested workers run their inner stages
        // sequentially), so sharding each trial would add exchange and
        // regrouping overhead without any added parallelism. Counts are
        // bit-identical either way, so those requests take the unsharded
        // per-trial path.
        let shards_per_trial = if self.parallel { None } else { self.shards };
        Ok(TrialStream {
            engine: self.engine,
            plan,
            algorithm: self.algorithm,
            num_ranks: self.num_ranks,
            kernel: self.kernel,
            seed: self.seed,
            parallel: self.parallel,
            shards_per_trial,
            obs: self.obs,
            per_trial: Vec::new(),
            acc: TrialAccumulator::new(),
            total_seconds: 0.0,
        })
    }
}

/// An in-progress incremental estimation over one engine-bound query.
///
/// Created by [`CountRequest::estimate_incremental`]. Each
/// [`run_chunk`](TrialStream::run_chunk) call executes the next batch of
/// trials (trial `i` always colored with `seed + i`) and folds the counts
/// into a streaming [`TrialAccumulator`]; callers consult
/// [`relative_half_width`](TrialStream::relative_half_width) between chunks
/// and stop as soon as their precision target is met. See
/// [`CountRequest::estimate_incremental`] for the anytime-consistency
/// contract and an example.
#[must_use = "a TrialStream does nothing until run_chunk() is called"]
pub struct TrialStream<'e, 'g, 'a> {
    engine: &'e Engine<'g>,
    plan: PlanRef<'a>,
    algorithm: Algorithm,
    num_ranks: usize,
    kernel: KernelKind,
    seed: u64,
    parallel: bool,
    shards_per_trial: Option<usize>,
    obs: bool,
    per_trial: Vec<Count>,
    acc: TrialAccumulator,
    total_seconds: f64,
}

impl TrialStream<'_, '_, '_> {
    /// Runs the next `trials` trials (a no-op for zero) and returns the
    /// updated streaming statistics.
    ///
    /// Chunks run in parallel over the current thread pool unless the
    /// originating request set [`parallel(false)`](CountRequest::parallel);
    /// results are bit-identical either way, and independent of how trials
    /// are split into chunks.
    pub fn run_chunk(&mut self, trials: usize) -> &TrialAccumulator {
        if trials == 0 {
            return &self.acc;
        }
        // Chunk-level instrumentation: suspended on this thread for obs-off
        // requests; per-trial workers re-apply the toggle themselves.
        let _pause = (!self.obs).then(sgc_obs::suspend);
        let _chunk_span = sgc_obs::span(sgc_obs::Stage::EstimatorChunk);
        let start = self.per_trial.len();
        let outcomes: Vec<(Count, f64)> = {
            let graph = self.engine.graph();
            let prep = &self.engine.prep;
            let plan: &DecompositionTree = &self.plan;
            let k = plan.query.num_nodes();
            let seed = self.seed;
            let algorithm = self.algorithm;
            let num_ranks = self.num_ranks;
            let kernel = self.kernel;
            let pool = self.engine.arena_pool();
            let shards_per_trial = self.shards_per_trial;
            let obs = self.obs;
            let run_trial = move |offset: usize| -> (Count, f64) {
                let _pause = (!obs).then(sgc_obs::suspend);
                let trial = start + offset;
                let coloring = {
                    let _span = sgc_obs::span(sgc_obs::Stage::Coloring);
                    Coloring::random(graph.num_vertices(), k, seed.wrapping_add(trial as u64))
                };
                let result = match shards_per_trial {
                    Some(num_shards) => count_sharded(
                        graph, prep, &coloring, plan, algorithm, num_ranks, num_shards, kernel,
                        pool, obs,
                    )
                    .expect("engine-drawn colorings always cover the graph"),
                    None => {
                        let ctx = Context::new(graph, prep, &coloring, num_ranks)
                            .expect("engine-drawn colorings always cover the graph");
                        count_with_context(&ctx, plan, algorithm, kernel, pool)
                    }
                };
                if obs && sgc_obs::enabled() {
                    result.metrics.publish();
                }
                (
                    result.colorful_matches,
                    result.metrics.elapsed.as_secs_f64(),
                )
            };
            if self.parallel {
                parallel_indexed(trials, run_trial)
            } else {
                (0..trials).map(run_trial).collect()
            }
        };
        for (count, seconds) in outcomes {
            self.per_trial.push(count);
            self.acc.push(count as f64);
            self.total_seconds += seconds;
        }
        &self.acc
    }

    /// Number of trials executed so far.
    pub fn trials_run(&self) -> usize {
        self.per_trial.len()
    }

    /// Colorful-match count of every trial executed so far.
    pub fn per_trial(&self) -> &[Count] {
        &self.per_trial
    }

    /// The streaming statistics over the trials executed so far.
    pub fn accumulator(&self) -> &TrialAccumulator {
        &self.acc
    }

    /// Relative half-width of the confidence interval around the running
    /// mean (see [`TrialAccumulator::relative_half_width`]) — the quantity
    /// adaptive callers compare against their precision target after each
    /// chunk. `f64::INFINITY` until at least two trials have run.
    pub fn relative_half_width(&self, confidence: f64) -> f64 {
        self.acc.relative_half_width(confidence)
    }

    /// Summarizes the trials executed so far into an [`Estimate`] —
    /// bit-identical to what a batch
    /// [`estimate`](CountRequest::estimate) of exactly
    /// [`trials_run`](TrialStream::trials_run) trials would return.
    ///
    /// # Errors
    /// [`SgcError::ZeroTrials`] if no trials have been run yet.
    pub fn estimate(&self) -> Result<Estimate, SgcError> {
        if self.per_trial.is_empty() {
            return Err(SgcError::ZeroTrials);
        }
        Ok(summarize_trials(
            self.per_trial.clone(),
            &self.plan.query,
            self.total_seconds,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::prep_build_count;
    use sgc_graph::GraphBuilder;
    use sgc_query::{catalog, decompose, enumerate_plans, QueryError};

    fn demo_graph() -> CsrGraph {
        let mut b = GraphBuilder::new(10);
        b.extend_edges([
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (0, 5),
            (5, 6),
            (6, 1),
            (2, 7),
            (7, 8),
            (8, 3),
            (4, 9),
            (9, 0),
            (5, 2),
            (6, 3),
        ]);
        b.build()
    }

    #[test]
    fn engine_counts_match_the_standalone_path() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        let query = catalog::triangle();
        let coloring = Coloring::random(g.num_vertices(), 3, 5);
        let via_engine = engine
            .count(&query)
            .coloring(&coloring)
            .run()
            .unwrap()
            .colorful_matches;
        let expected = crate::brute::count_colorful_matches(&g, &query, &coloring);
        assert_eq!(via_engine, expected);
    }

    #[test]
    fn both_algorithms_agree_through_the_engine() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        let query = catalog::glet1();
        let coloring = Coloring::random(g.num_vertices(), query.num_nodes(), 3);
        let ps = engine
            .count(&query)
            .algorithm(Algorithm::PathSplitting)
            .coloring(&coloring)
            .run()
            .unwrap();
        let db = engine
            .count(&query)
            .algorithm(Algorithm::DegreeBased)
            .coloring(&coloring)
            .run()
            .unwrap();
        assert_eq!(ps.colorful_matches, db.colorful_matches);
    }

    #[test]
    fn estimation_reuses_the_preprocessing() {
        let g = demo_graph();
        let engine = Engine::new(&g); // one build
        let before = prep_build_count();
        // Sequential trials keep every (hypothetical) rebuild on this
        // thread, where the thread-local build counter would see it.
        let est = engine
            .count(&catalog::triangle())
            .trials(25)
            .seed(11)
            .parallel(false)
            .estimate()
            .unwrap();
        assert_eq!(est.per_trial.len(), 25);
        assert_eq!(
            prep_build_count() - before,
            0,
            "estimation must not rebuild the graph preprocessing"
        );
    }

    #[test]
    fn plans_are_cached_per_query() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        assert_eq!(engine.cached_plans(), 0);
        let p1 = engine.plan(&catalog::triangle()).unwrap();
        let p2 = engine.plan(&catalog::triangle()).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "second lookup must hit the cache");
        assert_eq!(engine.cached_plans(), 1);
        engine.plan(&catalog::cycle(4)).unwrap();
        assert_eq!(engine.cached_plans(), 2);
        // Structurally equal queries built independently share a plan.
        let again = QueryGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let p3 = engine.plan(&again).unwrap();
        assert!(Arc::ptr_eq(&p1, &p3));
        assert_eq!(engine.cached_plans(), 2);
    }

    #[test]
    fn serial_and_parallel_estimates_are_bit_identical() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        let query = catalog::triangle();
        let serial = engine
            .count(&query)
            .trials(16)
            .seed(42)
            .parallel(false)
            .estimate()
            .unwrap();
        // Force a 3-thread pool so the parallel path crosses real threads
        // even when the host reports a single CPU.
        let parallel = sgc_engine::parallel::run_with_threads(3, || {
            engine.count(&query).trials(16).seed(42).estimate().unwrap()
        });
        assert_eq!(serial.per_trial, parallel.per_trial);
        assert_eq!(serial.estimated_matches, parallel.estimated_matches);
    }

    #[test]
    fn explicit_plans_are_honored_and_validated() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        let query = catalog::cycle(4);
        let coloring = Coloring::random(g.num_vertices(), query.num_nodes(), 2);
        let reference = engine
            .count(&query)
            .coloring(&coloring)
            .run()
            .unwrap()
            .colorful_matches;
        for plan in enumerate_plans(&query).unwrap() {
            let got = engine
                .count(&query)
                .plan(&plan)
                .coloring(&coloring)
                .run()
                .unwrap()
                .colorful_matches;
            assert_eq!(got, reference);
        }
        // A plan for a different query is rejected.
        let wrong = decompose(&catalog::triangle()).unwrap();
        let err = engine
            .count(&query)
            .plan(&wrong)
            .coloring(&coloring)
            .run()
            .unwrap_err();
        assert!(matches!(err, SgcError::PlanQueryMismatch { .. }));
    }

    #[test]
    fn error_paths_return_typed_errors() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        let triangle = catalog::triangle();

        // Wrong number of colors for the query.
        let two_colors = Coloring::random(g.num_vertices(), 2, 0);
        assert_eq!(
            engine
                .count(&triangle)
                .coloring(&two_colors)
                .run()
                .unwrap_err(),
            SgcError::WrongColorCount {
                expected: 3,
                actual: 2
            }
        );

        // Coloring that does not cover the graph.
        let short = Coloring::from_colors(vec![0, 1, 2], 3);
        assert!(matches!(
            engine.count(&triangle).coloring(&short).run(),
            Err(SgcError::ColoringSizeMismatch { .. })
        ));

        // Zero trials and zero ranks.
        assert_eq!(
            engine.count(&triangle).trials(0).estimate().unwrap_err(),
            SgcError::ZeroTrials
        );
        assert_eq!(
            engine.count(&triangle).ranks(0).estimate().unwrap_err(),
            SgcError::ZeroRanks
        );
        assert!(matches!(
            engine.count(&triangle).ranks(0).run(),
            Err(SgcError::ZeroRanks)
        ));

        // Treewidth > 2 queries are rejected, not panicked on.
        let mut k4 = QueryGraph::new(4);
        for a in 0..4u8 {
            for b in (a + 1)..4 {
                k4.add_edge(a, b).unwrap();
            }
        }
        assert_eq!(
            engine.count(&k4).run().unwrap_err(),
            SgcError::Query(QueryError::TreewidthExceeded)
        );
    }

    #[test]
    fn shared_and_borrowed_engines_are_interchangeable() {
        let g = demo_graph();
        let borrowed = Engine::new(&g);
        let shared = Engine::from_shared(Arc::new(g.clone()));
        let query = catalog::triangle();
        let a = borrowed.count(&query).trials(8).seed(3).estimate().unwrap();
        let b = shared.count(&query).trials(8).seed(3).estimate().unwrap();
        assert_eq!(a.per_trial, b.per_trial);
        assert_eq!(
            borrowed
                .count(&query)
                .seed(1)
                .run()
                .unwrap()
                .colorful_matches,
            shared.count(&query).seed(1).run().unwrap().colorful_matches
        );
        // The shared engine is 'static: it can move into a spawned thread.
        let moved = std::thread::spawn(move || {
            shared
                .count(&catalog::triangle())
                .seed(1)
                .run()
                .unwrap()
                .colorful_matches
        })
        .join()
        .unwrap();
        assert_eq!(
            moved,
            borrowed
                .count(&query)
                .seed(1)
                .run()
                .unwrap()
                .colorful_matches
        );
    }

    #[test]
    fn incremental_chunking_is_invariant_and_anytime_consistent() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        let query = catalog::cycle(4);
        let batch = engine.count(&query).trials(11).seed(77).estimate().unwrap();
        // 3 + 5 + 3 trials through the stream: same per-trial counts, same
        // estimate, regardless of the chunk boundaries.
        let mut stream = engine
            .count(&query)
            .seed(77)
            .estimate_incremental()
            .unwrap();
        stream.run_chunk(3);
        stream.run_chunk(5);
        assert_eq!(stream.trials_run(), 8);
        assert_eq!(stream.per_trial(), &batch.per_trial[..8]);
        // A prefix estimate equals a batch run of exactly that length.
        let prefix = stream.estimate().unwrap();
        let batch8 = engine.count(&query).trials(8).seed(77).estimate().unwrap();
        assert_eq!(prefix.per_trial, batch8.per_trial);
        assert_eq!(prefix.estimated_matches, batch8.estimated_matches);
        stream.run_chunk(3);
        let full = stream.estimate().unwrap();
        assert_eq!(full.per_trial, batch.per_trial);
        assert_eq!(full.estimated_matches, batch.estimated_matches);
        // The streaming statistics agree with the batch summary.
        let acc = stream.accumulator();
        assert_eq!(acc.count(), 11);
        assert!((acc.mean() - batch.mean_colorful).abs() < 1e-9);
        assert!((acc.sample_variance() - batch.variance).abs() < 1e-9);
    }

    #[test]
    fn empty_stream_reports_zero_trials_and_infinite_width() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        let triangle = catalog::triangle();
        let stream = engine.count(&triangle).estimate_incremental().unwrap();
        assert_eq!(stream.trials_run(), 0);
        assert_eq!(stream.relative_half_width(0.95), f64::INFINITY);
        assert_eq!(stream.estimate().unwrap_err(), SgcError::ZeroTrials);
        // Validation errors surface at stream construction.
        assert_eq!(
            engine
                .count(&catalog::triangle())
                .ranks(0)
                .estimate_incremental()
                .err(),
            Some(SgcError::ZeroRanks)
        );
        let coloring = Coloring::random(g.num_vertices(), 3, 0);
        assert_eq!(
            engine
                .count(&catalog::triangle())
                .coloring(&coloring)
                .estimate_incremental()
                .err(),
            Some(SgcError::ColoringWithEstimate)
        );
    }

    #[test]
    fn run_without_an_explicit_coloring_is_seeded_and_deterministic() {
        let g = demo_graph();
        let engine = Engine::new(&g);
        let query = catalog::triangle();
        let a = engine.count(&query).seed(9).run().unwrap().colorful_matches;
        let b = engine.count(&query).seed(9).run().unwrap().colorful_matches;
        assert_eq!(a, b);
        let coloring = Coloring::random(g.num_vertices(), 3, 9);
        let explicit = engine
            .count(&query)
            .coloring(&coloring)
            .run()
            .unwrap()
            .colorful_matches;
        assert_eq!(a, explicit);
    }
}
