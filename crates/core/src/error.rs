//! Typed errors for the counting front door.
//!
//! Every input-validation failure in the `sgc-core` public entry points is
//! reported as an [`SgcError`] instead of a panic: a service embedding the
//! [`Engine`](crate::Engine) must be able to reject a bad request without
//! aborting the process.

use sgc_query::{PatternParseError, QueryError};

/// Reasons a counting or estimation request cannot run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SgcError {
    /// The query could not be planned (empty, disconnected, treewidth > 2,
    /// too many nodes, or no decomposition found).
    Query(QueryError),
    /// A textual pattern could not be parsed. The wrapped error carries the
    /// byte span of the offending token and renders a caret diagnostic; see
    /// [`sgc_query::parse`].
    Pattern(PatternParseError),
    /// The coloring does not assign a color to every vertex of the data
    /// graph.
    ColoringSizeMismatch {
        /// Vertices in the engine's data graph.
        graph_vertices: usize,
        /// Vertices covered by the supplied coloring.
        coloring_vertices: usize,
    },
    /// The coloring does not use exactly as many colors as the query has
    /// nodes (color coding needs `k` colors for a `k`-node query).
    WrongColorCount {
        /// Colors required: the number of query nodes.
        expected: usize,
        /// Colors in the supplied coloring.
        actual: usize,
    },
    /// An estimation was requested with zero trials.
    ZeroTrials,
    /// An estimation was requested with an explicit coloring. Estimation
    /// draws its own independent coloring per trial; a fixed coloring would
    /// silently produce `trials` copies of one measurement, so the
    /// combination is rejected (use `run()` for a single explicit coloring).
    ColoringWithEstimate,
    /// A run was configured with zero simulated ranks.
    ZeroRanks,
    /// A sharded run was requested with zero shards. The sharded runtime
    /// needs at least one vertex shard; use `sharded(1)` for a single-shard
    /// run that still exercises the exchange path.
    ZeroShards,
    /// A batch contained a request created by a *different* engine. Batched
    /// requests share the executing engine's graph, preprocessing and plan
    /// cache, so a request bound to another engine (and possibly another
    /// graph) cannot be mixed in.
    EngineMismatch,
    /// An explicitly supplied decomposition plan was built for a different
    /// query than the one being counted (the node counts, the edge counts,
    /// or the edge sets differ).
    PlanQueryMismatch {
        /// Nodes in the query being counted.
        query_nodes: usize,
        /// Nodes in the query the plan decomposes.
        plan_nodes: usize,
        /// Edges in the query being counted.
        query_edges: usize,
        /// Edges in the query the plan decomposes.
        plan_edges: usize,
    },
}

impl std::fmt::Display for SgcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SgcError::Query(e) => write!(f, "query cannot be planned: {e}"),
            SgcError::Pattern(e) => write!(f, "pattern cannot be parsed: {}", e.message()),
            SgcError::ColoringSizeMismatch {
                graph_vertices,
                coloring_vertices,
            } => write!(
                f,
                "coloring covers {coloring_vertices} vertices but the data graph has {graph_vertices}"
            ),
            SgcError::WrongColorCount { expected, actual } => write!(
                f,
                "coloring uses {actual} colors but the query needs exactly {expected}"
            ),
            SgcError::ZeroTrials => write!(f, "estimation needs at least one trial"),
            SgcError::ColoringWithEstimate => write!(
                f,
                "estimate() draws its own per-trial colorings; use run() to count under an explicit coloring"
            ),
            SgcError::ZeroRanks => write!(f, "at least one simulated rank is required"),
            SgcError::EngineMismatch => write!(
                f,
                "batched requests must all come from the engine executing the batch"
            ),
            SgcError::ZeroShards => write!(f, "sharded execution needs at least one shard"),
            SgcError::PlanQueryMismatch {
                query_nodes,
                plan_nodes,
                query_edges,
                plan_edges,
            } => write!(
                f,
                "supplied plan decomposes a different query \
                 (plan: {plan_nodes} nodes / {plan_edges} edges, \
                 request: {query_nodes} nodes / {query_edges} edges; \
                 equal counts mean the edge sets differ)"
            ),
        }
    }
}

impl std::error::Error for SgcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SgcError::Query(e) => Some(e),
            SgcError::Pattern(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for SgcError {
    fn from(e: QueryError) -> Self {
        SgcError::Query(e)
    }
}

impl From<PatternParseError> for SgcError {
    fn from(e: PatternParseError) -> Self {
        SgcError::Pattern(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(SgcError::from(QueryError::TreewidthExceeded)
            .to_string()
            .contains("treewidth"));
        assert!(SgcError::ColoringSizeMismatch {
            graph_vertices: 10,
            coloring_vertices: 4
        }
        .to_string()
        .contains("10"));
        assert!(SgcError::WrongColorCount {
            expected: 5,
            actual: 3
        }
        .to_string()
        .contains("exactly 5"));
        assert!(SgcError::ZeroTrials.to_string().contains("trial"));
        assert!(SgcError::ZeroRanks.to_string().contains("rank"));
        assert!(SgcError::ZeroShards.to_string().contains("shard"));
        assert!(SgcError::EngineMismatch.to_string().contains("engine"));
    }

    #[test]
    fn query_errors_convert_and_expose_a_source() {
        let err = SgcError::from(QueryError::Disconnected);
        assert_eq!(err, SgcError::Query(QueryError::Disconnected));
        let source = std::error::Error::source(&err).expect("Query wraps a source");
        assert!(source.to_string().contains("connected"));
    }

    #[test]
    fn pattern_errors_convert_and_keep_their_span() {
        let parse_err = sgc_query::Pattern::parse("a-a").unwrap_err();
        let err = SgcError::from(parse_err.clone());
        assert!(err.to_string().contains("self loop"));
        match &err {
            SgcError::Pattern(inner) => assert_eq!(inner.span(), parse_err.span()),
            other => panic!("expected Pattern, got {other:?}"),
        }
        assert!(std::error::Error::source(&err).is_some());
    }
}
