//! Approximate subgraph counting via repeated random colorings.
//!
//! Section 2 of the paper: for a `k`-node query, one random coloring gives a
//! colorful count whose expectation, scaled by `k^k / k!`, equals the true
//! number of matches. Averaging over independent colorings reduces the
//! variance; Figure 15 evaluates the precision by the coefficient of
//! variation of the per-trial estimates over 3 and 10 trials.
//!
//! The estimation loop itself lives in
//! [`CountRequest::estimate`](crate::CountRequest::estimate); this module
//! holds the statistics ([`Estimate`], [`scaling_factor`]) and the
//! deprecated free-function shims.

use crate::config::CountConfig;
use crate::engine::Engine;
use crate::error::SgcError;
use sgc_engine::Count;
use sgc_graph::CsrGraph;
use sgc_query::automorphism::count_automorphisms;
use sgc_query::{DecompositionTree, QueryGraph};

/// Configuration of an estimation run (used by the deprecated shims; the
/// [`Engine`] builder expresses the same settings as methods).
#[derive(Clone, Copy, Debug)]
pub struct EstimateConfig {
    /// Number of independent random colorings.
    pub trials: usize,
    /// Base RNG seed; trial `i` uses `seed + i`.
    pub seed: u64,
    /// Per-trial counting configuration (algorithm, ranks).
    pub count: CountConfig,
}

impl Default for EstimateConfig {
    fn default() -> Self {
        EstimateConfig {
            trials: 3,
            seed: 0x5eed,
            count: CountConfig::default(),
        }
    }
}

/// The result of an estimation run.
#[derive(Clone, Debug)]
pub struct Estimate {
    /// Colorful-match count of every trial.
    pub per_trial: Vec<Count>,
    /// Mean colorful count over the trials.
    pub mean_colorful: f64,
    /// The `k^k / k!` scaling factor applied to colorful counts.
    pub scale: f64,
    /// Estimated number of matches (injective mappings), `scale × mean`.
    pub estimated_matches: f64,
    /// Estimated number of subgraphs, `estimated_matches / aut(Q)`.
    pub estimated_subgraphs: f64,
    /// Number of automorphisms of the query.
    pub automorphisms: u64,
    /// Unbiased sample variance of the per-trial colorful counts.
    pub variance: f64,
    /// Coefficient of variation of the per-trial counts (standard deviation
    /// divided by the mean) — the precision metric plotted in Figure 15.
    pub coefficient_of_variation: f64,
    /// Total elapsed time across trials, in seconds.
    pub total_seconds: f64,
}

/// The `k^k / k!` factor that makes the colorful count an unbiased estimator
/// of the match count (Section 2).
pub fn scaling_factor(k: usize) -> f64 {
    let k_f = k as f64;
    let mut factor = 1.0;
    for i in 1..=k {
        factor *= k_f / i as f64;
    }
    factor
}

/// Folds per-trial colorful counts into the scaled estimate and its
/// precision statistics.
pub(crate) fn summarize_trials(
    per_trial: Vec<Count>,
    query: &QueryGraph,
    total_seconds: f64,
) -> Estimate {
    let k = query.num_nodes();
    let n = per_trial.len() as f64;
    let mean = per_trial.iter().map(|&c| c as f64).sum::<f64>() / n;
    let variance = if per_trial.len() > 1 {
        per_trial
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / (n - 1.0)
    } else {
        0.0
    };
    let coefficient_of_variation = if mean > 0.0 {
        variance.sqrt() / mean
    } else {
        0.0
    };
    let scale = scaling_factor(k);
    let automorphisms = count_automorphisms(query).max(1);
    let estimated_matches = scale * mean;
    Estimate {
        per_trial,
        mean_colorful: mean,
        scale,
        estimated_matches,
        estimated_subgraphs: estimated_matches / automorphisms as f64,
        automorphisms,
        variance,
        coefficient_of_variation,
        total_seconds,
    }
}

/// Estimates the number of matches (and subgraphs) of `query` in `graph` by
/// running `config.trials` independent colorful counts.
///
/// Deprecated: this rebuilds the graph preprocessing on every call. Bind an
/// [`Engine`] once and reuse it instead.
#[deprecated(
    since = "0.2.0",
    note = "use Engine::new(&graph).count(&query).trials(n).seed(s).estimate()"
)]
pub fn estimate_count(
    graph: &CsrGraph,
    query: &QueryGraph,
    config: &EstimateConfig,
) -> Result<Estimate, SgcError> {
    Engine::new(graph)
        .count(query)
        .config(config.count)
        .trials(config.trials)
        .seed(config.seed)
        .estimate()
}

/// Estimates using an already-planned decomposition tree.
///
/// Deprecated: this rebuilds the graph preprocessing on every call. Bind an
/// [`Engine`] once and reuse it instead.
#[deprecated(
    since = "0.2.0",
    note = "use Engine::new(&graph).count(&tree.query).plan(&tree).trials(n).seed(s).estimate()"
)]
pub fn estimate_count_with_tree(
    graph: &CsrGraph,
    tree: &DecompositionTree,
    config: &EstimateConfig,
) -> Result<Estimate, SgcError> {
    Engine::new(graph)
        .count(&tree.query)
        .plan(tree)
        .config(config.count)
        .trials(config.trials)
        .seed(config.seed)
        .estimate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::count_matches;
    use sgc_graph::GraphBuilder;
    use sgc_query::catalog;

    #[test]
    fn scaling_factor_values() {
        assert!((scaling_factor(1) - 1.0).abs() < 1e-12);
        assert!((scaling_factor(2) - 2.0).abs() < 1e-12);
        assert!((scaling_factor(3) - 4.5).abs() < 1e-12);
        // k=10: 10^10 / 10! ≈ 2755.73
        assert!((scaling_factor(10) - 2755.731922).abs() < 1e-3);
    }

    #[test]
    fn estimator_converges_to_brute_force_on_a_small_graph() {
        // Small random-ish graph where brute force is exact.
        let mut b = GraphBuilder::new(10);
        b.extend_edges([
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (0, 5),
            (5, 6),
            (6, 1),
            (2, 7),
            (7, 8),
            (8, 3),
            (4, 9),
            (9, 0),
            (5, 2),
            (6, 3),
        ]);
        let g = b.build();
        let query = catalog::triangle();
        let exact = count_matches(&g, &query) as f64;
        let est = Engine::new(&g)
            .count(&query)
            .trials(400)
            .seed(11)
            .estimate()
            .unwrap();
        // 400 trials of a 3-color coding: expect within ~30% of the truth.
        let rel_err = (est.estimated_matches - exact).abs() / exact.max(1.0);
        assert!(
            rel_err < 0.3,
            "estimate {} too far from exact {exact} (rel err {rel_err})",
            est.estimated_matches
        );
        assert_eq!(est.automorphisms, 6);
        assert!(est.coefficient_of_variation >= 0.0);
        assert_eq!(est.per_trial.len(), 400);
    }

    #[test]
    fn variance_is_zero_with_single_trial() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let g = b.build();
        let est = Engine::new(&g)
            .count(&catalog::triangle())
            .trials(1)
            .estimate()
            .unwrap();
        assert_eq!(est.variance, 0.0);
        assert_eq!(est.per_trial.len(), 1);
    }

    #[test]
    fn subgraph_estimate_divides_by_automorphisms() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let g = b.build();
        let est = Engine::new(&g)
            .count(&catalog::triangle())
            .estimate()
            .unwrap();
        assert!((est.estimated_subgraphs * 6.0 - est.estimated_matches).abs() < 1e-9);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_engine() {
        let mut b = GraphBuilder::new(6);
        b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let g = b.build();
        let query = catalog::triangle();
        let config = EstimateConfig {
            trials: 8,
            seed: 21,
            count: CountConfig::default(),
        };
        let tree = sgc_query::decompose(&query).unwrap();
        let via_engine = Engine::new(&g)
            .count(&query)
            .trials(8)
            .seed(21)
            .estimate()
            .unwrap();
        let via_free = estimate_count(&g, &query, &config).unwrap();
        let via_tree = estimate_count_with_tree(&g, &tree, &config).unwrap();
        assert_eq!(via_engine.per_trial, via_free.per_trial);
        assert_eq!(via_engine.per_trial, via_tree.per_trial);
    }

    #[test]
    #[allow(deprecated)]
    fn zero_trials_is_an_error_not_a_panic() {
        let g = GraphBuilder::new(3).build();
        let tree = sgc_query::decompose(&catalog::triangle()).unwrap();
        let err = estimate_count_with_tree(
            &g,
            &tree,
            &EstimateConfig {
                trials: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, SgcError::ZeroTrials);
    }
}
