//! Approximate subgraph counting via repeated random colorings.
//!
//! Section 2 of the paper: for a `k`-node query, one random coloring gives a
//! colorful count whose expectation, scaled by `k^k / k!`, equals the true
//! number of matches. Averaging over independent colorings reduces the
//! variance; Figure 15 evaluates the precision by the coefficient of
//! variation of the per-trial estimates over 3 and 10 trials.
//!
//! The estimation loop itself lives in
//! [`CountRequest::estimate`](crate::CountRequest::estimate) (and its
//! incremental form, [`TrialStream`](crate::engine::TrialStream)); this
//! module holds the statistics: [`Estimate`], [`scaling_factor`], and the
//! streaming [`TrialAccumulator`] that lets adaptive callers watch the
//! confidence interval tighten trial by trial and stop as soon as a target
//! precision is met. The deprecated free-function shims also live here.

use crate::config::CountConfig;
use crate::engine::Engine;
use crate::error::SgcError;
use sgc_engine::Count;
use sgc_graph::CsrGraph;
use sgc_query::automorphism::count_automorphisms;
use sgc_query::{DecompositionTree, QueryGraph};

/// Configuration of an estimation run (used by the deprecated shims; the
/// [`Engine`] builder expresses the same settings as methods).
#[derive(Clone, Copy, Debug)]
pub struct EstimateConfig {
    /// Number of independent random colorings.
    pub trials: usize,
    /// Base RNG seed; trial `i` uses `seed + i`.
    pub seed: u64,
    /// Per-trial counting configuration (algorithm, ranks).
    pub count: CountConfig,
}

impl Default for EstimateConfig {
    fn default() -> Self {
        EstimateConfig {
            trials: 3,
            seed: 0x5eed,
            count: CountConfig::default(),
        }
    }
}

/// The result of an estimation run.
#[derive(Clone, Debug)]
pub struct Estimate {
    /// Colorful-match count of every trial.
    pub per_trial: Vec<Count>,
    /// Mean colorful count over the trials.
    pub mean_colorful: f64,
    /// The `k^k / k!` scaling factor applied to colorful counts.
    pub scale: f64,
    /// Estimated number of matches (injective mappings), `scale × mean`.
    pub estimated_matches: f64,
    /// Estimated number of subgraphs, `estimated_matches / aut(Q)`.
    pub estimated_subgraphs: f64,
    /// Number of automorphisms of the query.
    pub automorphisms: u64,
    /// Unbiased sample variance of the per-trial colorful counts.
    pub variance: f64,
    /// Coefficient of variation of the per-trial counts (standard deviation
    /// divided by the mean) — the precision metric plotted in Figure 15.
    pub coefficient_of_variation: f64,
    /// Total elapsed time across trials, in seconds.
    pub total_seconds: f64,
}

impl Estimate {
    /// Unbiased sample standard deviation of the per-trial colorful counts
    /// (the square root of [`variance`](Estimate::variance)).
    pub fn sample_std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Relative half-width of the normal-approximation confidence interval
    /// around the estimate: `z(confidence) · s / (√n · mean)`.
    ///
    /// This is the per-trial precision signal the counting service's
    /// adaptive scheduler stops on, exposed here so batch callers of
    /// [`estimate`](crate::CountRequest::estimate) can apply the same
    /// criterion after the fact. Because the `k^k/k!` scaling is a constant
    /// factor, the relative width is identical whether measured on the mean
    /// colorful count or on the scaled match estimate.
    ///
    /// Returns `0.0` when every trial produced the same *positive* count
    /// (the interval has collapsed) and `f64::INFINITY` when fewer than two
    /// trials were run or the mean is not positive — the latter includes
    /// the all-zero case, where a run of zero counts on a rare subgraph is
    /// "no information yet", not "precise zero".
    pub fn relative_half_width(&self, confidence: f64) -> f64 {
        let mut acc = TrialAccumulator::new();
        for &count in &self.per_trial {
            acc.push(count as f64);
        }
        acc.relative_half_width(confidence)
    }
}

/// Streaming mean/variance over per-trial counts (Welford's algorithm),
/// surfacing a normal-approximation confidence interval after every push.
///
/// This is the statistical half of adaptive trial scheduling: the trial loop
/// feeds each colorful count in as it is produced, and the caller stops as
/// soon as [`relative_half_width`](TrialAccumulator::relative_half_width)
/// drops below its target. One pass, O(1) state, no stored samples.
///
/// ```
/// use sgc_core::estimator::TrialAccumulator;
///
/// let mut acc = TrialAccumulator::new();
/// for count in [96.0, 104.0, 100.0, 98.0, 102.0] {
///     acc.push(count);
/// }
/// assert_eq!(acc.count(), 5);
/// assert!((acc.mean() - 100.0).abs() < 1e-12);
/// // Tightly clustered counts: the 95% interval is a few percent wide.
/// assert!(acc.relative_half_width(0.95) < 0.05);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TrialAccumulator {
    n: u64,
    mean: f64,
    m2: f64,
}

impl TrialAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        TrialAccumulator::default()
    }

    /// Folds one per-trial count into the running statistics.
    pub fn push(&mut self, value: f64) {
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of values accumulated.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`0.0` with fewer than two values).
    pub fn sample_variance(&self) -> f64 {
        if self.n > 1 {
            self.m2 / (self.n - 1) as f64
        } else {
            0.0
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `s / √n` (`0.0` with fewer than two
    /// values).
    pub fn standard_error(&self) -> f64 {
        if self.n > 1 {
            self.sample_std_dev() / (self.n as f64).sqrt()
        } else {
            0.0
        }
    }

    /// Half-width of the two-sided normal-approximation confidence interval
    /// around the mean: `z(confidence) · s / √n`. Returns `f64::INFINITY`
    /// with fewer than two values (no variance information yet).
    pub fn half_width(&self, confidence: f64) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        z_for_confidence(confidence) * self.standard_error()
    }

    /// [`half_width`](TrialAccumulator::half_width) divided by the mean —
    /// the scale-free precision target of the adaptive scheduler.
    ///
    /// Degenerate cases are ordered so that "stop" decisions stay sound:
    /// fewer than two values is `f64::INFINITY` (never stop on one trial);
    /// a non-positive mean is `f64::INFINITY` — *including the all-zero
    /// case*: for a rare subgraph every trial in an early chunk can
    /// plausibly count zero while the true count is positive, so a run of
    /// zeros is "no information yet", never "precise zero" (such jobs run
    /// their full budget); a collapsed interval around a positive mean
    /// (all values identical) is `0.0`.
    pub fn relative_half_width(&self, confidence: f64) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        if self.mean <= 0.0 {
            return f64::INFINITY;
        }
        if self.m2 == 0.0 {
            return 0.0;
        }
        self.half_width(confidence) / self.mean
    }
}

/// The two-sided critical value `z` with `P(|N(0,1)| ≤ z) = confidence`.
///
/// `confidence` is clamped to `(0, 1)`; e.g. `0.95` gives `z ≈ 1.96`.
pub fn z_for_confidence(confidence: f64) -> f64 {
    let confidence = confidence.clamp(1e-9, 1.0 - 1e-9);
    normal_quantile(0.5 + confidence / 2.0)
}

/// Inverse standard normal CDF `Φ⁻¹(p)` for `p ∈ (0, 1)`, via Acklam's
/// rational approximation (absolute error below `1.2e-9` — far finer than
/// anything a trial-count stopping rule can resolve).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile needs p in (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The `k^k / k!` factor that makes the colorful count an unbiased estimator
/// of the match count (Section 2).
pub fn scaling_factor(k: usize) -> f64 {
    let k_f = k as f64;
    let mut factor = 1.0;
    for i in 1..=k {
        factor *= k_f / i as f64;
    }
    factor
}

/// Folds per-trial colorful counts into the scaled estimate and its
/// precision statistics.
///
/// Public so version-aware callers (the incremental recount path in
/// `sgc-dyn`) can turn replayed per-trial counts into estimates that are
/// bit-identical to what [`Engine`] would produce from the
/// same trials.
pub fn summarize_trials(per_trial: Vec<Count>, query: &QueryGraph, total_seconds: f64) -> Estimate {
    let k = query.num_nodes();
    let n = per_trial.len() as f64;
    let mean = per_trial.iter().map(|&c| c as f64).sum::<f64>() / n;
    let variance = if per_trial.len() > 1 {
        per_trial
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / (n - 1.0)
    } else {
        0.0
    };
    let coefficient_of_variation = if mean > 0.0 {
        variance.sqrt() / mean
    } else {
        0.0
    };
    let scale = scaling_factor(k);
    let automorphisms = count_automorphisms(query).max(1);
    let estimated_matches = scale * mean;
    Estimate {
        per_trial,
        mean_colorful: mean,
        scale,
        estimated_matches,
        estimated_subgraphs: estimated_matches / automorphisms as f64,
        automorphisms,
        variance,
        coefficient_of_variation,
        total_seconds,
    }
}

/// Estimates the number of matches (and subgraphs) of `query` in `graph` by
/// running `config.trials` independent colorful counts.
///
/// Deprecated: this rebuilds the graph preprocessing on every call. Bind an
/// [`Engine`] once and reuse it instead.
#[deprecated(
    since = "0.2.0",
    note = "use Engine::new(&graph).count(&query).trials(n).seed(s).estimate()"
)]
pub fn estimate_count(
    graph: &CsrGraph,
    query: &QueryGraph,
    config: &EstimateConfig,
) -> Result<Estimate, SgcError> {
    Engine::new(graph)
        .count(query)
        .config(config.count)
        .trials(config.trials)
        .seed(config.seed)
        .estimate()
}

/// Estimates using an already-planned decomposition tree.
///
/// Deprecated: this rebuilds the graph preprocessing on every call. Bind an
/// [`Engine`] once and reuse it instead.
#[deprecated(
    since = "0.2.0",
    note = "use Engine::new(&graph).count(&tree.query).plan(&tree).trials(n).seed(s).estimate()"
)]
pub fn estimate_count_with_tree(
    graph: &CsrGraph,
    tree: &DecompositionTree,
    config: &EstimateConfig,
) -> Result<Estimate, SgcError> {
    Engine::new(graph)
        .count(&tree.query)
        .plan(tree)
        .config(config.count)
        .trials(config.trials)
        .seed(config.seed)
        .estimate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::count_matches;
    use sgc_graph::GraphBuilder;
    use sgc_query::catalog;

    #[test]
    fn scaling_factor_values() {
        assert!((scaling_factor(1) - 1.0).abs() < 1e-12);
        assert!((scaling_factor(2) - 2.0).abs() < 1e-12);
        assert!((scaling_factor(3) - 4.5).abs() < 1e-12);
        // k=10: 10^10 / 10! ≈ 2755.73
        assert!((scaling_factor(10) - 2755.731922).abs() < 1e-3);
    }

    #[test]
    fn estimator_converges_to_brute_force_on_a_small_graph() {
        // Small random-ish graph where brute force is exact.
        let mut b = GraphBuilder::new(10);
        b.extend_edges([
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (0, 5),
            (5, 6),
            (6, 1),
            (2, 7),
            (7, 8),
            (8, 3),
            (4, 9),
            (9, 0),
            (5, 2),
            (6, 3),
        ]);
        let g = b.build();
        let query = catalog::triangle();
        let exact = count_matches(&g, &query) as f64;
        let est = Engine::new(&g)
            .count(&query)
            .trials(400)
            .seed(11)
            .estimate()
            .unwrap();
        // 400 trials of a 3-color coding: expect within ~30% of the truth.
        let rel_err = (est.estimated_matches - exact).abs() / exact.max(1.0);
        assert!(
            rel_err < 0.3,
            "estimate {} too far from exact {exact} (rel err {rel_err})",
            est.estimated_matches
        );
        assert_eq!(est.automorphisms, 6);
        assert!(est.coefficient_of_variation >= 0.0);
        assert_eq!(est.per_trial.len(), 400);
    }

    #[test]
    fn variance_is_zero_with_single_trial() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let g = b.build();
        let est = Engine::new(&g)
            .count(&catalog::triangle())
            .trials(1)
            .estimate()
            .unwrap();
        assert_eq!(est.variance, 0.0);
        assert_eq!(est.per_trial.len(), 1);
    }

    #[test]
    fn subgraph_estimate_divides_by_automorphisms() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let g = b.build();
        let est = Engine::new(&g)
            .count(&catalog::triangle())
            .estimate()
            .unwrap();
        assert!((est.estimated_subgraphs * 6.0 - est.estimated_matches).abs() < 1e-9);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_engine() {
        let mut b = GraphBuilder::new(6);
        b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let g = b.build();
        let query = catalog::triangle();
        let config = EstimateConfig {
            trials: 8,
            seed: 21,
            count: CountConfig::default(),
        };
        let tree = sgc_query::decompose(&query).unwrap();
        let via_engine = Engine::new(&g)
            .count(&query)
            .trials(8)
            .seed(21)
            .estimate()
            .unwrap();
        let via_free = estimate_count(&g, &query, &config).unwrap();
        let via_tree = estimate_count_with_tree(&g, &tree, &config).unwrap();
        assert_eq!(via_engine.per_trial, via_free.per_trial);
        assert_eq!(via_engine.per_trial, via_tree.per_trial);
    }

    #[test]
    fn normal_quantile_hits_textbook_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-4);
        // Symmetry and the tail branches.
        assert!((normal_quantile(0.01) + normal_quantile(0.99)).abs() < 1e-9);
        assert!((z_for_confidence(0.95) - 1.959964).abs() < 1e-4);
        assert!((z_for_confidence(0.99) - 2.575829).abs() < 1e-4);
    }

    #[test]
    fn accumulator_matches_two_pass_statistics() {
        let samples = [3.0, 7.0, 7.0, 19.0, 24.0, 4.0, 11.0];
        let mut acc = TrialAccumulator::new();
        for &s in &samples {
            acc.push(s);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert_eq!(acc.count(), samples.len() as u64);
        assert!((acc.mean() - mean).abs() < 1e-12);
        assert!((acc.sample_variance() - var).abs() < 1e-12);
        assert!((acc.standard_error() - var.sqrt() / n.sqrt()).abs() < 1e-12);
        let expected_hw = z_for_confidence(0.95) * var.sqrt() / n.sqrt();
        assert!((acc.half_width(0.95) - expected_hw).abs() < 1e-12);
        assert!((acc.relative_half_width(0.95) - expected_hw / mean).abs() < 1e-12);
    }

    #[test]
    fn accumulator_degenerate_cases_are_safe_for_stopping() {
        // One value: no precision claim.
        let mut one = TrialAccumulator::new();
        one.push(5.0);
        assert_eq!(one.half_width(0.95), f64::INFINITY);
        assert_eq!(one.relative_half_width(0.95), f64::INFINITY);

        // Identical positive values: collapsed interval, nothing to gain.
        let mut same = TrialAccumulator::new();
        same.push(5.0);
        same.push(5.0);
        same.push(5.0);
        assert_eq!(same.relative_half_width(0.95), 0.0);

        // All-zero counts: for a rare subgraph an early chunk can be all
        // zeros while the true count is positive — never report "precise
        // zero", so adaptive schedulers keep running the budget.
        let mut zeros = TrialAccumulator::new();
        zeros.push(0.0);
        zeros.push(0.0);
        zeros.push(0.0);
        assert_eq!(zeros.relative_half_width(0.95), f64::INFINITY);

        // Spread around a zero mean: relative target meaningless.
        let mut centered = TrialAccumulator::new();
        centered.push(-1.0);
        centered.push(1.0);
        assert_eq!(centered.relative_half_width(0.95), f64::INFINITY);
    }

    #[test]
    fn estimate_exposes_the_same_precision_signal() {
        let mut b = GraphBuilder::new(10);
        b.extend_edges([
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (0, 5),
            (5, 6),
            (6, 1),
            (2, 7),
            (7, 8),
            (8, 3),
            (4, 9),
            (9, 0),
            (5, 2),
            (6, 3),
        ]);
        let g = b.build();
        let est = Engine::new(&g)
            .count(&catalog::triangle())
            .trials(32)
            .seed(5)
            .estimate()
            .unwrap();
        assert!((est.sample_std_dev() - est.variance.sqrt()).abs() < 1e-12);
        let mut acc = TrialAccumulator::new();
        for &c in &est.per_trial {
            acc.push(c as f64);
        }
        assert_eq!(est.relative_half_width(0.95), acc.relative_half_width(0.95));
        // Widening the confidence level widens the interval.
        if est.relative_half_width(0.95).is_finite() && est.relative_half_width(0.95) > 0.0 {
            assert!(est.relative_half_width(0.99) > est.relative_half_width(0.95));
        }
    }

    /// Builds an [`Estimate`] directly from per-trial counts, the way any
    /// trial loop would, so the precision accessors can be unit-tested
    /// without running a counting engine.
    fn estimate_from_counts(per_trial: Vec<Count>) -> Estimate {
        summarize_trials(per_trial, &catalog::triangle(), 0.0)
    }

    #[test]
    fn relative_half_width_matches_the_closed_form() {
        let est = estimate_from_counts(vec![96, 104, 100, 98, 102]);
        let n = 5.0_f64;
        let mean = 100.0_f64;
        let var = [96.0_f64, 104.0, 100.0, 98.0, 102.0]
            .iter()
            .map(|c| (c - mean).powi(2))
            .sum::<f64>()
            / (n - 1.0);
        let expected = z_for_confidence(0.95) * var.sqrt() / (n.sqrt() * mean);
        assert!((est.relative_half_width(0.95) - expected).abs() < 1e-12);
        // Scale invariance: the k^k/k! factor cancels, so the relative
        // width measured on colorful counts equals the one a caller would
        // compute on the scaled match estimate.
        let scaled_expected =
            z_for_confidence(0.95) * (est.scale * var.sqrt()) / (n.sqrt() * est.scale * mean);
        assert!((est.relative_half_width(0.95) - scaled_expected).abs() < 1e-12);
        // Wider confidence, wider interval; collapsed for identical counts.
        assert!(est.relative_half_width(0.99) > est.relative_half_width(0.95));
        let flat = estimate_from_counts(vec![7, 7, 7]);
        assert_eq!(flat.relative_half_width(0.95), 0.0);
    }

    #[test]
    fn relative_half_width_degenerate_cases_stay_unstoppable() {
        // One trial: no variance information, never a finite claim.
        let one = estimate_from_counts(vec![42]);
        assert_eq!(one.relative_half_width(0.95), f64::INFINITY);
        // The zero-count guard: a run of all-zero trials must read as "no
        // information yet" (infinite width), not as a precise zero — this
        // is the estimate-side face of the early-stop rule the service's
        // scheduler relies on for rare subgraphs.
        for trials in [2usize, 5, 32] {
            let zeros = estimate_from_counts(vec![0; trials]);
            assert_eq!(zeros.estimated_matches, 0.0);
            for confidence in [0.5, 0.9, 0.95, 0.99] {
                assert_eq!(
                    zeros.relative_half_width(confidence),
                    f64::INFINITY,
                    "{trials} zero trials at {confidence}"
                );
            }
        }
        // A single zero among positives is fine — the mean is positive.
        let mixed = estimate_from_counts(vec![0, 8, 4]);
        assert!(mixed.relative_half_width(0.95).is_finite());
    }

    #[test]
    fn zero_count_trials_never_early_stop_through_the_stream() {
        // The same guard exercised end-to-end through the incremental
        // estimation path: a triangle query on a triangle-free graph
        // counts zero in every trial, and the stream must keep reporting
        // infinite relative width no matter how many chunks run.
        let mut b = GraphBuilder::new(6);
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let g = b.build();
        let engine = Engine::new(&g);
        let triangle = catalog::triangle();
        let mut stream = engine
            .count(&triangle)
            .seed(3)
            .estimate_incremental()
            .unwrap();
        for _ in 0..4 {
            stream.run_chunk(4);
            assert_eq!(stream.relative_half_width(0.95), f64::INFINITY);
        }
        let est = stream.estimate().unwrap();
        assert!(est.per_trial.iter().all(|&c| c == 0));
        assert_eq!(est.relative_half_width(0.95), f64::INFINITY);
    }

    #[test]
    #[allow(deprecated)]
    fn zero_trials_is_an_error_not_a_panic() {
        let g = GraphBuilder::new(3).build();
        let tree = sgc_query::decompose(&catalog::triangle()).unwrap();
        let err = estimate_count_with_tree(
            &g,
            &tree,
            &EstimateConfig {
                trials: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, SgcError::ZeroTrials);
    }
}
