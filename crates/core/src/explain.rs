//! The library-level `EXPLAIN` API: what would the engine do with a pattern?
//!
//! A query engine serving arbitrary patterns owes its callers a plan report
//! *before* they pay for execution: which decomposition trees exist, which
//! one the Section 6 heuristic picks and why, and how much table state a run
//! is bounded by. [`Engine::explain`](crate::Engine::explain) returns that as
//! a structured [`PlanReport`] (the data the `plan_explorer` example used to
//! compute inline), and the report's `Display` renders the familiar explain
//! text.

use crate::config::Algorithm;
use crate::error::SgcError;
use sgc_query::automorphism::count_automorphisms;
use sgc_query::treewidth::is_tree;
use sgc_query::{enumerate_plans, DecompositionTree, PlanCost, QueryGraph};

/// The planner's structural verdict on a query (queries that exceed
/// treewidth 2 never get a report — they are rejected with
/// [`SgcError::Query`] instead).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreewidthVerdict {
    /// The query is a tree (treewidth 1): every block is a leaf edge and
    /// the linear-time FASCIA-style DP applies.
    Tree,
    /// The query has cycles but treewidth ≤ 2: the paper's cycle-block
    /// machinery is needed.
    AtMostTwo,
}

impl std::fmt::Display for TreewidthVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreewidthVerdict::Tree => f.write_str("tree (treewidth 1)"),
            TreewidthVerdict::AtMostTwo => f.write_str("cyclic, treewidth <= 2"),
        }
    }
}

/// One block of a candidate plan, with its predicted table bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockReport {
    /// Kind and member nodes, e.g. `C(0,1,2)` or `L(0,3)`.
    pub kind: String,
    /// Cycle length (0 for a leaf edge).
    pub cycle_length: usize,
    /// Number of boundary nodes (0, 1 or 2).
    pub boundary_nodes: usize,
    /// Nodes of the subquery `SQ(B)` the block's table summarises.
    pub subquery_nodes: usize,
    /// Upper bound on the block's projection-table rows (see
    /// [`PlanCandidate::predicted_rows`]).
    pub predicted_rows: u64,
}

/// One candidate decomposition tree, costed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanCandidate {
    /// The Section 6 cost vector (longest cycle, boundary nodes,
    /// annotations) the heuristic compares lexicographically.
    pub cost: PlanCost,
    /// Per-block structure and table bounds.
    pub blocks: Vec<BlockReport>,
    /// The tree's canonical signature (the dedup identity).
    pub signature: String,
    /// Sum of the per-block [`BlockReport::predicted_rows`]: an upper bound
    /// on the projection-table rows a run of this plan can materialise. Each
    /// block with subquery size `s` and `b` boundary nodes is bounded by
    /// `C(k, s) · n^b` rows — one per (signature, boundary image) pair —
    /// with `k` colors and `n` data-graph vertices; only non-zero rows are
    /// ever stored, so real tables are far smaller.
    pub predicted_rows: u64,
    /// Whether this is the plan the heuristic (and therefore
    /// [`CountRequest::run`](crate::CountRequest::run)) would use.
    pub chosen: bool,
}

/// The structured result of [`Engine::explain`](crate::Engine::explain).
///
/// `Display` renders the explain text; the fields are the machine-readable
/// version. See `DESIGN.md` ("Pattern language & explain") for how each
/// field maps to the paper's decomposition and cost notions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanReport {
    /// The query in canonical pattern-language form (re-parseable).
    pub pattern: String,
    /// Number of query nodes `k`.
    pub num_nodes: usize,
    /// Number of query edges.
    pub num_edges: usize,
    /// Vertices in the engine's bound data graph (the `n` of the table
    /// bounds).
    pub graph_vertices: usize,
    /// Structural verdict (tree vs general treewidth-2).
    pub verdict: TreewidthVerdict,
    /// `|Aut(Q)|`, the divisor that turns match counts into subgraph counts.
    pub automorphisms: u64,
    /// The cycle-solving algorithm a request would run with (the engine's
    /// default; per-request overrides don't change the plan).
    pub algorithm: Algorithm,
    /// Every distinct decomposition tree, in enumeration order.
    pub candidates: Vec<PlanCandidate>,
    /// Index into [`candidates`](PlanReport::candidates) of the heuristic
    /// choice.
    pub chosen: usize,
}

impl PlanReport {
    /// The candidate the heuristic selected (what
    /// [`Engine::plan`](crate::Engine::plan) caches and every request
    /// without an explicit plan runs).
    pub fn chosen_candidate(&self) -> &PlanCandidate {
        &self.candidates[self.chosen]
    }
}

impl std::fmt::Display for PlanReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "pattern: {} ({} nodes, {} edges; {}; {} automorphisms)",
            self.pattern, self.num_nodes, self.num_edges, self.verdict, self.automorphisms
        )?;
        writeln!(
            f,
            "algorithm: {} on a {}-vertex graph",
            self.algorithm, self.graph_vertices
        )?;
        writeln!(f, "{} candidate decomposition(s):", self.candidates.len())?;
        for (i, plan) in self.candidates.iter().enumerate() {
            writeln!(
                f,
                "  plan {i:>2}: blocks={:<2} longest cycle={:<2} boundary nodes={:<2} \
                 annotations={:<2} predicted rows <= {}{}",
                plan.blocks.len(),
                plan.cost.longest_cycle,
                plan.cost.boundary_nodes,
                plan.cost.annotations,
                plan.predicted_rows,
                if plan.chosen { "  <-- chosen" } else { "" }
            )?;
        }
        writeln!(f, "chosen plan blocks:")?;
        for (i, block) in self.chosen_candidate().blocks.iter().enumerate() {
            writeln!(
                f,
                "  block {i}: {} boundary={} subquery nodes={} predicted rows <= {}",
                block.kind, block.boundary_nodes, block.subquery_nodes, block.predicted_rows
            )?;
        }
        Ok(())
    }
}

/// `C(n, r)`, exact for the query domain (`n ≤ 32`, where the largest
/// intermediate is far below `u64::MAX`).
fn binomial(n: usize, r: usize) -> u64 {
    if r > n {
        return 0;
    }
    let r = r.min(n - r);
    let mut out: u64 = 1;
    for i in 0..r {
        // out * (n - i) is always divisible by i + 1: it equals C(n, i+1)
        // times (i + 1).
        out = out * (n - i) as u64 / (i + 1) as u64;
    }
    out
}

/// Saturating `n^b` for the boundary-image factor (`b` is 0, 1 or 2).
fn power(n: u64, b: usize) -> u64 {
    (0..b).fold(1u64, |acc, _| acc.saturating_mul(n))
}

fn block_report(
    tree: &DecompositionTree,
    block: sgc_query::BlockId,
    k: usize,
    graph_vertices: usize,
) -> BlockReport {
    let b = &tree.blocks[block];
    let subquery = tree.subquery_nodes(block).len();
    let boundary = b.boundary.len();
    let predicted = binomial(k, subquery).saturating_mul(power(graph_vertices as u64, boundary));
    let kind = match &b.kind {
        sgc_query::BlockKind::LeafEdge { boundary, leaf } => format!("L({boundary},{leaf})"),
        sgc_query::BlockKind::Cycle { nodes } => format!(
            "C({})",
            nodes
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
    };
    BlockReport {
        kind,
        cycle_length: b.cycle_length(),
        boundary_nodes: boundary,
        subquery_nodes: subquery,
        predicted_rows: predicted,
    }
}

/// Builds the report; the engine half lives in
/// [`Engine::explain`](crate::Engine::explain).
pub(crate) fn build_report(
    graph_vertices: usize,
    query: &QueryGraph,
    algorithm: Algorithm,
) -> Result<PlanReport, SgcError> {
    let plans = enumerate_plans(query)?;
    let k = query.num_nodes();
    // The chosen candidate is identified by asking the heuristic itself, so
    // the report can never desynchronize from the plan the engine caches
    // and runs, whatever selection key `heuristic_plan` uses.
    let heuristic_signature = sgc_query::heuristic_plan(query)?.signature();
    let chosen = plans
        .iter()
        .position(|t| t.signature() == heuristic_signature)
        .expect("the heuristic plan is one of the enumerated plans");
    let candidates: Vec<PlanCandidate> = plans
        .iter()
        .enumerate()
        .map(|(i, tree)| {
            let blocks: Vec<BlockReport> = (0..tree.blocks.len())
                .map(|b| block_report(tree, b, k, graph_vertices))
                .collect();
            let predicted_rows = blocks
                .iter()
                .fold(0u64, |acc, b| acc.saturating_add(b.predicted_rows));
            PlanCandidate {
                cost: PlanCost::of(tree),
                blocks,
                signature: tree.signature(),
                predicted_rows,
                chosen: i == chosen,
            }
        })
        .collect();
    let verdict = if is_tree(query) {
        TreewidthVerdict::Tree
    } else {
        TreewidthVerdict::AtMostTwo
    };
    Ok(PlanReport {
        pattern: query.to_string(),
        num_nodes: k,
        num_edges: query.num_edges(),
        graph_vertices,
        verdict,
        automorphisms: count_automorphisms(query),
        algorithm,
        candidates,
        chosen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_and_power_basics() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(3, 4), 0);
        assert_eq!(binomial(32, 16), 601_080_390);
        assert_eq!(power(10, 0), 1);
        assert_eq!(power(10, 2), 100);
        assert_eq!(power(u64::MAX, 2), u64::MAX);
    }
}
