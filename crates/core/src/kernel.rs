//! The columnar DP kernel and its arena machinery.
//!
//! The scalar solver in [`crate::blocks`] / [`crate::paths`] stores every
//! intermediate table in a fresh `FastMap` and throws it away at the end of
//! each join. This module reimplements the same block solve — bit-identical
//! counts, same join order, same pruning — over the structure-of-arrays
//! tables of [`sgc_engine::columnar`]:
//!
//! * each table is four `u32` key columns, two `u64` color-set lanes and a
//!   `u64` count column, so the join loops stream dense arrays instead of
//!   chasing hash-map buckets,
//! * color sets are processed word-at-a-time (`Signature` union /
//!   intersection / popcount over two `u64` words) rather than per color,
//! * every scratch table lives in a [`KernelArena`] checked out of the
//!   engine's [`ArenaPool`]: trial `i + 1` resets row lengths but keeps all
//!   capacity, so the steady-state trial path allocates nothing.
//!
//! Which kernel runs is selected by [`KernelKind`] (default: columnar); the
//! equivalence of the two is locked down by `tests/kernel.rs` and asserted
//! in-binary by `bench_pr7`.

use crate::config::Algorithm;
use crate::context::Context;
use crate::metrics::RunMetrics;
use crate::paths::{
    combine_extras, BlockJoinIndex, EdgeRealization, Field, GroupedUnary, PathBuilder,
};
use sgc_engine::columnar::{path_key, AddPipeline, KEY_FIELDS};
use sgc_engine::{
    BinaryTable, ColumnarTable, Count, EndpointGroups, LoadStats, ProjectionTable, Signature,
    UnaryTable,
};
use sgc_graph::vertex::{VertexId, NO_VERTEX};
use sgc_query::{Block, BlockKind, DecompositionTree, QueryNode};
use std::mem;
use std::sync::Mutex;

/// Which join-kernel implementation a count runs on.
///
/// Both kernels produce bit-identical colorful counts; the columnar kernel
/// is the default because its dense tables and arena reuse make it the
/// faster one on every workload we measure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// The original hash-map kernel: `FastMap`-backed tables, chunk-parallel
    /// joins, fresh allocations per join.
    Scalar,
    /// Columnar structure-of-arrays tables with `u64` bitset signature lanes
    /// and per-trial arena reuse.
    #[default]
    Columnar,
}

impl KernelKind {
    /// A short lowercase name (`"scalar"` / `"columnar"`), used in logs and
    /// bench output.
    pub fn short_name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Columnar => "columnar",
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Arena accounting surfaced through [`crate::RunMetrics`].
///
/// `arena_reuses` counts checkouts that were served from the pool instead
/// of allocating a fresh arena; `arena_grown_bytes` sums capacity the solve
/// had to allocate on top of what the checked-out arena already held — zero
/// in steady state, which is exactly what the arena-reuse regression test
/// asserts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelMetrics {
    /// High-water mark of arena capacity in bytes across all checkouts.
    pub arena_bytes: u64,
    /// Checkouts that reused a pooled arena rather than allocating fresh.
    pub arena_reuses: u64,
    /// New capacity (bytes) allocated during checkouts; zero once warm.
    pub arena_grown_bytes: u64,
}

impl KernelMetrics {
    /// Records one arena checkout: the arena's final capacity, whether it
    /// came from the pool, and how many bytes of capacity the solve added.
    pub(crate) fn record_checkout(&mut self, final_bytes: u64, reused: bool, grown_bytes: u64) {
        self.arena_bytes = self.arena_bytes.max(final_bytes);
        self.arena_reuses += reused as u64;
        self.arena_grown_bytes += grown_bytes;
    }

    /// Merges another run's kernel counters into this one.
    pub(crate) fn absorb(&mut self, other: &KernelMetrics) {
        self.arena_bytes = self.arena_bytes.max(other.arena_bytes);
        self.arena_reuses += other.arena_reuses;
        self.arena_grown_bytes += other.arena_grown_bytes;
    }
}

/// All scratch storage one columnar solve needs, reusable across trials.
///
/// The two ping-pong path tables hold the current and next table of a
/// path-build join chain; `plus` parks the finished clockwise path while the
/// counter-clockwise one is built; `proj` accumulates the block projection
/// (across all DB splits); `groups` is the endpoint-grouping scratch of the
/// path merge.
#[derive(Debug, Default)]
pub struct KernelArena {
    /// Ping-pong table A of the path build.
    path_a: ColumnarTable,
    /// Ping-pong table B of the path build.
    path_b: ColumnarTable,
    /// Parking slot for the finished `P+` table during the `P-` build.
    plus: ColumnarTable,
    /// The block projection accumulator (summed over DB splits).
    proj: ColumnarTable,
    /// Endpoint-grouping scratch for the path merge.
    groups: EndpointGroups,
}

impl KernelArena {
    /// Creates an empty arena (nothing allocated until first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total allocated capacity across all tables and scratch buffers.
    pub fn capacity_bytes(&self) -> usize {
        self.path_a.capacity_bytes()
            + self.path_b.capacity_bytes()
            + self.plus.capacity_bytes()
            + self.proj.capacity_bytes()
            + self.groups.capacity_bytes()
    }
}

/// A free-list of [`KernelArena`]s owned by the engine.
///
/// Every columnar count checks an arena out for the duration of one
/// coloring's solve and returns it afterwards, so repeated trials (and
/// repeated requests against the same engine) hit warm buffers. The pool is
/// a mutex'd stack: checkouts are coarse (one per trial), so contention is
/// negligible even when the sharded runtime checks out one arena per worker
/// task.
#[derive(Debug, Default)]
pub struct ArenaPool {
    /// Returned arenas, most recently used last (LIFO keeps buffers warm).
    free: Mutex<Vec<KernelArena>>,
}

impl ArenaPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an arena from the pool (or a fresh one if the pool is empty);
    /// the flag reports whether a pooled arena was reused.
    pub(crate) fn checkout(&self) -> (KernelArena, bool) {
        match self.free.lock().unwrap().pop() {
            Some(arena) => (arena, true),
            None => (KernelArena::new(), false),
        }
    }

    /// Returns an arena to the pool for the next checkout.
    pub(crate) fn give_back(&self, arena: KernelArena) {
        self.free.lock().unwrap().push(arena);
    }
}

/// Solves `block` with the columnar kernel — the arena-backed counterpart
/// of [`crate::blocks::solve_block_with_index`], producing bit-identical
/// projection tables.
pub(crate) fn solve_block_columnar(
    ctx: &Context<'_>,
    tree: &DecompositionTree,
    block: &Block,
    index: &BlockJoinIndex<'_>,
    algorithm: Algorithm,
    arena: &mut KernelArena,
    metrics: &mut RunMetrics,
) -> ProjectionTable {
    match &block.kind {
        BlockKind::LeafEdge { .. } => {
            solve_leaf_edge_columnar(ctx, tree, block, index, arena, metrics)
        }
        BlockKind::Cycle { .. } => {
            solve_cycle_columnar(ctx, tree, block, index, algorithm, arena, metrics)
        }
    }
}

/// Columnar leaf-edge solve: one edge chain, projected onto the boundary.
fn solve_leaf_edge_columnar(
    ctx: &Context<'_>,
    tree: &DecompositionTree,
    block: &Block,
    index: &BlockJoinIndex<'_>,
    arena: &mut KernelArena,
    metrics: &mut RunMetrics,
) -> ProjectionTable {
    let (a, b) = match block.kind {
        BlockKind::LeafEdge { boundary, leaf } => (boundary, leaf),
        _ => unreachable!("solve_leaf_edge_columnar called on a cycle block"),
    };
    let builder = PathBuilder::new(ctx, tree, block, index, false);
    let KernelArena { path_a, path_b, .. } = arena;
    let in_a = build_path_columnar(&builder, &[0, 1], true, true, path_a, path_b, metrics);
    let table = if in_a { &*path_a } else { &*path_b };
    let result = match block.boundary.as_slice() {
        [] => ProjectionTable::Scalar(table.total()),
        [n] => {
            let field = if *n == a {
                Field::Start
            } else {
                debug_assert_eq!(*n, b, "boundary node must be a leaf-edge endpoint");
                Field::End
            };
            let mut unary = UnaryTable::new();
            for (key, sig, count) in table.rows() {
                let v = match field {
                    Field::Start => key[0],
                    Field::End => key[1],
                };
                unary.add(v, sig, count);
            }
            ProjectionTable::Unary(unary)
        }
        other => unreachable!("leaf-edge block with {} boundary nodes", other.len()),
    };
    metrics.observe_table(result.len());
    result
}

/// Columnar cycle solve: one split for PS, one per candidate highest node
/// for DB, all accumulated into the arena's projection table and exported
/// once.
fn solve_cycle_columnar(
    ctx: &Context<'_>,
    tree: &DecompositionTree,
    block: &Block,
    index: &BlockJoinIndex<'_>,
    algorithm: Algorithm,
    arena: &mut KernelArena,
    metrics: &mut RunMetrics,
) -> ProjectionTable {
    let nodes = match &block.kind {
        BlockKind::Cycle { nodes } => nodes.clone(),
        _ => unreachable!("solve_cycle_columnar called on a leaf-edge block"),
    };
    let l = nodes.len();
    let KernelArena {
        path_a,
        path_b,
        plus,
        proj,
        groups,
    } = arena;
    proj.reset();
    match algorithm {
        Algorithm::PathSplitting => {
            let (s, t) = crate::blocks::ps_split_positions(block, &nodes);
            solve_cycle_split_columnar(
                ctx, tree, block, index, s, t, false, path_a, path_b, plus, groups, proj, metrics,
            );
        }
        Algorithm::DegreeBased => {
            for h in 0..l {
                let d = (h + l / 2) % l;
                solve_cycle_split_columnar(
                    ctx, tree, block, index, h, d, true, path_a, path_b, plus, groups, proj,
                    metrics,
                );
            }
        }
    }
    export_projection(block, proj, metrics)
}

/// Solves one `(s, t)` split of a cycle into the projection accumulator.
#[allow(clippy::too_many_arguments)]
fn solve_cycle_split_columnar(
    ctx: &Context<'_>,
    tree: &DecompositionTree,
    block: &Block,
    index: &BlockJoinIndex<'_>,
    s: usize,
    t: usize,
    high_start: bool,
    path_a: &mut ColumnarTable,
    path_b: &mut ColumnarTable,
    plus_slot: &mut ColumnarTable,
    groups: &mut EndpointGroups,
    proj: &mut ColumnarTable,
    metrics: &mut RunMetrics,
) {
    let l = block.kind.len();
    debug_assert!(l >= 3 && s != t);
    // Clockwise positions s, s+1, ..., t and counter-clockwise s, s-1, ..., t.
    let mut plus = vec![s];
    let mut p = s;
    while p != t {
        p = (p + 1) % l;
        plus.push(p);
    }
    let mut minus = vec![s];
    p = s;
    while p != t {
        p = (p + l - 1) % l;
        minus.push(p);
    }

    let builder = PathBuilder::new(ctx, tree, block, index, high_start);
    // Same annotation convention as the scalar solve: P+ folds in the end
    // node's annotation, P- the start node's.
    let in_a = build_path_columnar(&builder, &plus, false, true, path_a, path_b, metrics);
    // Park the finished P+ table so the ping-pong pair is free for P-.
    mem::swap(if in_a { &mut *path_a } else { &mut *path_b }, plus_slot);
    let minus_in_a = build_path_columnar(&builder, &minus, true, false, path_a, path_b, metrics);
    let minus_table = if minus_in_a { &*path_a } else { &*path_b };

    let nodes = block.kind.nodes();
    merge_paths_columnar(
        ctx,
        block,
        plus_slot,
        minus_table,
        groups,
        nodes[s],
        nodes[t],
        proj,
        metrics,
    );
}

/// Builds the table for the path visiting `positions`, ping-ponging between
/// the two arena tables. Returns `true` when the finished table is in
/// `path_a`, `false` when it is in `path_b`.
fn build_path_columnar(
    builder: &PathBuilder<'_, '_>,
    positions: &[usize],
    include_start_annotation: bool,
    include_end_annotation: bool,
    path_a: &mut ColumnarTable,
    path_b: &mut ColumnarTable,
    metrics: &mut RunMetrics,
) -> bool {
    assert!(positions.len() >= 2, "a path needs at least one edge");
    let nodes = builder.cycle_nodes();
    let first = nodes[positions[0]];
    let second = nodes[positions[1]];
    let mut src = path_a;
    let mut dst = path_b;
    let mut in_a = true;
    initial_columnar(
        builder,
        builder.edge_index_between(positions[0], positions[1]),
        first,
        second,
        src,
        metrics,
    );
    if include_start_annotation {
        if let Some(child) = builder.node_child(first) {
            node_join_columnar(builder, src, dst, Field::Start, child, metrics);
            mem::swap(&mut src, &mut dst);
            in_a = !in_a;
        }
    }
    for idx in 1..positions.len() {
        let node = nodes[positions[idx]];
        if idx > 1 {
            let prev = nodes[positions[idx - 1]];
            let edge_index = builder.edge_index_between(positions[idx - 1], positions[idx]);
            edge_join_columnar(builder, src, dst, edge_index, prev, node, metrics);
            mem::swap(&mut src, &mut dst);
            in_a = !in_a;
        }
        let is_end = idx == positions.len() - 1;
        if !is_end || include_end_annotation {
            if let Some(child) = builder.node_child(node) {
                node_join_columnar(builder, src, dst, Field::End, child, metrics);
                mem::swap(&mut src, &mut dst);
                in_a = !in_a;
            }
        }
    }
    in_a
}

/// Writes `vertex` into the extra slot tracking `node`, if any.
#[inline]
/// Seeds the initial table for the first path edge (columnar counterpart of
/// `PathBuilder::initial_table`).
fn initial_columnar(
    builder: &PathBuilder<'_, '_>,
    edge_index: usize,
    from_node: QueryNode,
    to_node: QueryNode,
    out: &mut ColumnarTable,
    metrics: &mut RunMetrics,
) {
    let ctx = builder.ctx;
    out.reset();
    let mut load = LoadStats::new(ctx.partition.num_ranks());
    // Both tracked-extra slots are fixed for the whole join; resolve them
    // once instead of per emitted row.
    let from_slot = builder.slot_of(from_node);
    let to_slot = builder.slot_of(to_node);
    let mut pipe = AddPipeline::new();
    match builder.edge_realization(edge_index, from_node, to_node) {
        EdgeRealization::Graph => {
            for u in ctx.start_vertices() {
                let cu = ctx.color(u);
                let neighbors = if builder.high_start {
                    ctx.lower_neighbors(u, u)
                } else {
                    ctx.graph.neighbors(u)
                };
                load.record_vertex(&ctx.partition, u, neighbors.len() as u64);
                for &w in neighbors {
                    let cw = ctx.color(w);
                    if cu == cw {
                        continue;
                    }
                    let mut key = path_key(u, w);
                    if let Some(slot) = from_slot {
                        key[2 + slot] = u;
                    }
                    if let Some(slot) = to_slot {
                        key[2 + slot] = w;
                    }
                    pipe.push(out, key, Signature::pair(cu, cw), 1);
                }
            }
        }
        EdgeRealization::Child(grouped) => {
            let mut seed_group =
                |out: &mut ColumnarTable,
                 pipe: &mut AddPipeline,
                 u: VertexId,
                 list: &[(VertexId, Signature, Count)]| {
                    load.record_vertex(&ctx.partition, u, list.len() as u64);
                    for &(w, sig, count) in list {
                        if builder.high_start && !ctx.order().higher(u, w) {
                            continue;
                        }
                        let mut key = path_key(u, w);
                        if let Some(slot) = from_slot {
                            key[2 + slot] = u;
                        }
                        if let Some(slot) = to_slot {
                            key[2 + slot] = w;
                        }
                        pipe.push(out, key, sig, count);
                    }
                };
            if ctx.is_sharded() {
                for u in ctx.start_vertices() {
                    if let Some(list) = grouped.get(&u) {
                        seed_group(out, &mut pipe, u, list);
                    }
                }
            } else {
                for (&u, list) in grouped {
                    seed_group(out, &mut pipe, u, list);
                }
            }
        }
    }
    pipe.flush(out);
    metrics.absorb_load(&load);
    metrics.observe_table(out.len());
}

/// Folds a child block's unary table into `src`, writing the result to
/// `dst` (columnar counterpart of `PathBuilder::node_join`).
fn node_join_columnar(
    builder: &PathBuilder<'_, '_>,
    src: &ColumnarTable,
    dst: &mut ColumnarTable,
    field: Field,
    child: &GroupedUnary,
    metrics: &mut RunMetrics,
) {
    let ctx = builder.ctx;
    dst.reset();
    let mut load = LoadStats::new(ctx.partition.num_ranks());
    let mut pipe = AddPipeline::new();
    for (key, sig, count) in src.rows() {
        let x = match field {
            Field::Start => key[0],
            Field::End => key[1],
        };
        let Some(list) = child.get(&x) else { continue };
        load.record_vertex(&ctx.partition, x, list.len() as u64);
        let shared = ctx.color_sig(x);
        for &(sig2, count2) in list {
            if sig.intersection(sig2) != shared {
                continue;
            }
            pipe.push(dst, key, sig.union(sig2), count * count2);
        }
    }
    pipe.flush(dst);
    metrics.absorb_load(&load);
    metrics.observe_table(dst.len());
}

/// Extends every path in `src` by one block edge into `dst` (columnar
/// counterpart of `PathBuilder::edge_join`).
fn edge_join_columnar(
    builder: &PathBuilder<'_, '_>,
    src: &ColumnarTable,
    dst: &mut ColumnarTable,
    edge_index: usize,
    from_node: QueryNode,
    to_node: QueryNode,
    metrics: &mut RunMetrics,
) {
    let ctx = builder.ctx;
    dst.reset();
    let realization = builder.edge_realization(edge_index, from_node, to_node);
    let mut load = LoadStats::new(ctx.partition.num_ranks());
    // The newly mapped node's extra slot is fixed for the whole join.
    let to_slot = builder.slot_of(to_node);
    let mut pipe = AddPipeline::new();
    for (key, sig, count) in src.rows() {
        let v = key[1];
        let shared = ctx.color_sig(v);
        match &realization {
            EdgeRealization::Graph => {
                let neighbors = if builder.high_start {
                    ctx.lower_neighbors(v, key[0])
                } else {
                    ctx.graph.neighbors(v)
                };
                load.record_vertex(&ctx.partition, v, neighbors.len() as u64);
                for &w in neighbors {
                    let cw = ctx.color(w);
                    if sig.contains(cw) {
                        continue;
                    }
                    let mut new_key = key;
                    new_key[1] = w;
                    if let Some(slot) = to_slot {
                        new_key[2 + slot] = w;
                    }
                    pipe.push(dst, new_key, sig.with(cw), count);
                }
            }
            EdgeRealization::Child(grouped) => {
                let Some(list) = grouped.get(&v) else {
                    continue;
                };
                load.record_vertex(&ctx.partition, v, list.len() as u64);
                for &(w, sig2, count2) in list {
                    if builder.high_start && !ctx.order().higher(key[0], w) {
                        continue;
                    }
                    if sig.intersection(sig2) != shared {
                        continue;
                    }
                    let mut new_key = key;
                    new_key[1] = w;
                    if let Some(slot) = to_slot {
                        new_key[2 + slot] = w;
                    }
                    pipe.push(dst, new_key, sig.union(sig2), count * count2);
                }
            }
        }
    }
    pipe.flush(dst);
    metrics.absorb_load(&load);
    metrics.observe_table(dst.len());
}

/// How many outer rows ahead the path merge prefetches its group probes.
const MERGE_LOOKAHEAD: usize = 16;

/// Merges the two path tables of a split into the projection accumulator
/// (columnar counterpart of `blocks::merge_paths`).
#[allow(clippy::too_many_arguments)]
fn merge_paths_columnar(
    ctx: &Context<'_>,
    block: &Block,
    plus: &ColumnarTable,
    minus: &ColumnarTable,
    groups: &mut EndpointGroups,
    start_node: QueryNode,
    end_node: QueryNode,
    proj: &mut ColumnarTable,
    metrics: &mut RunMetrics,
) {
    // The merged pair set is symmetric in the two tables (pairs sharing
    // endpoints, counts multiplied), and grouping costs more per row than
    // streaming, so group the smaller table and stream the larger one over
    // it. Load attribution is unaffected: every pair is attributed to the
    // owner of the shared end vertex either way.
    let (outer, inner) = if plus.len() <= minus.len() {
        (minus, plus)
    } else {
        (plus, minus)
    };
    groups.build(inner);
    let boundary = block.boundary.as_slice();
    let start_slot = boundary.iter().position(|&b| b == start_node);
    let end_slot = boundary.iter().position(|&b| b == end_node);
    let mut load = LoadStats::new(ctx.partition.num_ranks());
    match boundary.len() {
        // A boundary-free root cycle only ever needs the grand total:
        // accumulate it in a register (extras are never set in a
        // boundary-free block, so the extras merge can never fail) and
        // store one row at the end.
        0 => {
            let mut total: Count = 0;
            for r in 0..outer.len() {
                // The group probes are this loop's only random access;
                // prefetching a few rows ahead overlaps their latency.
                if r + MERGE_LOOKAHEAD < outer.len() {
                    let (pu, pv) = outer.endpoints(r + MERGE_LOOKAHEAD);
                    groups.prefetch_pair(pu, pv);
                }
                let (u, v) = outer.endpoints(r);
                let (sigs, span) = groups.spans_for(u, v);
                if span.is_empty() {
                    continue;
                }
                let shared = Signature::pair(ctx.color(u), ctx.color(v));
                let osig = outer.sig(r);
                let ocount = outer.count(r);
                // Scan the dense low-word lane first: almost every pair
                // fails the signature filter, and the low word alone
                // rejects it without loading the 32-byte payload.
                let [o_lo, _] = osig.words();
                let [shared_lo, _] = shared.words();
                for (i, &i_lo) in sigs.iter().enumerate() {
                    if i_lo & o_lo != shared_lo {
                        continue;
                    }
                    let g = &span[i];
                    if osig.intersection(g.sig()) != shared {
                        continue;
                    }
                    total += ocount * g.count;
                }
                load.record_vertex(&ctx.partition, v, span.len() as u64);
            }
            proj.add([NO_VERTEX; KEY_FIELDS], Signature::empty(), total);
        }
        arity @ (1 | 2) => {
            for r in 0..outer.len() {
                if r + MERGE_LOOKAHEAD < outer.len() {
                    let (pu, pv) = outer.endpoints(r + MERGE_LOOKAHEAD);
                    groups.prefetch_pair(pu, pv);
                }
                let (u, v) = outer.endpoints(r);
                let (sigs, span) = groups.spans_for(u, v);
                if span.is_empty() {
                    continue;
                }
                let shared = Signature::pair(ctx.color(u), ctx.color(v));
                let osig = outer.sig(r);
                let ocount = outer.count(r);
                let oextras = outer.extras(r);
                let [o_lo, _] = osig.words();
                let [shared_lo, _] = shared.words();
                for (i, &i_lo) in sigs.iter().enumerate() {
                    // Low-word reject before touching the payload record.
                    if i_lo & o_lo != shared_lo {
                        continue;
                    }
                    let g = &span[i];
                    let isig = g.sig();
                    if osig.intersection(isig) != shared {
                        continue;
                    }
                    let Some(mut extras) = combine_extras(oextras, g.extras()) else {
                        continue;
                    };
                    // Endpoints double as boundary nodes in some
                    // configurations; make sure their slots are filled from
                    // the join fields.
                    if let Some(slot) = start_slot {
                        extras[slot] = u;
                    }
                    if let Some(slot) = end_slot {
                        extras[slot] = v;
                    }
                    let sig = osig.union(isig);
                    let count = ocount * g.count;
                    debug_assert_ne!(extras[0], NO_VERTEX);
                    if arity == 1 {
                        proj.add([extras[0], NO_VERTEX, NO_VERTEX, NO_VERTEX], sig, count);
                    } else {
                        debug_assert_ne!(extras[1], NO_VERTEX);
                        proj.add([extras[0], extras[1], NO_VERTEX, NO_VERTEX], sig, count);
                    }
                }
                load.record_vertex(&ctx.partition, v, span.len() as u64);
            }
        }
        _ => unreachable!(),
    }
    metrics.absorb_load(&load);
    metrics.observe_table(proj.len());
}

/// Exports the accumulated columnar projection as the block's
/// [`ProjectionTable`] (the interchange format the tree walk, the sharded
/// exchange and the batch scheduler all consume).
fn export_projection(
    block: &Block,
    proj: &ColumnarTable,
    metrics: &mut RunMetrics,
) -> ProjectionTable {
    let result = match block.boundary.len() {
        0 => ProjectionTable::Scalar(proj.total()),
        1 => {
            let mut unary = UnaryTable::new();
            for (key, sig, count) in proj.rows() {
                unary.add(key[0], sig, count);
            }
            ProjectionTable::Unary(unary)
        }
        2 => {
            let mut binary = BinaryTable::new();
            for (key, sig, count) in proj.rows() {
                binary.add(key[0], key[1], sig, count);
            }
            ProjectionTable::Binary(binary)
        }
        _ => unreachable!("cycle blocks have at most two boundary nodes"),
    };
    metrics.observe_table(result.len());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::solve_block;
    use crate::context::GraphPrep;
    use sgc_graph::{Coloring, GraphBuilder};
    use sgc_query::{decompose, QueryGraph};

    /// The columnar kernel matches the scalar kernel on a rainbow triangle
    /// for both algorithms (the module-level smoke test; the full
    /// differential suite lives in `tests/kernel.rs`).
    #[test]
    fn columnar_matches_scalar_on_rainbow_triangle() {
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(0, 1), (1, 2), (2, 0)]);
        let g = b.build();
        let coloring = Coloring::from_colors(vec![0, 1, 2], 3);
        let query = QueryGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let tree = decompose(&query).unwrap();
        let prep = GraphPrep::new(&g);
        let ctx = Context::new(&g, &prep, &coloring, 4).unwrap();
        let pool = ArenaPool::new();
        for algorithm in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
            let mut scalar_metrics = RunMetrics::new(4);
            let expected = solve_block(
                &ctx,
                &tree,
                &tree.blocks[0],
                &[None],
                algorithm,
                &mut scalar_metrics,
            );
            let (mut arena, _) = pool.checkout();
            let mut metrics = RunMetrics::new(4);
            let index = BlockJoinIndex::build(&tree.blocks[0], &[None]);
            let got = solve_block_columnar(
                &ctx,
                &tree,
                &tree.blocks[0],
                &index,
                algorithm,
                &mut arena,
                &mut metrics,
            );
            pool.give_back(arena);
            assert_eq!(got.total(), expected.total(), "{algorithm}");
            assert_eq!(got.total(), 6, "{algorithm}");
            assert!(metrics.total_ops > 0);
        }
    }

    #[test]
    fn pool_reuses_arenas_lifo() {
        let pool = ArenaPool::new();
        let (arena, reused) = pool.checkout();
        assert!(!reused);
        pool.give_back(arena);
        let (_, reused) = pool.checkout();
        assert!(reused);
    }

    #[test]
    fn kernel_kind_defaults_to_columnar() {
        assert_eq!(KernelKind::default(), KernelKind::Columnar);
        assert_eq!(KernelKind::Columnar.to_string(), "columnar");
        assert_eq!(KernelKind::Scalar.to_string(), "scalar");
    }

    #[test]
    fn kernel_metrics_record_and_absorb() {
        let mut m = KernelMetrics::default();
        m.record_checkout(100, false, 100);
        m.record_checkout(80, true, 0);
        assert_eq!(m.arena_bytes, 100);
        assert_eq!(m.arena_reuses, 1);
        assert_eq!(m.arena_grown_bytes, 100);
        let mut other = KernelMetrics::default();
        other.record_checkout(200, true, 50);
        m.absorb(&other);
        assert_eq!(m.arena_bytes, 200);
        assert_eq!(m.arena_reuses, 2);
        assert_eq!(m.arena_grown_bytes, 150);
    }
}
