//! # sgc-core — color coding beyond trees
//!
//! The paper's algorithms, built on the substrates in `sgc-graph`,
//! `sgc-query` and `sgc-engine`:
//!
//! * [`ps`] / [`db`] — the Path Splitting baseline (the Alon et al. dynamic
//!   program rephrased over the decomposition tree, Figure 4) and the Degree
//!   Based algorithm (split every cycle at its highest-degree-ordered vertex
//!   and count only high-starting paths, Figures 5–7),
//! * [`blocks`] — solving individual blocks (leaf edges and annotated cycles)
//!   into projection tables, shared by both algorithms,
//! * [`driver`] — bottom-up traversal of a decomposition tree producing the
//!   number of colorful matches, plus run metrics (per-rank loads, operation
//!   counts),
//! * [`engine`] — the public front door: a long-lived [`Engine`] bound to a
//!   data graph that amortizes the preprocessing across trials and queries,
//!   caches decomposition plans, and reports typed [`SgcError`]s instead of
//!   panicking on bad input,
//! * [`batch`] — batched multi-query execution ([`Engine::count_batch`]):
//!   one coloring pass per trial step serves every query in the batch,
//!   structurally identical queries share one plan and one DP result, and
//!   every member stays bit-identical to its solo run,
//! * [`estimator`] — the approximate subgraph counting statistics: the
//!   `k^k / k!` unbiased scaling and the precision metrics of Figure 15
//!   (the trial loop itself lives in [`CountRequest::estimate`]),
//! * [`explain`] — the library-level `EXPLAIN`: [`Engine::explain`] turns a
//!   query or pattern string into a structured [`PlanReport`] (candidate
//!   decompositions, Section 6 costs, predicted table bounds) before any
//!   counting runs,
//! * [`runtime`] — the sharded rank-runtime: vertex-partitioned execution
//!   of the DP with explicit partial-sum exchange rounds, the shared-memory
//!   realization of the paper's distributed rank model (Sections 5–7),
//! * [`treelet`] — the linear-time tree-query dynamic program (the FASCIA
//!   special case the paper builds on), used as an independent cross-check,
//! * [`brute`] — exponential-time reference counters used as the correctness
//!   oracle in tests.

#![warn(missing_docs)]

pub mod batch;
pub mod blocks;
pub mod brute;
pub mod config;
pub mod context;
pub mod db;
pub mod driver;
pub mod engine;
pub mod error;
pub mod estimator;
pub mod explain;
pub mod kernel;
pub mod metrics;
pub mod paths;
pub mod prelude;
pub mod ps;
pub mod runtime;
pub mod treelet;

pub use batch::{BatchMetrics, BatchResult};
pub use config::{Algorithm, CountConfig};
pub use driver::CountResult;
pub use engine::{CountRequest, Engine, TrialStream};
pub use error::SgcError;
pub use estimator::{Estimate, EstimateConfig, TrialAccumulator};
pub use explain::{BlockReport, PlanCandidate, PlanReport, TreewidthVerdict};
pub use kernel::{KernelKind, KernelMetrics};
pub use metrics::{RunMetrics, ShardMetrics};
pub use runtime::{
    count_sharded_retaining, dirty_shards, recount_sharded_replay, IncrementalOutcome, ShardPlan,
    TrialPartials, VertexShard,
};

#[allow(deprecated)]
pub use driver::{count_colorful, count_colorful_with_tree};
#[allow(deprecated)]
pub use estimator::estimate_count;
