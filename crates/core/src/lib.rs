//! # sgc-core — color coding beyond trees
//!
//! The paper's algorithms, built on the substrates in `sgc-graph`,
//! `sgc-query` and `sgc-engine`:
//!
//! * [`ps`] / [`db`] — the Path Splitting baseline (the Alon et al. dynamic
//!   program rephrased over the decomposition tree, Figure 4) and the Degree
//!   Based algorithm (split every cycle at its highest-degree-ordered vertex
//!   and count only high-starting paths, Figures 5–7),
//! * [`blocks`] — solving individual blocks (leaf edges and annotated cycles)
//!   into projection tables, shared by both algorithms,
//! * [`driver`] — bottom-up traversal of a decomposition tree producing the
//!   number of colorful matches, plus run metrics (per-rank loads, operation
//!   counts),
//! * [`estimator`] — the approximate subgraph counting loop: repeated random
//!   colorings, the `k^k / k!` unbiased scaling and the precision metrics of
//!   Figure 15,
//! * [`treelet`] — the linear-time tree-query dynamic program (the FASCIA
//!   special case the paper builds on), used as an independent cross-check,
//! * [`brute`] — exponential-time reference counters used as the correctness
//!   oracle in tests.

pub mod blocks;
pub mod brute;
pub mod config;
pub mod context;
pub mod db;
pub mod driver;
pub mod estimator;
pub mod metrics;
pub mod paths;
pub mod prelude;
pub mod ps;
pub mod treelet;

pub use config::{Algorithm, CountConfig};
pub use driver::{count_colorful, count_colorful_with_tree, CountResult};
pub use estimator::{estimate_count, Estimate, EstimateConfig};
pub use metrics::RunMetrics;
