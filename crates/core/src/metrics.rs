//! Run metrics: operation counts, per-rank loads, table sizes, timings.
//!
//! The paper's evaluation reports execution time (Figures 9, 10, 12, 13) and
//! the per-processor load — "the number of projection function operations" —
//! (Figure 11). [`RunMetrics`] collects both, plus table-size statistics
//! useful for understanding memory behaviour.
//!
//! Sharded runs ([`CountRequest::sharded`](crate::CountRequest::sharded))
//! additionally fill [`RunMetrics::shards`] with [`ShardMetrics`]: the
//! operations each shard actually executed and the partial-sum entries it
//! contributed to each exchange round — the measured (not simulated)
//! counterpart of the paper's Figure 11 load analysis.

use crate::kernel::KernelMetrics;
use sgc_engine::LoadStats;
use std::time::Duration;

/// Metrics accumulated over a single colorful-counting run.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// Per-rank operation counts (projection function operations attributed
    /// to the simulated owner rank).
    pub load: LoadStats,
    /// Total operations across all ranks (equals `load.total()`, cached for
    /// convenience).
    pub total_ops: u64,
    /// Largest number of entries held by any single working table during the
    /// run — a proxy for peak memory.
    pub peak_table_entries: usize,
    /// Total table entries produced across all joins. Shard-dependent in
    /// sharded runs: per-shard partial tables and the exchanged block
    /// tables each count as produced entries (the same projection key may
    /// appear in several shards' partials), mirroring the entry duplication
    /// a distributed run really pays.
    pub entries_created: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-shard execution metrics — `Some` only for sharded runs.
    pub shards: Option<ShardMetrics>,
    /// Arena accounting of the columnar kernel (all-zero under the scalar
    /// kernel, which allocates per join instead of from an arena).
    pub kernel: KernelMetrics,
}

/// Per-shard execution metrics of one sharded run.
///
/// Where [`RunMetrics::load`] *attributes* operations to simulated ranks by
/// key ownership (reproducing the paper's Figure 11 accounting), this struct
/// records what each shard of the real runtime *did*: the projection
/// operations it executed and the partial-sum table entries it handed to the
/// exchange step (the shared-memory analog of the paper's alltoall message
/// volume, Section 7).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Projection operations executed by each shard, summed over all blocks.
    pub ops_per_shard: Vec<u64>,
    /// Partial-sum table entries each shard contributed to the exchange
    /// steps, summed over all rounds.
    pub entries_exchanged: Vec<u64>,
    /// Number of exchange rounds performed (one per block of the plan).
    pub exchange_rounds: u64,
}

impl ShardMetrics {
    /// Creates zeroed metrics for `num_shards` shards.
    pub fn new(num_shards: usize) -> Self {
        ShardMetrics {
            ops_per_shard: vec![0; num_shards],
            entries_exchanged: vec![0; num_shards],
            exchange_rounds: 0,
        }
    }

    /// Number of shards tracked.
    pub fn num_shards(&self) -> usize {
        self.ops_per_shard.len()
    }

    /// Maximum operations executed by any single shard — the critical-path
    /// load of the sharded runtime.
    pub fn max_ops(&self) -> u64 {
        self.ops_per_shard.iter().copied().max().unwrap_or(0)
    }

    /// Average operations per shard.
    pub fn avg_ops(&self) -> f64 {
        if self.ops_per_shard.is_empty() {
            0.0
        } else {
            self.ops_per_shard.iter().sum::<u64>() as f64 / self.ops_per_shard.len() as f64
        }
    }

    /// Ratio of the maximum to the average per-shard operations
    /// (1.0 = perfectly balanced; the paper's load-imbalance metric applied
    /// to the real shards).
    pub fn imbalance(&self) -> f64 {
        let avg = self.avg_ops();
        if avg == 0.0 {
            1.0
        } else {
            self.max_ops() as f64 / avg
        }
    }

    /// Total partial-sum entries moved through the exchange steps.
    pub fn total_entries_exchanged(&self) -> u64 {
        self.entries_exchanged.iter().sum()
    }
}

impl RunMetrics {
    /// Creates empty metrics for `num_ranks` simulated ranks.
    pub fn new(num_ranks: usize) -> Self {
        RunMetrics {
            load: LoadStats::new(num_ranks),
            total_ops: 0,
            peak_table_entries: 0,
            entries_created: 0,
            elapsed: Duration::ZERO,
            shards: None,
            kernel: KernelMetrics::default(),
        }
    }

    /// Folds the metrics of one shard's partial solve into this run's
    /// totals: simulated-rank loads add up, peak table sizes take the max,
    /// and created-entry counts accumulate. Used by the sharded runtime,
    /// whose per-shard solves each carry their own `RunMetrics`.
    pub fn absorb_shard(&mut self, shard: &RunMetrics) {
        self.load.merge(&shard.load);
        self.total_ops = self.load.total();
        self.peak_table_entries = self.peak_table_entries.max(shard.peak_table_entries);
        self.entries_created += shard.entries_created;
        self.kernel.absorb(&shard.kernel);
    }

    /// Merges a partial load vector produced by one join into the totals.
    pub fn absorb_load(&mut self, partial: &LoadStats) {
        self.load.merge(partial);
        self.total_ops = self.load.total();
    }

    /// Records the size of a freshly produced table.
    pub fn observe_table(&mut self, entries: usize) {
        self.peak_table_entries = self.peak_table_entries.max(entries);
        self.entries_created += entries as u64;
    }

    /// Maximum per-rank load (Figure 11's "max load").
    pub fn max_load(&self) -> u64 {
        self.load.max()
    }

    /// Average per-rank load (Figure 11's "avg load").
    pub fn avg_load(&self) -> f64 {
        self.load.average()
    }

    /// Publishes this run's counters into the process-wide `sgc-obs`
    /// registry: run/kernel counters always, shard counters when the run
    /// was sharded. Called at run granularity by the engine (never inside
    /// the DP), and only when observability is enabled for the run.
    pub fn publish(&self) {
        let registry = sgc_obs::global();
        registry.counter_add("engine_runs", 1);
        registry.counter_add("engine_total_ops", self.total_ops);
        registry.counter_add("engine_entries_created", self.entries_created);
        registry.gauge_max("engine_peak_table_entries", self.peak_table_entries as u64);
        registry.counter_add("kernel_arena_reuses", self.kernel.arena_reuses);
        registry.counter_add("kernel_arena_grown_bytes", self.kernel.arena_grown_bytes);
        registry.gauge_max("kernel_arena_bytes", self.kernel.arena_bytes);
        if let Some(shards) = &self.shards {
            registry.counter_add("shard_exchange_rounds", shards.exchange_rounds);
            registry.counter_add("shard_entries_exchanged", shards.total_entries_exchanged());
            registry.gauge_max("shard_max_ops", shards.max_ops());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_and_observe() {
        let mut m = RunMetrics::new(4);
        let mut l = LoadStats::new(4);
        l.record(1, 10);
        l.record(2, 4);
        m.absorb_load(&l);
        m.absorb_load(&l);
        assert_eq!(m.total_ops, 28);
        assert_eq!(m.max_load(), 20);
        assert!((m.avg_load() - 7.0).abs() < 1e-12);

        m.observe_table(100);
        m.observe_table(40);
        assert_eq!(m.peak_table_entries, 100);
        assert_eq!(m.entries_created, 140);
    }

    #[test]
    fn new_metrics_are_zeroed() {
        let m = RunMetrics::new(8);
        assert_eq!(m.total_ops, 0);
        assert_eq!(m.max_load(), 0);
        assert_eq!(m.peak_table_entries, 0);
        assert_eq!(m.elapsed, Duration::ZERO);
        assert!(m.shards.is_none());
        assert_eq!(m.kernel, KernelMetrics::default());
    }

    #[test]
    fn absorb_shard_merges_loads_and_maxes_peaks() {
        let mut total = RunMetrics::new(2);
        let mut a = RunMetrics::new(2);
        let mut la = LoadStats::new(2);
        la.record(0, 5);
        a.absorb_load(&la);
        a.observe_table(10);
        let mut b = RunMetrics::new(2);
        let mut lb = LoadStats::new(2);
        lb.record(1, 7);
        b.absorb_load(&lb);
        b.observe_table(4);
        total.absorb_shard(&a);
        total.absorb_shard(&b);
        assert_eq!(total.total_ops, 12);
        assert_eq!(total.load.per_rank(), &[5, 7]);
        assert_eq!(total.peak_table_entries, 10);
        assert_eq!(total.entries_created, 14);
    }

    #[test]
    fn shard_metrics_statistics() {
        let mut s = ShardMetrics::new(4);
        assert_eq!(s.num_shards(), 4);
        assert_eq!(s.max_ops(), 0);
        assert_eq!(s.imbalance(), 1.0);
        s.ops_per_shard = vec![10, 20, 30, 40];
        s.entries_exchanged = vec![1, 2, 3, 4];
        s.exchange_rounds = 2;
        assert_eq!(s.max_ops(), 40);
        assert!((s.avg_ops() - 25.0).abs() < 1e-12);
        assert!((s.imbalance() - 1.6).abs() < 1e-12);
        assert_eq!(s.total_entries_exchanged(), 10);
    }
}
