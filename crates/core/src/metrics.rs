//! Run metrics: operation counts, per-rank loads, table sizes, timings.
//!
//! The paper's evaluation reports execution time (Figures 9, 10, 12, 13) and
//! the per-processor load — "the number of projection function operations" —
//! (Figure 11). [`RunMetrics`] collects both, plus table-size statistics
//! useful for understanding memory behaviour.

use sgc_engine::LoadStats;
use std::time::Duration;

/// Metrics accumulated over a single colorful-counting run.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// Per-rank operation counts (projection function operations attributed
    /// to the simulated owner rank).
    pub load: LoadStats,
    /// Total operations across all ranks (equals `load.total()`, cached for
    /// convenience).
    pub total_ops: u64,
    /// Largest number of entries held by any single working table during the
    /// run — a proxy for peak memory.
    pub peak_table_entries: usize,
    /// Total table entries produced across all joins.
    pub entries_created: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl RunMetrics {
    /// Creates empty metrics for `num_ranks` simulated ranks.
    pub fn new(num_ranks: usize) -> Self {
        RunMetrics {
            load: LoadStats::new(num_ranks),
            total_ops: 0,
            peak_table_entries: 0,
            entries_created: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Merges a partial load vector produced by one join into the totals.
    pub fn absorb_load(&mut self, partial: &LoadStats) {
        self.load.merge(partial);
        self.total_ops = self.load.total();
    }

    /// Records the size of a freshly produced table.
    pub fn observe_table(&mut self, entries: usize) {
        self.peak_table_entries = self.peak_table_entries.max(entries);
        self.entries_created += entries as u64;
    }

    /// Maximum per-rank load (Figure 11's "max load").
    pub fn max_load(&self) -> u64 {
        self.load.max()
    }

    /// Average per-rank load (Figure 11's "avg load").
    pub fn avg_load(&self) -> f64 {
        self.load.average()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_and_observe() {
        let mut m = RunMetrics::new(4);
        let mut l = LoadStats::new(4);
        l.record(1, 10);
        l.record(2, 4);
        m.absorb_load(&l);
        m.absorb_load(&l);
        assert_eq!(m.total_ops, 28);
        assert_eq!(m.max_load(), 20);
        assert!((m.avg_load() - 7.0).abs() < 1e-12);

        m.observe_table(100);
        m.observe_table(40);
        assert_eq!(m.peak_table_entries, 100);
        assert_eq!(m.entries_created, 140);
    }

    #[test]
    fn new_metrics_are_zeroed() {
        let m = RunMetrics::new(8);
        assert_eq!(m.total_ops, 0);
        assert_eq!(m.max_load(), 0);
        assert_eq!(m.peak_table_entries, 0);
        assert_eq!(m.elapsed, Duration::ZERO);
    }
}
