//! Path-table construction along cycle segments.
//!
//! Both the PS and the DB algorithm reduce a cycle block to two path
//! segments, build a table for each by a sequence of joins, and merge the two
//! tables (Figures 4, 6 and 7). The joins are:
//!
//! * the **initial edge** — the first cycle edge, realized either by the data
//!   graph's edges or by the binary projection table of the child block
//!   annotating that edge,
//! * **EdgeJoin** — extend every partial path by one cycle edge (again either
//!   a graph edge or an annotated edge),
//! * **NodeJoin** — fold in the unary projection table of a child block
//!   annotating a cycle node.
//!
//! The DB algorithm additionally imposes the *high-starting* constraint: the
//! image of the path's start node must be strictly higher (in the degree
//! ordering) than the image of every other cycle node, which prunes the
//! tables dramatically on skewed graphs.
//!
//! All joins are data-parallel over the current table's entries (rayon), and
//! every examined candidate is attributed to the simulated rank owning the
//! vertex at which the paper's distributed engine would have performed the
//! operation.

use crate::context::Context;
use crate::metrics::RunMetrics;
use sgc_engine::hash::FastMap;
use sgc_engine::parallel::{pairwise_reduce, parallel_chunks};
use sgc_engine::{Count, LoadStats, PathKey, PathTable, ProjectionTable, Signature};
use sgc_graph::vertex::NO_VERTEX;
use sgc_graph::VertexId;
use sgc_query::{Block, DecompositionTree, QueryNode};
use std::sync::OnceLock;

/// Which key field currently holds the image of a query node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Field {
    /// The path's start vertex (`PathKey::start`).
    Start,
    /// The path's current end vertex (`PathKey::end`).
    End,
}

/// A child binary table grouped by the image of a traversal's source node:
/// source image → `(target image, signature, count)` entries.
pub(crate) type GroupedBinary = FastMap<VertexId, Vec<(VertexId, Signature, Count)>>;

/// A child unary table grouped by vertex: vertex → `(signature, count)`
/// entries.
pub(crate) type GroupedUnary = FastMap<VertexId, Vec<(Signature, Count)>>;

/// How the edge between two consecutive cycle nodes is realized.
pub(crate) enum EdgeRealization<'b> {
    /// An original query edge, realized by the data graph.
    Graph,
    /// An annotated edge, realized by the child block's binary table grouped
    /// by the image of the step's source node (borrowed from the block's
    /// [`BlockJoinIndex`]).
    Child(&'b GroupedBinary),
}

/// Pre-grouped join-side indexes of a block's child tables.
///
/// Grouping a child's projection table by its join key is independent of
/// the split being solved and of the shard doing the solving: every
/// [`PathBuilder`] of a block consults the same maps. Building the index
/// once per block — instead of once per split (DB mode solves one split per
/// candidate highest node) and once per shard (the sharded runtime fans a
/// block out over workers) — keeps that `O(child table)` pass off the
/// repeated path.
///
/// Edge orientations are grouped lazily on first use: the PS algorithm
/// traverses each cycle edge in exactly one direction (one split), so
/// eagerly building both orientations would double its grouping work and
/// memory; the DB algorithm touches both directions across its splits and
/// pays each grouping exactly once. The lazy cells are thread-safe
/// ([`OnceLock`]), so concurrent shards share one initialization.
pub struct BlockJoinIndex<'t> {
    /// The block whose child tables are indexed.
    block: &'t Block,
    /// Tables of already-solved blocks, indexed by block id (the lazy
    /// grouping closures read the annotating children from here).
    child_tables: &'t [Option<ProjectionTable>],
    /// `(edge_index, from_is_first)` → the child binary table grouped by
    /// the image of the traversal's source node, listing
    /// `(target image, signature, count)`; grouped on first use.
    edge_groups: FastMap<(usize, bool), OnceLock<GroupedBinary>>,
    /// Annotated node → the child unary table grouped by vertex.
    node_groups: FastMap<QueryNode, GroupedUnary>,
}

impl<'t> BlockJoinIndex<'t> {
    /// Prepares the index for `block`. `child_tables` must already hold the
    /// tables of all of `block`'s children. Node groupings are built here
    /// (every split consults them); edge orientations are grouped on first
    /// use.
    pub fn build(block: &'t Block, child_tables: &'t [Option<ProjectionTable>]) -> Self {
        let mut edge_groups: FastMap<(usize, bool), OnceLock<GroupedBinary>> = FastMap::default();
        for &(edge_index, _) in &block.edge_annotations {
            edge_groups.insert((edge_index, true), OnceLock::new());
            edge_groups.insert((edge_index, false), OnceLock::new());
        }
        let mut node_groups: FastMap<QueryNode, GroupedUnary> = FastMap::default();
        for &(node, child) in &block.node_annotations {
            let unary = child_tables[child]
                .as_ref()
                .expect("child table must be solved before its parent")
                .as_unary()
                .expect("node annotations correspond to unary child tables");
            node_groups.insert(node, unary.group_by_vertex());
        }
        BlockJoinIndex {
            block,
            child_tables,
            edge_groups,
            node_groups,
        }
    }

    /// The child table of annotated edge `edge_index`, grouped by the image
    /// of the traversal's source node (`from_is_first`: whether the source
    /// is the child's first boundary node). Grouped once, on first request.
    fn edge_group(&self, edge_index: usize, from_is_first: bool) -> &GroupedBinary {
        self.edge_groups[&(edge_index, from_is_first)].get_or_init(|| {
            let child = self
                .block
                .edge_annotation(edge_index)
                .expect("edge group cells exist only for annotated edges");
            let binary = self.child_tables[child]
                .as_ref()
                .expect("child table must be solved before its parent")
                .as_binary()
                .expect("edge annotations correspond to binary child tables");
            let mut grouped = GroupedBinary::default();
            for (key, &count) in binary.iter() {
                let (u, v) = if from_is_first {
                    (key.u, key.v)
                } else {
                    (key.v, key.u)
                };
                grouped.entry(u).or_default().push((v, key.sig, count));
            }
            grouped
        })
    }
}

/// Builds path tables along the segments of one cycle (or leaf-edge) block.
pub struct PathBuilder<'a, 'b> {
    /// Shared run context.
    pub ctx: &'b Context<'a>,
    /// The decomposition tree the block belongs to.
    pub tree: &'b DecompositionTree,
    /// The block being solved.
    pub block: &'b Block,
    /// Pre-grouped join-side indexes of the block's child tables.
    pub index: &'b BlockJoinIndex<'b>,
    /// Boundary node tracked in each extra slot (`None` when unused).
    pub slot_nodes: [Option<QueryNode>; 2],
    /// DB mode: require `start ≻ w` for every newly mapped cycle node `w`.
    pub high_start: bool,
}

impl<'a, 'b> PathBuilder<'a, 'b> {
    /// Creates a builder for `block`, assigning extra slots to its boundary
    /// nodes in boundary order.
    pub fn new(
        ctx: &'b Context<'a>,
        tree: &'b DecompositionTree,
        block: &'b Block,
        index: &'b BlockJoinIndex<'b>,
        high_start: bool,
    ) -> Self {
        let mut slot_nodes = [None, None];
        for (i, &b) in block.boundary.iter().enumerate() {
            slot_nodes[i] = Some(b);
        }
        PathBuilder {
            ctx,
            tree,
            block,
            index,
            slot_nodes,
            high_start,
        }
    }

    /// The extra-slot index tracking `node`, if it is a boundary node.
    pub(crate) fn slot_of(&self, node: QueryNode) -> Option<usize> {
        self.slot_nodes.iter().position(|&s| s == Some(node))
    }

    fn record_extra(&self, mut key: PathKey, node: QueryNode, vertex: VertexId) -> PathKey {
        if let Some(slot) = self.slot_of(node) {
            key.extra[slot] = vertex;
        }
        key
    }

    /// The unary table of the child block annotating `node`, if any,
    /// pre-grouped by vertex in the block index.
    pub(crate) fn node_child(&self, node: QueryNode) -> Option<&'b GroupedUnary> {
        self.index.node_groups.get(&node)
    }

    /// The realization of the block edge `edge_index` traversed from
    /// `from_node` to `to_node`: the data graph for an original query edge,
    /// the pre-grouped child table (oriented so the group key is the image
    /// of `from_node`) for an annotated edge.
    pub(crate) fn edge_realization(
        &self,
        edge_index: usize,
        from_node: QueryNode,
        to_node: QueryNode,
    ) -> EdgeRealization<'b> {
        match self.block.edge_annotation(edge_index) {
            None => EdgeRealization::Graph,
            Some(child) => {
                let child_block = &self.tree.blocks[child];
                debug_assert_eq!(child_block.boundary.len(), 2);
                let from_is_first = child_block.boundary[0] == from_node;
                debug_assert_eq!(
                    if from_is_first {
                        (from_node, to_node)
                    } else {
                        (to_node, from_node)
                    },
                    (child_block.boundary[0], child_block.boundary[1]),
                    "child boundary must match the traversed edge"
                );
                EdgeRealization::Child(self.index.edge_group(edge_index, from_is_first))
            }
        }
    }

    /// Builds the table for the path visiting the block nodes at `positions`
    /// (indices into the cycle's node list, in traversal order).
    ///
    /// Node annotations are folded in for every visited node except:
    /// the start node unless `include_start_annotation`, and the end node
    /// unless `include_end_annotation` — the caller uses these flags to ensure
    /// each annotation is joined by exactly one of the two paths.
    pub fn build_path(
        &self,
        positions: &[usize],
        include_start_annotation: bool,
        include_end_annotation: bool,
        metrics: &mut RunMetrics,
    ) -> PathTable {
        assert!(positions.len() >= 2, "a path needs at least one edge");
        let nodes = self.cycle_nodes();
        let first = nodes[positions[0]];
        let second = nodes[positions[1]];
        let mut table = self.initial_table(
            self.edge_index_between(positions[0], positions[1]),
            first,
            second,
            metrics,
        );
        if include_start_annotation {
            if let Some(child) = self.node_child(first) {
                table = self.node_join(table, Field::Start, first, child, metrics);
            }
        }
        for idx in 1..positions.len() {
            let node = nodes[positions[idx]];
            if idx > 1 {
                let prev = nodes[positions[idx - 1]];
                let edge_index = self.edge_index_between(positions[idx - 1], positions[idx]);
                table = self.edge_join(table, edge_index, prev, node, metrics);
            }
            let is_end = idx == positions.len() - 1;
            if !is_end || include_end_annotation {
                if let Some(child) = self.node_child(node) {
                    table = self.node_join(table, Field::End, node, child, metrics);
                }
            }
        }
        table
    }

    /// Block nodes in cyclic order (for a leaf edge, the two endpoints).
    pub(crate) fn cycle_nodes(&self) -> Vec<QueryNode> {
        self.block.kind.nodes()
    }

    /// The block edge index connecting positions `i` and `j` (which must be
    /// adjacent on the cycle, or the single edge of a leaf block).
    pub(crate) fn edge_index_between(&self, i: usize, j: usize) -> usize {
        let l = self.block.kind.len();
        if l == 2 {
            return 0;
        }
        if (i + 1) % l == j {
            i
        } else {
            debug_assert_eq!((j + 1) % l, i, "positions {i} and {j} are not adjacent");
            j
        }
    }

    /// Builds the initial table for the first edge of a path.
    pub fn initial_table(
        &self,
        edge_index: usize,
        from_node: QueryNode,
        to_node: QueryNode,
        metrics: &mut RunMetrics,
    ) -> PathTable {
        let ctx = self.ctx;
        let mut table = PathTable::new();
        let mut load = LoadStats::new(ctx.partition.num_ranks());
        match self.edge_realization(edge_index, from_node, to_node) {
            EdgeRealization::Graph => {
                // In a sharded context this range is the shard's owned
                // vertex block; every path entry keeps its start vertex for
                // its whole life, so restricting the seeds here partitions
                // the block's entire table by start ownership.
                for u in ctx.start_vertices() {
                    let cu = ctx.color(u);
                    // In DB mode only the neighbors strictly below the start
                    // vertex in the degree order can appear on a high-starting
                    // path, so the pruned list is enumerated directly.
                    let neighbors = if self.high_start {
                        ctx.lower_neighbors(u, u)
                    } else {
                        ctx.graph.neighbors(u)
                    };
                    load.record_vertex(&ctx.partition, u, neighbors.len() as u64);
                    for &w in neighbors {
                        let cw = ctx.color(w);
                        if cu == cw {
                            continue;
                        }
                        let sig = Signature::pair(cu, cw);
                        let mut key = PathKey::new(u, w, sig);
                        key = self.record_extra(key, from_node, u);
                        key = self.record_extra(key, to_node, w);
                        table.add(key, 1);
                    }
                }
            }
            EdgeRealization::Child(grouped) => {
                // The group key is the path's start vertex; seeding only
                // from owned keys partitions the table by start ownership,
                // exactly like the range restriction above. The grouped map
                // itself is shared (block index), not rebuilt per shard.
                let mut seed_group = |u: VertexId, list: &[(VertexId, Signature, Count)]| {
                    load.record_vertex(&ctx.partition, u, list.len() as u64);
                    for &(w, sig, count) in list {
                        if self.high_start && !ctx.order().higher(u, w) {
                            continue;
                        }
                        let mut key = PathKey::new(u, w, sig);
                        key = self.record_extra(key, from_node, u);
                        key = self.record_extra(key, to_node, w);
                        table.add(key, count);
                    }
                };
                if ctx.is_sharded() {
                    // Probe the shard's own (contiguous, small) vertex
                    // range instead of scanning the whole shared map: total
                    // seeding work across shards stays O(n) lookups rather
                    // than S scans of every group.
                    for u in ctx.start_vertices() {
                        if let Some(list) = grouped.get(&u) {
                            seed_group(u, list);
                        }
                    }
                } else {
                    for (&u, list) in grouped {
                        seed_group(u, list);
                    }
                }
            }
        }
        metrics.absorb_load(&load);
        metrics.observe_table(table.len());
        table
    }

    /// Joins the unary table of a child block at the given key field.
    pub fn node_join(
        &self,
        table: PathTable,
        field: Field,
        _node: QueryNode,
        child: &FastMap<VertexId, Vec<(Signature, Count)>>,
        metrics: &mut RunMetrics,
    ) -> PathTable {
        let ctx = self.ctx;
        let entries = table.into_entries();
        let partials = parallel_chunks(&entries, |chunk| {
            let mut out = PathTable::new();
            let mut load = LoadStats::new(ctx.partition.num_ranks());
            for &(key, count) in chunk {
                let x = match field {
                    Field::Start => key.start,
                    Field::End => key.end,
                };
                let Some(list) = child.get(&x) else { continue };
                load.record_vertex(&ctx.partition, x, list.len() as u64);
                let shared = ctx.color_sig(x);
                for &(sig2, count2) in list {
                    if key.sig.intersection(sig2) != shared {
                        continue;
                    }
                    let mut new_key = key;
                    new_key.sig = key.sig.union(sig2);
                    out.add(new_key, count * count2);
                }
            }
            (out, load)
        });
        self.merge_partials(partials, metrics)
    }

    /// Extends every path in `table` by one block edge, from `from_node`
    /// (the current end) to `to_node`.
    pub fn edge_join(
        &self,
        table: PathTable,
        edge_index: usize,
        from_node: QueryNode,
        to_node: QueryNode,
        metrics: &mut RunMetrics,
    ) -> PathTable {
        let ctx = self.ctx;
        let realization = self.edge_realization(edge_index, from_node, to_node);
        let entries = table.into_entries();
        let partials = parallel_chunks(&entries, |chunk| {
            let mut out = PathTable::new();
            let mut load = LoadStats::new(ctx.partition.num_ranks());
            for &(key, count) in chunk {
                let v = key.end;
                let shared = ctx.color_sig(v);
                match &realization {
                    EdgeRealization::Graph => {
                        let neighbors = if self.high_start {
                            ctx.lower_neighbors(v, key.start)
                        } else {
                            ctx.graph.neighbors(v)
                        };
                        load.record_vertex(&ctx.partition, v, neighbors.len() as u64);
                        for &w in neighbors {
                            let cw = ctx.color(w);
                            if key.sig.contains(cw) {
                                continue;
                            }
                            let mut new_key = key;
                            new_key.end = w;
                            new_key.sig = key.sig.with(cw);
                            new_key = self.record_extra(new_key, to_node, w);
                            out.add(new_key, count);
                        }
                    }
                    EdgeRealization::Child(grouped) => {
                        let Some(list) = grouped.get(&v) else {
                            continue;
                        };
                        load.record_vertex(&ctx.partition, v, list.len() as u64);
                        for &(w, sig2, count2) in list {
                            if self.high_start && !ctx.order().higher(key.start, w) {
                                continue;
                            }
                            if key.sig.intersection(sig2) != shared {
                                continue;
                            }
                            let mut new_key = key;
                            new_key.end = w;
                            new_key.sig = key.sig.union(sig2);
                            new_key = self.record_extra(new_key, to_node, w);
                            out.add(new_key, count * count2);
                        }
                    }
                }
            }
            (out, load)
        });
        self.merge_partials(partials, metrics)
    }

    fn merge_partials(
        &self,
        partials: Vec<(PathTable, LoadStats)>,
        metrics: &mut RunMetrics,
    ) -> PathTable {
        // Loads are tiny vectors — absorb them sequentially. The tables can be
        // large, so merge them with a parallel pairwise reduction to keep the
        // serial fraction of each join small.
        let mut tables = Vec::with_capacity(partials.len());
        for (table, load) in partials {
            metrics.absorb_load(&load);
            tables.push(table);
        }
        let merged = pairwise_reduce(tables, |mut first, second| {
            first.merge(second);
            first
        })
        .unwrap_or_default();
        metrics.observe_table(merged.len());
        merged
    }
}

/// A defensive check used by the path-merge step: extras recorded on both
/// sides for the same slot must agree (they can only both be set when the
/// tracked node is one of the shared endpoints).
pub fn combine_extras(a: [VertexId; 2], b: [VertexId; 2]) -> Option<[VertexId; 2]> {
    let mut out = [NO_VERTEX, NO_VERTEX];
    for slot in 0..2 {
        out[slot] = match (a[slot], b[slot]) {
            (NO_VERTEX, x) => x,
            (x, NO_VERTEX) => x,
            (x, y) if x == y => x,
            _ => return None,
        };
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_extras_prefers_set_slots() {
        assert_eq!(combine_extras([5, NO_VERTEX], [NO_VERTEX, 9]), Some([5, 9]));
        assert_eq!(
            combine_extras([5, NO_VERTEX], [5, NO_VERTEX]),
            Some([5, NO_VERTEX])
        );
        assert_eq!(combine_extras([5, 1], [6, 1]), None);
    }
}
