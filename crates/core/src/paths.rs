//! Path-table construction along cycle segments.
//!
//! Both the PS and the DB algorithm reduce a cycle block to two path
//! segments, build a table for each by a sequence of joins, and merge the two
//! tables (Figures 4, 6 and 7). The joins are:
//!
//! * the **initial edge** — the first cycle edge, realized either by the data
//!   graph's edges or by the binary projection table of the child block
//!   annotating that edge,
//! * **EdgeJoin** — extend every partial path by one cycle edge (again either
//!   a graph edge or an annotated edge),
//! * **NodeJoin** — fold in the unary projection table of a child block
//!   annotating a cycle node.
//!
//! The DB algorithm additionally imposes the *high-starting* constraint: the
//! image of the path's start node must be strictly higher (in the degree
//! ordering) than the image of every other cycle node, which prunes the
//! tables dramatically on skewed graphs.
//!
//! All joins are data-parallel over the current table's entries (rayon), and
//! every examined candidate is attributed to the simulated rank owning the
//! vertex at which the paper's distributed engine would have performed the
//! operation.

use crate::context::Context;
use crate::metrics::RunMetrics;
use sgc_engine::hash::FastMap;
use sgc_engine::parallel::parallel_chunks;
use sgc_engine::{Count, LoadStats, PathKey, PathTable, ProjectionTable, Signature};
use sgc_graph::vertex::NO_VERTEX;
use sgc_graph::VertexId;
use sgc_query::{Block, BlockId, DecompositionTree, QueryNode};

/// Which key field currently holds the image of a query node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Field {
    /// The path's start vertex (`PathKey::start`).
    Start,
    /// The path's current end vertex (`PathKey::end`).
    End,
}

/// How the edge between two consecutive cycle nodes is realized.
enum EdgeRealization {
    /// An original query edge, realized by the data graph.
    Graph,
    /// An annotated edge, realized by a child block's binary table grouped by
    /// the image of the step's source node.
    Child(FastMap<VertexId, Vec<(VertexId, Signature, Count)>>),
}

/// Builds path tables along the segments of one cycle (or leaf-edge) block.
pub struct PathBuilder<'a, 'b> {
    /// Shared run context.
    pub ctx: &'b Context<'a>,
    /// The decomposition tree the block belongs to.
    pub tree: &'b DecompositionTree,
    /// The block being solved.
    pub block: &'b Block,
    /// Projection tables of already-solved child blocks, indexed by block id.
    pub child_tables: &'b [Option<ProjectionTable>],
    /// Boundary node tracked in each extra slot (`None` when unused).
    pub slot_nodes: [Option<QueryNode>; 2],
    /// DB mode: require `start ≻ w` for every newly mapped cycle node `w`.
    pub high_start: bool,
}

impl<'a, 'b> PathBuilder<'a, 'b> {
    /// Creates a builder for `block`, assigning extra slots to its boundary
    /// nodes in boundary order.
    pub fn new(
        ctx: &'b Context<'a>,
        tree: &'b DecompositionTree,
        block: &'b Block,
        child_tables: &'b [Option<ProjectionTable>],
        high_start: bool,
    ) -> Self {
        let mut slot_nodes = [None, None];
        for (i, &b) in block.boundary.iter().enumerate() {
            slot_nodes[i] = Some(b);
        }
        PathBuilder {
            ctx,
            tree,
            block,
            child_tables,
            slot_nodes,
            high_start,
        }
    }

    /// The extra-slot index tracking `node`, if it is a boundary node.
    fn slot_of(&self, node: QueryNode) -> Option<usize> {
        self.slot_nodes.iter().position(|&s| s == Some(node))
    }

    fn record_extra(&self, mut key: PathKey, node: QueryNode, vertex: VertexId) -> PathKey {
        if let Some(slot) = self.slot_of(node) {
            key.extra[slot] = vertex;
        }
        key
    }

    /// The unary table of the child block annotating `node`, if any,
    /// pre-grouped by vertex.
    fn node_child(&self, node: QueryNode) -> Option<FastMap<VertexId, Vec<(Signature, Count)>>> {
        let child = self.block.node_annotation(node)?;
        let table = self.child_tables[child]
            .as_ref()
            .expect("child table must be solved before its parent");
        let unary = table
            .as_unary()
            .expect("node annotations correspond to unary child tables");
        Some(unary.group_by_vertex())
    }

    /// The realization of the block edge `edge_index` traversed from
    /// `from_node` to `to_node`.
    fn edge_realization(
        &self,
        edge_index: usize,
        from_node: QueryNode,
        to_node: QueryNode,
    ) -> EdgeRealization {
        match self.block.edge_annotation(edge_index) {
            None => EdgeRealization::Graph,
            Some(child) => {
                EdgeRealization::Child(self.child_binary_grouped(child, from_node, to_node))
            }
        }
    }

    /// The binary table of child block `child`, oriented so that the group
    /// key is the image of `from_node` and the listed vertices are images of
    /// `to_node`.
    fn child_binary_grouped(
        &self,
        child: BlockId,
        from_node: QueryNode,
        to_node: QueryNode,
    ) -> FastMap<VertexId, Vec<(VertexId, Signature, Count)>> {
        let child_block = &self.tree.blocks[child];
        let table = self.child_tables[child]
            .as_ref()
            .expect("child table must be solved before its parent");
        let binary = table
            .as_binary()
            .expect("edge annotations correspond to binary child tables");
        debug_assert_eq!(child_block.boundary.len(), 2);
        let first = child_block.boundary[0];
        let second = child_block.boundary[1];
        if first == from_node && second == to_node {
            binary.group_by_first()
        } else {
            debug_assert_eq!(
                (first, second),
                (to_node, from_node),
                "child boundary must match the traversed edge"
            );
            binary.transpose().group_by_first()
        }
    }

    /// Builds the table for the path visiting the block nodes at `positions`
    /// (indices into the cycle's node list, in traversal order).
    ///
    /// Node annotations are folded in for every visited node except:
    /// the start node unless `include_start_annotation`, and the end node
    /// unless `include_end_annotation` — the caller uses these flags to ensure
    /// each annotation is joined by exactly one of the two paths.
    pub fn build_path(
        &self,
        positions: &[usize],
        include_start_annotation: bool,
        include_end_annotation: bool,
        metrics: &mut RunMetrics,
    ) -> PathTable {
        assert!(positions.len() >= 2, "a path needs at least one edge");
        let nodes = self.cycle_nodes();
        let first = nodes[positions[0]];
        let second = nodes[positions[1]];
        let mut table = self.initial_table(
            self.edge_index_between(positions[0], positions[1]),
            first,
            second,
            metrics,
        );
        if include_start_annotation {
            if let Some(child) = self.node_child(first) {
                table = self.node_join(table, Field::Start, first, &child, metrics);
            }
        }
        for idx in 1..positions.len() {
            let node = nodes[positions[idx]];
            if idx > 1 {
                let prev = nodes[positions[idx - 1]];
                let edge_index = self.edge_index_between(positions[idx - 1], positions[idx]);
                table = self.edge_join(table, edge_index, prev, node, metrics);
            }
            let is_end = idx == positions.len() - 1;
            if !is_end || include_end_annotation {
                if let Some(child) = self.node_child(node) {
                    table = self.node_join(table, Field::End, node, &child, metrics);
                }
            }
        }
        table
    }

    /// Block nodes in cyclic order (for a leaf edge, the two endpoints).
    fn cycle_nodes(&self) -> Vec<QueryNode> {
        self.block.kind.nodes()
    }

    /// The block edge index connecting positions `i` and `j` (which must be
    /// adjacent on the cycle, or the single edge of a leaf block).
    fn edge_index_between(&self, i: usize, j: usize) -> usize {
        let l = self.block.kind.len();
        if l == 2 {
            return 0;
        }
        if (i + 1) % l == j {
            i
        } else {
            debug_assert_eq!((j + 1) % l, i, "positions {i} and {j} are not adjacent");
            j
        }
    }

    /// Builds the initial table for the first edge of a path.
    pub fn initial_table(
        &self,
        edge_index: usize,
        from_node: QueryNode,
        to_node: QueryNode,
        metrics: &mut RunMetrics,
    ) -> PathTable {
        let ctx = self.ctx;
        let mut table = PathTable::new();
        let mut load = LoadStats::new(ctx.partition.num_ranks());
        match self.edge_realization(edge_index, from_node, to_node) {
            EdgeRealization::Graph => {
                for u in ctx.graph.vertices() {
                    let cu = ctx.color(u);
                    // In DB mode only the neighbors strictly below the start
                    // vertex in the degree order can appear on a high-starting
                    // path, so the pruned list is enumerated directly.
                    let neighbors = if self.high_start {
                        ctx.lower_neighbors(u, u)
                    } else {
                        ctx.graph.neighbors(u)
                    };
                    load.record_vertex(&ctx.partition, u, neighbors.len() as u64);
                    for &w in neighbors {
                        let cw = ctx.color(w);
                        if cu == cw {
                            continue;
                        }
                        let sig = Signature::pair(cu, cw);
                        let mut key = PathKey::new(u, w, sig);
                        key = self.record_extra(key, from_node, u);
                        key = self.record_extra(key, to_node, w);
                        table.add(key, 1);
                    }
                }
            }
            EdgeRealization::Child(grouped) => {
                for (&u, list) in &grouped {
                    load.record_vertex(&ctx.partition, u, list.len() as u64);
                    for &(w, sig, count) in list {
                        if self.high_start && !ctx.order().higher(u, w) {
                            continue;
                        }
                        let mut key = PathKey::new(u, w, sig);
                        key = self.record_extra(key, from_node, u);
                        key = self.record_extra(key, to_node, w);
                        table.add(key, count);
                    }
                }
            }
        }
        metrics.absorb_load(&load);
        metrics.observe_table(table.len());
        table
    }

    /// Joins the unary table of a child block at the given key field.
    pub fn node_join(
        &self,
        table: PathTable,
        field: Field,
        _node: QueryNode,
        child: &FastMap<VertexId, Vec<(Signature, Count)>>,
        metrics: &mut RunMetrics,
    ) -> PathTable {
        let ctx = self.ctx;
        let entries = table.into_entries();
        let partials = parallel_chunks(&entries, |chunk| {
            let mut out = PathTable::new();
            let mut load = LoadStats::new(ctx.partition.num_ranks());
            for &(key, count) in chunk {
                let x = match field {
                    Field::Start => key.start,
                    Field::End => key.end,
                };
                let Some(list) = child.get(&x) else { continue };
                load.record_vertex(&ctx.partition, x, list.len() as u64);
                let shared = ctx.color_sig(x);
                for &(sig2, count2) in list {
                    if key.sig.intersection(sig2) != shared {
                        continue;
                    }
                    let mut new_key = key;
                    new_key.sig = key.sig.union(sig2);
                    out.add(new_key, count * count2);
                }
            }
            (out, load)
        });
        self.merge_partials(partials, metrics)
    }

    /// Extends every path in `table` by one block edge, from `from_node`
    /// (the current end) to `to_node`.
    pub fn edge_join(
        &self,
        table: PathTable,
        edge_index: usize,
        from_node: QueryNode,
        to_node: QueryNode,
        metrics: &mut RunMetrics,
    ) -> PathTable {
        let ctx = self.ctx;
        let realization = self.edge_realization(edge_index, from_node, to_node);
        let entries = table.into_entries();
        let partials = parallel_chunks(&entries, |chunk| {
            let mut out = PathTable::new();
            let mut load = LoadStats::new(ctx.partition.num_ranks());
            for &(key, count) in chunk {
                let v = key.end;
                let shared = ctx.color_sig(v);
                match &realization {
                    EdgeRealization::Graph => {
                        let neighbors = if self.high_start {
                            ctx.lower_neighbors(v, key.start)
                        } else {
                            ctx.graph.neighbors(v)
                        };
                        load.record_vertex(&ctx.partition, v, neighbors.len() as u64);
                        for &w in neighbors {
                            let cw = ctx.color(w);
                            if key.sig.contains(cw) {
                                continue;
                            }
                            let mut new_key = key;
                            new_key.end = w;
                            new_key.sig = key.sig.with(cw);
                            new_key = self.record_extra(new_key, to_node, w);
                            out.add(new_key, count);
                        }
                    }
                    EdgeRealization::Child(grouped) => {
                        let Some(list) = grouped.get(&v) else {
                            continue;
                        };
                        load.record_vertex(&ctx.partition, v, list.len() as u64);
                        for &(w, sig2, count2) in list {
                            if self.high_start && !ctx.order().higher(key.start, w) {
                                continue;
                            }
                            if key.sig.intersection(sig2) != shared {
                                continue;
                            }
                            let mut new_key = key;
                            new_key.end = w;
                            new_key.sig = key.sig.union(sig2);
                            new_key = self.record_extra(new_key, to_node, w);
                            out.add(new_key, count * count2);
                        }
                    }
                }
            }
            (out, load)
        });
        self.merge_partials(partials, metrics)
    }

    fn merge_partials(
        &self,
        partials: Vec<(PathTable, LoadStats)>,
        metrics: &mut RunMetrics,
    ) -> PathTable {
        // Loads are tiny vectors — absorb them sequentially. The tables can be
        // large, so merge them with a parallel pairwise reduction to keep the
        // serial fraction of each join small.
        let mut tables = Vec::with_capacity(partials.len());
        for (table, load) in partials {
            metrics.absorb_load(&load);
            tables.push(table);
        }
        let merged = parallel_table_merge(tables);
        metrics.observe_table(merged.len());
        merged
    }
}

/// Merges many path tables into one by parallel pairwise reduction.
fn parallel_table_merge(mut tables: Vec<PathTable>) -> PathTable {
    use rayon::prelude::*;
    while tables.len() > 1 {
        tables = tables
            .into_par_iter()
            .chunks(2)
            .map(|mut pair| {
                if pair.len() == 2 {
                    let second = pair.pop().unwrap();
                    let mut first = pair.pop().unwrap();
                    first.merge(second);
                    first
                } else {
                    pair.pop().unwrap()
                }
            })
            .collect();
    }
    tables.pop().unwrap_or_default()
}

/// A defensive check used by the path-merge step: extras recorded on both
/// sides for the same slot must agree (they can only both be set when the
/// tracked node is one of the shared endpoints).
pub fn combine_extras(a: [VertexId; 2], b: [VertexId; 2]) -> Option<[VertexId; 2]> {
    let mut out = [NO_VERTEX, NO_VERTEX];
    for slot in 0..2 {
        out[slot] = match (a[slot], b[slot]) {
            (NO_VERTEX, x) => x,
            (x, NO_VERTEX) => x,
            (x, y) if x == y => x,
            _ => return None,
        };
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_extras_prefers_set_slots() {
        assert_eq!(combine_extras([5, NO_VERTEX], [NO_VERTEX, 9]), Some([5, 9]));
        assert_eq!(
            combine_extras([5, NO_VERTEX], [5, NO_VERTEX]),
            Some([5, NO_VERTEX])
        );
        assert_eq!(combine_extras([5, 1], [6, 1]), None);
    }
}
