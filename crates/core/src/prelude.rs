//! Convenience re-exports for downstream users.
//!
//! `use sgc_core::prelude::*;` (or `use subgraph_counting::prelude::*;` via
//! the facade crate) brings in the types needed for the common workflow:
//! build a data graph, pick a query, estimate its count.

pub use crate::config::{Algorithm, CountConfig};
pub use crate::driver::{count_colorful, count_colorful_with_tree, CountResult};
pub use crate::estimator::{estimate_count, Estimate, EstimateConfig};
pub use crate::metrics::RunMetrics;
pub use sgc_engine::{Count, Signature};
pub use sgc_graph::{Coloring, CsrGraph, GraphBuilder, VertexId};
pub use sgc_query::{decompose, heuristic_plan, DecompositionTree, QueryGraph};
