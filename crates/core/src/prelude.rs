//! Convenience re-exports for downstream users.
//!
//! `use sgc_core::prelude::*;` (or `use subgraph_counting::prelude::*;` via
//! the facade crate) brings in the types needed for the common workflow:
//! build a data graph, bind an [`Engine`] to it, pick a query, count or
//! estimate.

pub use crate::batch::{BatchMetrics, BatchResult};
pub use crate::config::{Algorithm, CountConfig};
pub use crate::driver::CountResult;
pub use crate::engine::{CountRequest, Engine, TrialStream};
pub use crate::error::SgcError;
pub use crate::estimator::{Estimate, EstimateConfig, TrialAccumulator};
pub use crate::explain::{BlockReport, PlanCandidate, PlanReport, TreewidthVerdict};
pub use crate::kernel::{KernelKind, KernelMetrics};
pub use crate::metrics::{RunMetrics, ShardMetrics};
pub use crate::runtime::{ShardPlan, VertexShard};
pub use sgc_engine::{Count, Signature};
pub use sgc_graph::{Coloring, CsrGraph, GraphBuilder, VertexId};
pub use sgc_query::{
    decompose, heuristic_plan, DecompositionTree, Pattern, PatternParseError, QueryGraph, Registry,
};

#[allow(deprecated)]
pub use crate::driver::{count_colorful, count_colorful_with_tree};
#[allow(deprecated)]
pub use crate::estimator::estimate_count;
