//! The Path Splitting (PS) baseline.
//!
//! PS is the paper's rephrasing of the original Alon et al. color-coding
//! dynamic program over the decomposition tree (Section 5.1, Figure 4): each
//! cycle is split at its boundary nodes into the two paths `P+` and `P-`,
//! each path's projection table is built by extending one edge at a time, and
//! the two are joined. No degree information is used, which on skewed graphs
//! leads to large intermediate tables around high-degree vertices and to load
//! imbalance — exactly the behaviour the DB algorithm addresses.

use crate::config::Algorithm;
use crate::driver::CountResult;
use crate::engine::Engine;
use crate::error::SgcError;
use sgc_graph::{Coloring, CsrGraph};
use sgc_query::QueryGraph;

/// Counts colorful matches with the PS algorithm (one-shot convenience
/// wrapper around [`Engine`] with [`Algorithm::PathSplitting`]).
pub fn count_colorful_ps(
    graph: &CsrGraph,
    coloring: &Coloring,
    query: &QueryGraph,
) -> Result<CountResult, SgcError> {
    Engine::new(graph)
        .count(query)
        .algorithm(Algorithm::PathSplitting)
        .coloring(coloring)
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_graph::GraphBuilder;

    #[test]
    fn wrapper_matches_driver() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let g = b.build();
        let coloring = Coloring::random(4, 3, 7);
        let query = sgc_query::catalog::triangle();
        let via_wrapper = count_colorful_ps(&g, &coloring, &query).unwrap();
        let via_engine = Engine::new(&g)
            .count(&query)
            .algorithm(Algorithm::PathSplitting)
            .coloring(&coloring)
            .run()
            .unwrap();
        assert_eq!(via_wrapper.colorful_matches, via_engine.colorful_matches);
    }
}
