//! The Path Splitting (PS) baseline.
//!
//! PS is the paper's rephrasing of the original Alon et al. color-coding
//! dynamic program over the decomposition tree (Section 5.1, Figure 4): each
//! cycle is split at its boundary nodes into the two paths `P+` and `P-`,
//! each path's projection table is built by extending one edge at a time, and
//! the two are joined. No degree information is used, which on skewed graphs
//! leads to large intermediate tables around high-degree vertices and to load
//! imbalance — exactly the behaviour the DB algorithm addresses.

use crate::config::{Algorithm, CountConfig};
use crate::driver::{count_colorful, CountResult};
use sgc_graph::{Coloring, CsrGraph};
use sgc_query::{QueryError, QueryGraph};

/// Counts colorful matches with the PS algorithm (convenience wrapper around
/// [`count_colorful`] with [`Algorithm::PathSplitting`]).
pub fn count_colorful_ps(
    graph: &CsrGraph,
    coloring: &Coloring,
    query: &QueryGraph,
) -> Result<CountResult, QueryError> {
    count_colorful(
        graph,
        coloring,
        query,
        &CountConfig::new(Algorithm::PathSplitting),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_graph::GraphBuilder;

    #[test]
    fn wrapper_matches_driver() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let g = b.build();
        let coloring = Coloring::random(4, 3, 7);
        let query = sgc_query::catalog::triangle();
        let via_wrapper = count_colorful_ps(&g, &coloring, &query).unwrap();
        let via_driver = count_colorful(
            &g,
            &coloring,
            &query,
            &CountConfig::new(Algorithm::PathSplitting),
        )
        .unwrap();
        assert_eq!(via_wrapper.colorful_matches, via_driver.colorful_matches);
    }
}
