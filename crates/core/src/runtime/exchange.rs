//! The partial-sum exchange step.
//!
//! After every shard has solved a block over its own vertex slice, the
//! per-shard partial projection tables must be summed into the block's full
//! table before any parent block can consume it. In the paper this is the
//! batched alltoall of partial sums (the PS trick of Section 7: accumulate
//! locally, exchange once per block instead of once per entry); on shared
//! memory it is a table merge — but it is kept as an explicit, metered step
//! so the runtime has the same structure, and the same observable exchange
//! volume, as the distributed original.
//!
//! Exactness: projection tables map keys to `u64` counts and the per-shard
//! partials are disjoint-by-construction only in *origin*, not in key — the
//! same `(boundary image, signature)` key can receive contributions from
//! many shards. Summing them in any order or grouping yields identical
//! counts because `u64` addition is associative and commutative, which is
//! what makes the sharded ≡ serial bit-identity contract hold.

use crate::blocks::merge_projection;
use crate::metrics::ShardMetrics;
use sgc_engine::parallel::pairwise_reduce;
use sgc_engine::ProjectionTable;

/// Combines the per-shard partial tables of one block into its full table,
/// recording one exchange round and each shard's contributed entry count in
/// `metrics`.
///
/// The merge is a pairwise parallel reduction: with `S` shards it performs
/// `⌈log₂ S⌉` rounds of concurrent two-table merges rather than a serial
/// left fold, keeping the exchange off the runtime's critical path.
///
/// # Panics
/// Panics if `partials` is empty (a shard plan always has ≥ 1 shard), if
/// `partials.len()` differs from `metrics.num_shards()` (the metrics must
/// be sized for the shard plan that produced the partials), or if the
/// partial tables disagree on shape (scalar/unary/binary) — shards solve
/// the same block, so a mismatch is a programmer error.
pub fn combine(partials: Vec<ProjectionTable>, metrics: &mut ShardMetrics) -> ProjectionTable {
    combine_round(vec![partials], std::slice::from_mut(metrics))
        .pop()
        .expect("one block in, one combined table out")
}

/// Combines the per-shard partials of *several* blocks — one per member of a
/// batch trial step — in a single exchange round.
///
/// Where [`combine`] is one block's alltoall, this is the batched form the
/// paper's Section 7 actually performs: every query active in the current
/// block step contributes its per-shard partial sums to *one* synchronization
/// point, instead of paying one round per query. Each member's
/// [`ShardMetrics`] still records the round and its shards' contributed
/// entries (the per-query message volume is unchanged; what the batch saves
/// is rounds, not bytes).
///
/// Returns the combined table of every member, in input order.
///
/// # Panics
/// Panics if `batch` and `metrics` disagree in length, if any member has no
/// partials, or if a member's partial count differs from its metrics' shard
/// count.
pub fn combine_round(
    batch: Vec<Vec<ProjectionTable>>,
    metrics: &mut [ShardMetrics],
) -> Vec<ProjectionTable> {
    assert_eq!(
        batch.len(),
        metrics.len(),
        "one ShardMetrics per batch member"
    );
    for (partials, member_metrics) in batch.iter().zip(metrics.iter_mut()) {
        assert!(
            !partials.is_empty(),
            "exchange requires at least one shard's partial table"
        );
        assert_eq!(
            partials.len(),
            member_metrics.num_shards(),
            "one partial table per shard"
        );
        member_metrics.exchange_rounds += 1;
        for (shard, table) in partials.iter().enumerate() {
            // A scalar partial is one number on the wire; keyed tables
            // contribute one message entry per materialised key.
            member_metrics.entries_exchanged[shard] += table.len() as u64;
        }
    }
    batch
        .into_iter()
        .map(|partials| {
            // Each member's merge is a parallel pairwise reduction, so the
            // round's critical path is one ⌈log₂ S⌉ merge tree per member.
            pairwise_reduce(partials, merge_projection).expect("at least one table")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_engine::{BinaryTable, Signature, UnaryTable};

    fn unary(entries: &[(u32, u8, u64)]) -> ProjectionTable {
        let mut t = UnaryTable::new();
        for &(v, color, count) in entries {
            t.add(v, Signature::singleton(color), count);
        }
        ProjectionTable::Unary(t)
    }

    #[test]
    fn scalars_sum_across_shards() {
        let mut m = ShardMetrics::new(3);
        let combined = combine(
            vec![
                ProjectionTable::Scalar(5),
                ProjectionTable::Scalar(0),
                ProjectionTable::Scalar(7),
            ],
            &mut m,
        );
        assert_eq!(combined.total(), 12);
        assert_eq!(m.exchange_rounds, 1);
        // Scalars are one entry each, even when zero.
        assert_eq!(m.entries_exchanged, vec![1, 1, 1]);
    }

    #[test]
    fn empty_shards_contribute_nothing_but_are_metered() {
        // Shards that own no vertices (more shards than vertices) produce
        // empty keyed tables; the exchange must pass the populated entries
        // through untouched.
        let mut m = ShardMetrics::new(4);
        let combined = combine(
            vec![
                unary(&[(0, 0, 2), (1, 1, 3)]),
                unary(&[]),
                unary(&[]),
                unary(&[(0, 0, 4)]),
            ],
            &mut m,
        );
        assert_eq!(combined.total(), 9);
        let merged = combined.as_unary().unwrap();
        assert_eq!(merged.get(0, Signature::singleton(0)), 6);
        assert_eq!(merged.get(1, Signature::singleton(1)), 3);
        assert_eq!(m.entries_exchanged, vec![2, 0, 0, 1]);
    }

    #[test]
    fn single_vertex_shards_reassemble_the_full_table() {
        // One shard per vertex: every partial holds at most one vertex's
        // entries, and the exchange must reassemble the exact union.
        let mut m = ShardMetrics::new(3);
        let combined = combine(
            vec![
                unary(&[(0, 0, 1)]),
                unary(&[(1, 1, 2)]),
                unary(&[(2, 2, 3)]),
            ],
            &mut m,
        );
        assert_eq!(combined.len(), 3);
        assert_eq!(combined.total(), 6);
        assert_eq!(m.total_entries_exchanged(), 3);
    }

    #[test]
    fn single_shard_exchange_is_identity() {
        let mut m = ShardMetrics::new(1);
        let combined = combine(vec![unary(&[(4, 1, 9)])], &mut m);
        assert_eq!(
            combined.as_unary().unwrap().get(4, Signature::singleton(1)),
            9
        );
        assert_eq!(m.exchange_rounds, 1);
    }

    #[test]
    fn binary_partials_merge_by_key() {
        let mut a = BinaryTable::new();
        a.add(0, 1, Signature::pair(0, 1), 2);
        let mut b = BinaryTable::new();
        b.add(0, 1, Signature::pair(0, 1), 5);
        b.add(2, 3, Signature::pair(2, 3), 1);
        let mut m = ShardMetrics::new(2);
        let combined = combine(
            vec![ProjectionTable::Binary(a), ProjectionTable::Binary(b)],
            &mut m,
        );
        let merged = combined.as_binary().unwrap();
        assert_eq!(merged.get(0, 1, Signature::pair(0, 1)), 7);
        assert_eq!(merged.get(2, 3, Signature::pair(2, 3)), 1);
    }

    #[test]
    #[should_panic]
    fn empty_partials_panic() {
        let mut m = ShardMetrics::new(0);
        let _ = combine(Vec::new(), &mut m);
    }

    #[test]
    fn one_round_serves_several_blocks() {
        // Two batch members combine in one shared round: each member's
        // metrics record exactly one round and its own entry volume.
        let mut metrics = vec![ShardMetrics::new(2), ShardMetrics::new(2)];
        let combined = combine_round(
            vec![
                vec![ProjectionTable::Scalar(3), ProjectionTable::Scalar(4)],
                vec![unary(&[(0, 0, 1), (1, 1, 2)]), unary(&[(0, 0, 5)])],
            ],
            &mut metrics,
        );
        assert_eq!(combined.len(), 2);
        assert_eq!(combined[0].total(), 7);
        assert_eq!(combined[1].total(), 8);
        assert_eq!(metrics[0].exchange_rounds, 1);
        assert_eq!(metrics[1].exchange_rounds, 1);
        assert_eq!(metrics[0].entries_exchanged, vec![1, 1]);
        assert_eq!(metrics[1].entries_exchanged, vec![2, 1]);
        // Combining per member one at a time yields the same tables: the
        // shared round changes synchronization structure, never counts.
        let mut solo = ShardMetrics::new(2);
        let alone = combine(
            vec![unary(&[(0, 0, 1), (1, 1, 2)]), unary(&[(0, 0, 5)])],
            &mut solo,
        );
        assert_eq!(alone.total(), combined[1].total());
    }

    #[test]
    #[should_panic(expected = "one ShardMetrics per batch member")]
    fn mismatched_round_lengths_panic() {
        let mut m = vec![ShardMetrics::new(1)];
        let _ = combine_round(
            vec![
                vec![ProjectionTable::Scalar(1)],
                vec![ProjectionTable::Scalar(2)],
            ],
            &mut m,
        );
    }
}
