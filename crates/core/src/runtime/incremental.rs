//! Delta-aware sharded counting: partial-sum retention and replay.
//!
//! The sharded solver ([`count_many_sharded`](super::shard)) computes, for
//! every block step, one **pre-exchange partial table per shard**, then
//! combines them in an exchange round. Those partials are the unit of
//! incremental recomputation: a trial's coloring depends only on
//! `(num_vertices, colors, seed)`, so after an edge-only delta the partial
//! of any shard whose vertices are far enough from every changed edge is
//! **bit-identical** on the new graph — there is no reason to re-solve it.
//!
//! This module provides the two halves of that trade:
//!
//! * [`count_sharded_retaining`] — a from-scratch sharded count that clones
//!   each shard's pre-exchange partial into a [`TrialPartials`] record,
//! * [`recount_sharded_replay`] — the same count on a *new* graph version,
//!   re-solving only the shards marked dirty and replaying every clean
//!   shard's cached partial (under the `dp.recount.replay` span).
//!
//! [`dirty_shards`] computes a sound dirty set: a shard is dirty iff it
//! owns a vertex within graph distance `2k` of an endpoint of a changed
//! edge, measured over the **union** of the old and new adjacency (`k` =
//! query node count). Soundness argument (the bit-identity contract of the
//! replay path):
//!
//! 1. A shard's partial at a block step aggregates partial embeddings
//!    anchored at its owned vertices. Plannable queries are connected, so
//!    every vertex of such an embedding lies within `k−1` hops of the
//!    anchor.
//! 2. The solve probes child-table entries keyed by embedding vertices;
//!    a probed entry's value aggregates child-pattern embeddings within
//!    `k−1` hops of its key — so everything a shard's solve reads lives
//!    within `2(k−1)` hops of the anchor.
//! 3. The DB rank order ([`DegreeOrder`](sgc_graph::DegreeOrder)) sorts by
//!    `(degree, id)`; a delta changes only its endpoints' degrees, so the
//!    ranked adjacency of a vertex changes only if the vertex or one of its
//!    neighbors is a changed endpoint — one more hop of influence.
//! 4. Union adjacency covers both directions: inserted edges can only
//!    create embeddings reachable in the new graph, deleted edges only
//!    remove embeddings reachable in the old one.
//!
//! `2(k−1) + 1 ≤ 2k` hops therefore bound every input of a clean shard's
//! solve; outside that ball the solve is a pure function of unchanged
//! inputs, and replaying the cached output is exact. Exchange rounds merge
//! per-shard `u64` sums in a fixed order, so replayed partials produce
//! combined tables — and the final count — bit-identical to a from-scratch
//! run on the new graph. The differential suite in `tests/dynamic.rs` pins
//! this end to end.

use crate::blocks::solve_block_with_index;
use crate::config::Algorithm;
use crate::context::{Context, GraphPrep};
use crate::error::SgcError;
use crate::kernel::{solve_block_columnar, ArenaPool, KernelKind};
use crate::metrics::{RunMetrics, ShardMetrics};
use crate::paths::BlockJoinIndex;
use crate::runtime::exchange;
use crate::runtime::shard::ShardPlan;
use sgc_engine::parallel::parallel_indexed;
use sgc_engine::{Count, ProjectionTable};
use sgc_graph::{BlockPartition, Coloring, CsrGraph, VertexId};
use sgc_query::DecompositionTree;
use std::time::Instant;

/// The retained pre-exchange partials of one `(coloring, plan, shards)`
/// trial: for every block step, every shard's partial table as produced
/// *before* the exchange round combined them.
///
/// Bounded stores (the `sgc-dyn` partial store) account for these via
/// [`approx_bytes`](TrialPartials::approx_bytes).
#[derive(Clone, Debug)]
pub struct TrialPartials {
    num_shards: usize,
    /// `steps[step][shard]`: the shard's pre-exchange partial for the block
    /// solved at `step` (single-node plans have exactly one scalar step).
    steps: Vec<Vec<ProjectionTable>>,
}

impl TrialPartials {
    /// The shard count these partials were produced with; replay requires
    /// the same layout.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of block steps retained.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Rough retained size: table entries times a fixed per-entry record
    /// estimate, for bounded-store accounting.
    pub fn approx_bytes(&self) -> usize {
        const BYTES_PER_ENTRY: usize = 48;
        self.steps
            .iter()
            .flat_map(|shards| shards.iter())
            .map(|t| t.len().max(1) * BYTES_PER_ENTRY)
            .sum()
    }
}

/// What an incremental-capable sharded count produced.
pub struct IncrementalOutcome {
    /// The trial's exact colorful count — bit-identical to the serial
    /// driver and to [`count_many_sharded`](super::shard) on the same
    /// graph.
    pub colorful_matches: Count,
    /// The pre-exchange partials, ready to be retained for later replay.
    pub partials: TrialPartials,
    /// Execution metrics (replayed shards contribute no DP ops).
    pub metrics: RunMetrics,
    /// How many shard solves were replayed from cache instead of computed
    /// (`0` for a from-scratch run).
    pub shards_replayed: usize,
}

/// Computes the shards whose partials may change under `delta_endpoints`:
/// every shard owning a vertex within graph distance `2 * query_nodes` of a
/// changed-edge endpoint, BFS over the union of `old` and `new` adjacency.
///
/// See the module docs for why this radius makes replaying every other
/// shard exact. Returns one flag per shard.
///
/// # Errors
/// [`SgcError::ZeroShards`] when `num_shards` is zero.
pub fn dirty_shards(
    old: &CsrGraph,
    new: &CsrGraph,
    changed_edges: &[(VertexId, VertexId)],
    query_nodes: usize,
    num_shards: usize,
) -> Result<Vec<bool>, SgcError> {
    if num_shards == 0 {
        return Err(SgcError::ZeroShards);
    }
    let n = old.num_vertices();
    debug_assert_eq!(n, new.num_vertices(), "edge-only deltas fix the vertex set");
    let radius = 2 * query_nodes;
    let partition = BlockPartition::new(n, num_shards);
    let mut dirty = vec![false; num_shards];
    let mut depth = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for &(u, v) in changed_edges {
        for w in [u, v] {
            if (w as usize) < n && depth[w as usize] == usize::MAX {
                depth[w as usize] = 0;
                queue.push_back(w);
            }
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = depth[v as usize];
        dirty[partition.owner(v)] = true;
        if d == radius {
            continue;
        }
        for &w in old.neighbors(v).iter().chain(new.neighbors(v)) {
            if depth[w as usize] == usize::MAX {
                depth[w as usize] = d + 1;
                queue.push_back(w);
            }
        }
    }
    Ok(dirty)
}

/// A from-scratch sharded count that retains every shard's pre-exchange
/// partial table. Identical in result to the plain sharded runtime; the
/// extra cost is one clone of each partial.
#[allow(clippy::too_many_arguments)]
pub fn count_sharded_retaining(
    graph: &CsrGraph,
    prep: &GraphPrep,
    coloring: &Coloring,
    tree: &DecompositionTree,
    algorithm: Algorithm,
    num_shards: usize,
    kernel: KernelKind,
    pool: &ArenaPool,
) -> Result<IncrementalOutcome, SgcError> {
    run_incremental(
        graph, prep, coloring, tree, algorithm, num_shards, kernel, pool, None,
    )
}

/// Re-counts on a **new** graph version, re-solving only the shards
/// flagged in `dirty` and replaying every other shard's partial from
/// `cached` — bit-identical to a from-scratch count on `graph` as long as
/// `dirty` covers at least [`dirty_shards`] of the applied delta and
/// `cached` came from the parent version with the same
/// `(coloring, tree, algorithm, num_shards)`.
///
/// # Panics
/// If `cached` was produced with a different shard count or step count
/// (the caller keys its partial store by shard count, so a mismatch is a
/// bookkeeping bug, not an input error).
#[allow(clippy::too_many_arguments)]
pub fn recount_sharded_replay(
    graph: &CsrGraph,
    prep: &GraphPrep,
    coloring: &Coloring,
    tree: &DecompositionTree,
    algorithm: Algorithm,
    num_shards: usize,
    kernel: KernelKind,
    pool: &ArenaPool,
    dirty: &[bool],
    cached: &TrialPartials,
) -> Result<IncrementalOutcome, SgcError> {
    assert_eq!(
        cached.num_shards, num_shards,
        "cached partials were produced with a different shard count"
    );
    assert_eq!(
        cached.num_steps(),
        tree.blocks.len().max(1),
        "cached partials were produced with a different plan"
    );
    assert_eq!(dirty.len(), num_shards, "one dirty flag per shard");
    run_incremental(
        graph,
        prep,
        coloring,
        tree,
        algorithm,
        num_shards,
        kernel,
        pool,
        Some((dirty, cached)),
    )
}

/// The shared body: a single-job sharded solve loop mirroring
/// [`count_many_sharded`](super::shard), with partial retention and
/// (optionally) clean-shard replay.
#[allow(clippy::too_many_arguments)]
fn run_incremental(
    graph: &CsrGraph,
    prep: &GraphPrep,
    coloring: &Coloring,
    tree: &DecompositionTree,
    algorithm: Algorithm,
    num_shards: usize,
    kernel: KernelKind,
    pool: &ArenaPool,
    replay: Option<(&[bool], &TrialPartials)>,
) -> Result<IncrementalOutcome, SgcError> {
    let num_ranks = 1;
    let plan = ShardPlan::new(graph.num_vertices(), num_shards)?;
    Context::validate(graph, coloring, num_ranks)?;
    let obs = sgc_obs::enabled();

    let mut metrics = RunMetrics::new(num_ranks);
    let mut shard_metrics = ShardMetrics::new(num_shards);
    let mut tables: Vec<Option<ProjectionTable>> = vec![None; tree.blocks.len()];
    let mut single_total: Option<Count> = None;
    let mut retained: Vec<Vec<ProjectionTable>> = Vec::new();
    let mut shards_replayed = 0usize;
    let started = Instant::now();

    let steps = tree.blocks.len().max(1);
    for step in 0..steps {
        let index = tree
            .root
            .is_some()
            .then(|| BlockJoinIndex::build(&tree.blocks[step], &tables));
        let partials: Vec<(ProjectionTable, RunMetrics, bool)> =
            parallel_indexed(num_shards, |s| {
                // Worker threads do not inherit the submitting thread's
                // suspension state; mirror it so per-request obs opt-out
                // holds across the fan-out.
                let _pause = (!obs).then(sgc_obs::suspend);
                let mut shard_run = RunMetrics::new(num_ranks);
                let solve_started = Instant::now();
                // Clean shard with a cached partial: replay it.
                if let Some((dirty, cached)) = replay {
                    if !dirty[s] {
                        let _span = sgc_obs::span(sgc_obs::Stage::DpRecountReplay);
                        let table = cached.steps[step][s].clone();
                        shard_run.elapsed = solve_started.elapsed();
                        return (table, shard_run, true);
                    }
                }
                let table = match &index {
                    Some(index) => {
                        let ctx =
                            Context::for_shard(graph, prep, coloring, num_ranks, plan.shard(s));
                        match kernel {
                            KernelKind::Scalar => {
                                let _span = sgc_obs::span(sgc_obs::Stage::DpBlockScalar);
                                solve_block_with_index(
                                    &ctx,
                                    tree,
                                    &tree.blocks[step],
                                    index,
                                    algorithm,
                                    &mut shard_run,
                                )
                            }
                            KernelKind::Columnar => {
                                let _span = sgc_obs::span(sgc_obs::Stage::DpBlockColumnar);
                                let (mut arena, reused) = pool.checkout();
                                let before = arena.capacity_bytes();
                                let table = solve_block_columnar(
                                    &ctx,
                                    tree,
                                    &tree.blocks[step],
                                    index,
                                    algorithm,
                                    &mut arena,
                                    &mut shard_run,
                                );
                                let after = arena.capacity_bytes();
                                shard_run.kernel.record_checkout(
                                    after as u64,
                                    reused,
                                    after.saturating_sub(before) as u64,
                                );
                                pool.give_back(arena);
                                table
                            }
                        }
                    }
                    // Single-node query: the shard's owned-vertex count is
                    // its scalar partial sum (edge deltas never change it).
                    None => ProjectionTable::Scalar(plan.shard(s).num_vertices() as Count),
                };
                shard_run.elapsed = solve_started.elapsed();
                (table, shard_run, false)
            });

        let mut round_tables = Vec::with_capacity(num_shards);
        let mut step_retained = Vec::with_capacity(num_shards);
        for (s, (table, shard_run, replayed)) in partials.into_iter().enumerate() {
            shard_metrics.ops_per_shard[s] += shard_run.total_ops;
            metrics.absorb_shard(&shard_run);
            if replayed {
                shards_replayed += 1;
            }
            step_retained.push(table.clone());
            round_tables.push(table);
        }
        retained.push(step_retained);

        let table = {
            let _span = obs.then(|| sgc_obs::span(sgc_obs::Stage::Exchange));
            exchange::combine(round_tables, &mut shard_metrics)
        };
        if tree.root.is_some() {
            metrics.observe_table(table.len());
            tables[tree.blocks[step].id] = Some(table);
        } else {
            single_total = Some(table.total());
        }
    }

    let colorful_matches = match tree.root {
        Some(root) => tables[root]
            .as_ref()
            .expect("root table was computed in its block step")
            .total(),
        None => single_total.expect("single-node totals resolve in step 0"),
    };
    metrics.shards = Some(shard_metrics);
    metrics.elapsed = started.elapsed();
    Ok(IncrementalOutcome {
        colorful_matches,
        partials: TrialPartials {
            num_shards,
            steps: retained,
        },
        metrics,
        shards_replayed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_graph::GraphBuilder;
    use sgc_query::{catalog, heuristic_plan};

    fn grid_graph(side: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(side * side);
        let id = |r: usize, c: usize| (r * side + c) as VertexId;
        for r in 0..side {
            for c in 0..side {
                if c + 1 < side {
                    b.add_edge(id(r, c), id(r, c + 1));
                }
                if r + 1 < side {
                    b.add_edge(id(r, c), id(r + 1, c));
                }
            }
        }
        b.build()
    }

    #[test]
    fn retain_matches_plain_sharded_and_replay_matches_scratch() {
        let old = grid_graph(12);
        // Delete one corner edge: a local change in a grid.
        let delta_edge = (0 as VertexId, 1 as VertexId);
        let mut adj: Vec<Vec<VertexId>> = (0..old.num_vertices())
            .map(|v| old.neighbors(v as VertexId).to_vec())
            .collect();
        adj[0].retain(|&w| w != 1);
        adj[1].retain(|&w| w != 0);
        let new = CsrGraph::from_sorted_adjacency(adj);

        let query = catalog::triangle();
        let tree = heuristic_plan(&query).unwrap();
        let pool = ArenaPool::new();
        for num_shards in [1usize, 4] {
            for seed in [7u64, 21] {
                let coloring = Coloring::random(old.num_vertices(), query.num_nodes(), seed);
                let old_prep = GraphPrep::new(&old);
                let new_prep = GraphPrep::new(&new);

                let retained = count_sharded_retaining(
                    &old,
                    &old_prep,
                    &coloring,
                    &tree,
                    Algorithm::DegreeBased,
                    num_shards,
                    KernelKind::Columnar,
                    &pool,
                )
                .unwrap();
                let scratch_new = count_sharded_retaining(
                    &new,
                    &new_prep,
                    &coloring,
                    &tree,
                    Algorithm::DegreeBased,
                    num_shards,
                    KernelKind::Columnar,
                    &pool,
                )
                .unwrap();

                let dirty =
                    dirty_shards(&old, &new, &[delta_edge], query.num_nodes(), num_shards).unwrap();
                let replayed = recount_sharded_replay(
                    &new,
                    &new_prep,
                    &coloring,
                    &tree,
                    Algorithm::DegreeBased,
                    num_shards,
                    KernelKind::Columnar,
                    &pool,
                    &dirty,
                    &retained.partials,
                )
                .unwrap();
                assert_eq!(
                    replayed.colorful_matches, scratch_new.colorful_matches,
                    "shards={num_shards} seed={seed}"
                );
                // With 4 shards on a 144-vertex grid and a corner delta,
                // at least one far shard must be clean and replayed.
                if num_shards == 4 {
                    assert!(
                        dirty.iter().any(|&d| !d),
                        "corner delta dirtied every shard"
                    );
                    assert!(replayed.shards_replayed > 0);
                }
                // Replayed partials equal the from-scratch partials — the
                // retained store stays valid for the *next* delta too.
                assert_eq!(
                    replayed.partials.steps, scratch_new.partials.steps,
                    "shards={num_shards} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn dirty_shards_covers_both_old_and_new_adjacency() {
        // Old: 0-1 plus a long path; new: adds 0-50 — vertices near 50 are
        // reachable only through the new adjacency, but must be dirty.
        let mut b = GraphBuilder::new(60);
        for v in 0..59u32 {
            b.add_edge(v, v + 1);
        }
        let old = b.build();
        let mut adj: Vec<Vec<VertexId>> = (0..60)
            .map(|v| old.neighbors(v as VertexId).to_vec())
            .collect();
        adj[0].push(50);
        adj[0].sort_unstable();
        adj[50].push(0);
        adj[50].sort_unstable();
        let new = CsrGraph::from_sorted_adjacency(adj);

        let dirty = dirty_shards(&old, &new, &[(0, 50)], 3, 6).unwrap();
        let partition = BlockPartition::new(60, 6);
        assert!(dirty[partition.owner(50)]);
        assert!(dirty[partition.owner(0)]);
        // Radius 2k = 6 from {0, 50}: vertex 30 is 24+ hops from both in
        // the union graph, so its shard stays clean.
        assert!(!dirty[partition.owner(30)]);
        assert!(matches!(
            dirty_shards(&old, &new, &[(0, 50)], 3, 0),
            Err(SgcError::ZeroShards)
        ));
    }

    #[test]
    fn partials_report_shape_and_size() {
        let graph = grid_graph(4);
        let prep = GraphPrep::new(&graph);
        let query = catalog::path(3);
        let tree = heuristic_plan(&query).unwrap();
        let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), 5);
        let pool = ArenaPool::new();
        let outcome = count_sharded_retaining(
            &graph,
            &prep,
            &coloring,
            &tree,
            Algorithm::DegreeBased,
            2,
            KernelKind::Scalar,
            &pool,
        )
        .unwrap();
        assert_eq!(outcome.partials.num_shards(), 2);
        assert_eq!(outcome.partials.num_steps(), tree.blocks.len());
        assert!(outcome.partials.approx_bytes() > 0);
        assert_eq!(outcome.shards_replayed, 0);
    }
}
