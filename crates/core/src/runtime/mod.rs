//! The sharded rank-runtime: vertex-partitioned execution with partial-sum
//! exchange.
//!
//! The paper's headline system (Sections 5–7) is *distributed*: the data
//! graph is block-partitioned over MPI ranks, each rank runs the colorful
//! counting dynamic program on the paths rooted in its own vertex block, and
//! the per-rank partial-sum (PS) tables are combined in a batched alltoall.
//! This module is that rank model realized on a shared-memory machine:
//!
//! * [`shard`] — the vertex shards (reusing `sgc_graph::BlockPartition`, the
//!   same 1D block distribution the paper uses) and the sharded bottom-up
//!   solver, which runs one worker per shard through the thread pool,
//! * [`exchange`] — the explicit combination step that sums the per-shard
//!   partial projection tables into each block's full table, mirroring the
//!   paper's alltoall of partial sums, and recording per-shard exchange
//!   volume.
//!
//! The partitioning invariant that makes this exact: a path-table entry's
//! `start` vertex is fixed at seeding time and never changes through any
//! join, and the final path merge only pairs entries with equal starts. So
//! restricting each shard to the paths *starting* in its vertex block
//! partitions every block's table — and therefore the final count — into
//! disjoint per-shard parts whose `u64` sums are bit-identical to the serial
//! result, for any shard count. `CountRequest::sharded` is the public entry
//! point; `tests/sharded.rs` and the property suite enforce the
//! sharded ≡ serial contract.

pub mod exchange;
pub mod incremental;
pub mod shard;

pub use incremental::{
    count_sharded_retaining, dirty_shards, recount_sharded_replay, IncrementalOutcome,
    TrialPartials,
};
pub use shard::{ShardPlan, VertexShard};
