//! Vertex shards and the sharded bottom-up solver.
//!
//! A [`ShardPlan`] cuts the data graph's vertex set into `num_shards`
//! contiguous blocks — the same 1D block distribution the paper assigns to
//! MPI ranks (Section 7), reused from [`sgc_graph::BlockPartition`]. The
//! sharded solver walks the decomposition tree bottom-up exactly like the
//! serial driver, but solves every block as `num_shards` independent partial
//! solves (one per shard, fanned out over worker threads), then combines the
//! partial tables in an explicit [`exchange`] round before moving to the
//! next block.
//!
//! [`exchange`]: crate::runtime::exchange

use crate::blocks::solve_block_with_index;
use crate::config::Algorithm;
use crate::context::{Context, GraphPrep};
use crate::driver::CountResult;
use crate::error::SgcError;
use crate::metrics::{RunMetrics, ShardMetrics};
use crate::paths::BlockJoinIndex;
use crate::runtime::exchange;
use sgc_engine::parallel::parallel_indexed;
use sgc_engine::{Count, ProjectionTable};
use sgc_graph::{BlockPartition, Coloring, CsrGraph, VertexId};
use sgc_query::DecompositionTree;
use std::ops::Range;
use std::time::Instant;

/// One shard's contiguous slice of the data graph's vertex set — the analog
/// of one rank's owned vertex block in the paper's 1D decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexShard {
    partition: BlockPartition,
    index: usize,
}

impl VertexShard {
    /// This shard's index within its [`ShardPlan`].
    pub fn index(&self) -> usize {
        self.index
    }

    /// The contiguous vertex range this shard owns (possibly empty when
    /// there are more shards than vertices).
    pub fn range(&self) -> Range<VertexId> {
        self.partition.owned_range(self.index)
    }

    /// Whether this shard owns vertex `v`.
    #[inline]
    pub fn owns(&self, v: VertexId) -> bool {
        self.partition.owner(v) == self.index
    }

    /// Number of vertices this shard owns.
    pub fn num_vertices(&self) -> usize {
        self.partition.owned_count(self.index)
    }
}

/// The shard layout of one sharded run: a 1D block partition of the data
/// graph's vertices into `num_shards` contiguous shards.
///
/// ```
/// use sgc_core::runtime::ShardPlan;
///
/// let plan = ShardPlan::new(10, 4).unwrap();
/// assert_eq!(plan.num_shards(), 4);
/// // Every vertex is owned by exactly one shard.
/// let owned: usize = (0..4).map(|s| plan.shard(s).num_vertices()).sum();
/// assert_eq!(owned, 10);
/// ```
#[derive(Clone, Debug)]
pub struct ShardPlan {
    partition: BlockPartition,
    num_shards: usize,
}

impl ShardPlan {
    /// Partitions `num_vertices` vertices into `num_shards` contiguous
    /// shards.
    ///
    /// # Errors
    /// [`SgcError::ZeroShards`] if `num_shards` is zero.
    pub fn new(num_vertices: usize, num_shards: usize) -> Result<Self, SgcError> {
        if num_shards == 0 {
            return Err(SgcError::ZeroShards);
        }
        Ok(ShardPlan {
            partition: BlockPartition::new(num_vertices, num_shards),
            num_shards,
        })
    }

    /// Number of shards in the plan.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard at `index`.
    ///
    /// # Panics
    /// Panics if `index >= num_shards()`.
    pub fn shard(&self, index: usize) -> VertexShard {
        assert!(index < self.num_shards, "shard index out of range");
        VertexShard {
            partition: self.partition.clone(),
            index,
        }
    }
}

/// Runs one colorful count through the sharded runtime: per-shard partial
/// solves of every block, combined by partial-sum exchange rounds.
///
/// The result's `colorful_matches` is bit-identical to the serial driver's
/// for any `num_shards ≥ 1`; `metrics.shards` carries the per-shard load
/// and exchange-volume accounting.
pub(crate) fn count_sharded(
    graph: &CsrGraph,
    prep: &GraphPrep,
    coloring: &Coloring,
    tree: &DecompositionTree,
    algorithm: Algorithm,
    num_ranks: usize,
    num_shards: usize,
) -> Result<CountResult, SgcError> {
    let plan = ShardPlan::new(graph.num_vertices(), num_shards)?;
    Context::validate(graph, coloring, num_ranks)?;
    let started = Instant::now();
    let mut metrics = RunMetrics::new(num_ranks);
    let mut shard_metrics = ShardMetrics::new(num_shards);

    let colorful_matches = match tree.root {
        // Single-node query: every vertex is a colorful match. Each shard
        // reports its owned-vertex count as a scalar partial sum; one
        // exchange round combines them.
        None => {
            let partials: Vec<ProjectionTable> = (0..num_shards)
                .map(|s| ProjectionTable::Scalar(plan.shard(s).num_vertices() as Count))
                .collect();
            exchange::combine(partials, &mut shard_metrics).total()
        }
        Some(root) => {
            let mut tables: Vec<Option<ProjectionTable>> = vec![None; tree.blocks.len()];
            for block in &tree.blocks {
                // The join-side child-table index is shard-invariant; build
                // it once here so the workers share it (lazily grouping
                // each needed orientation exactly once) instead of each
                // regrouping the full child tables. Scoped so its borrow of
                // `tables` ends before the exchanged table is stored.
                let partials = {
                    let index = BlockJoinIndex::build(block, &tables);
                    // Fan the block out: shard `s` solves it restricted to
                    // the paths starting in its vertex range, against the
                    // full (already exchanged) child tables.
                    parallel_indexed(num_shards, |s| {
                        let ctx =
                            Context::for_shard(graph, prep, coloring, num_ranks, plan.shard(s));
                        let mut shard_run = RunMetrics::new(num_ranks);
                        let table = solve_block_with_index(
                            &ctx,
                            tree,
                            block,
                            &index,
                            algorithm,
                            &mut shard_run,
                        );
                        (table, shard_run)
                    })
                };
                let mut partial_tables = Vec::with_capacity(num_shards);
                for (s, (table, shard_run)) in partials.into_iter().enumerate() {
                    shard_metrics.ops_per_shard[s] += shard_run.total_ops;
                    metrics.absorb_shard(&shard_run);
                    partial_tables.push(table);
                }
                let table = exchange::combine(partial_tables, &mut shard_metrics);
                metrics.observe_table(table.len());
                tables[block.id] = Some(table);
            }
            tables[root]
                .as_ref()
                .expect("root table was just computed")
                .total()
        }
    };
    metrics.shards = Some(shard_metrics);
    metrics.elapsed = started.elapsed();
    Ok(CountResult {
        colorful_matches,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_partitions_every_vertex_once() {
        let plan = ShardPlan::new(103, 8).unwrap();
        let mut owners = vec![0usize; 103];
        for s in 0..plan.num_shards() {
            let shard = plan.shard(s);
            assert_eq!(shard.index(), s);
            for v in shard.range() {
                owners[v as usize] += 1;
                assert!(shard.owns(v));
            }
            assert_eq!(shard.range().len(), shard.num_vertices());
        }
        assert!(owners.iter().all(|&n| n == 1));
    }

    #[test]
    fn more_shards_than_vertices_leaves_trailing_shards_empty() {
        let plan = ShardPlan::new(3, 8).unwrap();
        let total: usize = (0..8).map(|s| plan.shard(s).num_vertices()).sum();
        assert_eq!(total, 3);
        assert_eq!(plan.shard(7).num_vertices(), 0);
        assert!(plan.shard(7).range().is_empty());
    }

    #[test]
    fn zero_shards_is_an_error() {
        assert!(matches!(ShardPlan::new(10, 0), Err(SgcError::ZeroShards)));
    }

    #[test]
    #[should_panic]
    fn out_of_range_shard_index_panics() {
        let plan = ShardPlan::new(10, 2).unwrap();
        let _ = plan.shard(2);
    }
}
