//! Vertex shards and the sharded bottom-up solver.
//!
//! A [`ShardPlan`] cuts the data graph's vertex set into `num_shards`
//! contiguous blocks — the same 1D block distribution the paper assigns to
//! MPI ranks (Section 7), reused from [`sgc_graph::BlockPartition`]. The
//! sharded solver walks the decomposition tree bottom-up exactly like the
//! serial driver, but solves every block as `num_shards` independent partial
//! solves (one per shard, fanned out over worker threads), then combines the
//! partial tables in an explicit [`exchange`] round before moving to the
//! next block.
//!
//! [`exchange`]: crate::runtime::exchange

use crate::blocks::solve_block_with_index;
use crate::config::Algorithm;
use crate::context::{Context, GraphPrep};
use crate::driver::CountResult;
use crate::error::SgcError;
use crate::kernel::{solve_block_columnar, ArenaPool, KernelKind};
use crate::metrics::{RunMetrics, ShardMetrics};
use crate::paths::BlockJoinIndex;
use crate::runtime::exchange;
use sgc_engine::parallel::parallel_indexed;
use sgc_engine::{Count, ProjectionTable};
use sgc_graph::{BlockPartition, Coloring, CsrGraph, VertexId};
use sgc_query::DecompositionTree;
use std::ops::Range;
use std::time::Instant;

/// One shard's contiguous slice of the data graph's vertex set — the analog
/// of one rank's owned vertex block in the paper's 1D decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexShard {
    partition: BlockPartition,
    index: usize,
}

impl VertexShard {
    /// This shard's index within its [`ShardPlan`].
    pub fn index(&self) -> usize {
        self.index
    }

    /// The contiguous vertex range this shard owns (possibly empty when
    /// there are more shards than vertices).
    pub fn range(&self) -> Range<VertexId> {
        self.partition.owned_range(self.index)
    }

    /// Whether this shard owns vertex `v`.
    #[inline]
    pub fn owns(&self, v: VertexId) -> bool {
        self.partition.owner(v) == self.index
    }

    /// Number of vertices this shard owns.
    pub fn num_vertices(&self) -> usize {
        self.partition.owned_count(self.index)
    }
}

/// The shard layout of one sharded run: a 1D block partition of the data
/// graph's vertices into `num_shards` contiguous shards.
///
/// ```
/// use sgc_core::runtime::ShardPlan;
///
/// let plan = ShardPlan::new(10, 4).unwrap();
/// assert_eq!(plan.num_shards(), 4);
/// // Every vertex is owned by exactly one shard.
/// let owned: usize = (0..4).map(|s| plan.shard(s).num_vertices()).sum();
/// assert_eq!(owned, 10);
/// ```
#[derive(Clone, Debug)]
pub struct ShardPlan {
    partition: BlockPartition,
    num_shards: usize,
}

impl ShardPlan {
    /// Partitions `num_vertices` vertices into `num_shards` contiguous
    /// shards.
    ///
    /// # Errors
    /// [`SgcError::ZeroShards`] if `num_shards` is zero.
    pub fn new(num_vertices: usize, num_shards: usize) -> Result<Self, SgcError> {
        if num_shards == 0 {
            return Err(SgcError::ZeroShards);
        }
        Ok(ShardPlan {
            partition: BlockPartition::new(num_vertices, num_shards),
            num_shards,
        })
    }

    /// Number of shards in the plan.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard at `index`.
    ///
    /// # Panics
    /// Panics if `index >= num_shards()`.
    pub fn shard(&self, index: usize) -> VertexShard {
        assert!(index < self.num_shards, "shard index out of range");
        VertexShard {
            partition: self.partition.clone(),
            index,
        }
    }
}

/// Runs one colorful count through the sharded runtime: per-shard partial
/// solves of every block, combined by partial-sum exchange rounds.
///
/// The result's `colorful_matches` is bit-identical to the serial driver's
/// for any `num_shards ≥ 1`; `metrics.shards` carries the per-shard load
/// and exchange-volume accounting. Implemented as the one-job case of
/// [`count_many_sharded`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn count_sharded(
    graph: &CsrGraph,
    prep: &GraphPrep,
    coloring: &Coloring,
    tree: &DecompositionTree,
    algorithm: Algorithm,
    num_ranks: usize,
    num_shards: usize,
    kernel: KernelKind,
    pool: &ArenaPool,
    obs: bool,
) -> Result<CountResult, SgcError> {
    let job = ShardedBatchJob {
        coloring,
        plan: tree,
        algorithm,
        num_ranks,
        kernel,
        obs,
    };
    let mut outcome = count_many_sharded(graph, prep, &[job], num_shards, pool)?;
    Ok(outcome.results.pop().expect("one job in, one result out"))
}

/// One member of a batched sharded run: a coloring/plan/algorithm triple to
/// evaluate over the shared shard layout.
pub(crate) struct ShardedBatchJob<'a> {
    /// The member's trial coloring (batch members of one trial step share
    /// colorings by reference, one per distinct color count).
    pub coloring: &'a Coloring,
    /// The member's decomposition plan.
    pub plan: &'a DecompositionTree,
    /// The member's cycle-solving algorithm.
    pub algorithm: Algorithm,
    /// Simulated rank count for load attribution.
    pub num_ranks: usize,
    /// Which join kernel runs the member's per-shard solves.
    pub kernel: KernelKind,
    /// Whether this member's shard workers record observability spans.
    /// Worker threads inherit nothing from the submitting thread, so the
    /// per-request toggle rides along with the job.
    pub obs: bool,
}

/// What [`count_many_sharded`] produced: one [`CountResult`] per job plus
/// the number of *shared* exchange rounds the batch actually synchronized
/// on (block steps), as opposed to the `Σ blocks` rounds the same jobs
/// would pay when run one at a time.
pub(crate) struct ShardedBatchOutcome {
    /// Per-job results, in input order.
    pub results: Vec<CountResult>,
    /// Exchange rounds the whole batch synchronized on — one per block
    /// step, each serving every job active in that step.
    pub shared_rounds: u64,
}

/// Runs many colorful counts through the sharded runtime at once, block
/// step by block step: in step `s`, every job whose plan has a block `s`
/// fans its partial solves out over the shards, and a **single** exchange
/// round ([`exchange::combine_round`]) then combines the partial-sum tables
/// of all of them — the batched alltoall of the paper's Section 7, where
/// concurrent queries share synchronization points instead of each paying
/// their own.
///
/// Each job's count is bit-identical to its solo run (sharded or serial):
/// the jobs never mix tables, they only share the fan-out and the round
/// barrier.
pub(crate) fn count_many_sharded(
    graph: &CsrGraph,
    prep: &GraphPrep,
    jobs: &[ShardedBatchJob<'_>],
    num_shards: usize,
    pool: &ArenaPool,
) -> Result<ShardedBatchOutcome, SgcError> {
    let plan = ShardPlan::new(graph.num_vertices(), num_shards)?;
    for job in jobs {
        Context::validate(graph, job.coloring, job.num_ranks)?;
    }
    let mut metrics: Vec<RunMetrics> = jobs.iter().map(|j| RunMetrics::new(j.num_ranks)).collect();
    // Wall time actually spent for each job: its shard solves plus its
    // share of the exchange rounds it participated in.
    let mut busy: Vec<std::time::Duration> = vec![std::time::Duration::ZERO; jobs.len()];
    let mut shard_metrics: Vec<ShardMetrics> =
        jobs.iter().map(|_| ShardMetrics::new(num_shards)).collect();
    let mut tables: Vec<Vec<Option<ProjectionTable>>> = jobs
        .iter()
        .map(|j| vec![None; j.plan.blocks.len()])
        .collect();
    // Single-node queries (no root block) are resolved by a scalar exchange
    // in step 0; their combined total lands here.
    let mut single_totals: Vec<Option<Count>> = vec![None; jobs.len()];
    let mut shared_rounds = 0u64;

    let max_steps = jobs
        .iter()
        .map(|j| j.plan.blocks.len().max(1))
        .max()
        .unwrap_or(0);
    for step in 0..max_steps {
        // Jobs with work in this block step: block `step` of their plan, or
        // (for single-node queries) the step-0 scalar partial sum.
        let active: Vec<usize> = (0..jobs.len())
            .filter(|&j| {
                if jobs[j].plan.root.is_some() {
                    step < jobs[j].plan.blocks.len()
                } else {
                    step == 0
                }
            })
            .collect();
        if active.is_empty() {
            continue;
        }
        // Fan out all active jobs' blocks over the shards in one sweep. The
        // join-side child-table indexes are shard-invariant, so they are
        // built once per job here and shared by its shard workers; the
        // scope ends their borrow of `tables` before the combined tables
        // are stored.
        let per_job_partials: Vec<Vec<(ProjectionTable, RunMetrics)>> = {
            let indexes: Vec<Option<BlockJoinIndex<'_>>> = active
                .iter()
                .map(|&j| {
                    jobs[j]
                        .plan
                        .root
                        .is_some()
                        .then(|| BlockJoinIndex::build(&jobs[j].plan.blocks[step], &tables[j]))
                })
                .collect();
            let flat = parallel_indexed(active.len() * num_shards, |idx| {
                let (a, s) = (idx / num_shards, idx % num_shards);
                let j = active[a];
                let job = &jobs[j];
                // Worker threads don't inherit the submitter's obs state, so
                // obs-off jobs re-suspend here for the span guards below.
                let _pause = (!job.obs).then(sgc_obs::suspend);
                let mut shard_run = RunMetrics::new(job.num_ranks);
                let solve_started = Instant::now();
                let table = match &indexes[a] {
                    Some(index) => {
                        let ctx = Context::for_shard(
                            graph,
                            prep,
                            job.coloring,
                            job.num_ranks,
                            plan.shard(s),
                        );
                        match job.kernel {
                            KernelKind::Scalar => {
                                let _span = sgc_obs::span(sgc_obs::Stage::DpBlockScalar);
                                solve_block_with_index(
                                    &ctx,
                                    job.plan,
                                    &job.plan.blocks[step],
                                    index,
                                    job.algorithm,
                                    &mut shard_run,
                                )
                            }
                            KernelKind::Columnar => {
                                let _span = sgc_obs::span(sgc_obs::Stage::DpBlockColumnar);
                                let (mut arena, reused) = pool.checkout();
                                let before = arena.capacity_bytes();
                                let table = solve_block_columnar(
                                    &ctx,
                                    job.plan,
                                    &job.plan.blocks[step],
                                    index,
                                    job.algorithm,
                                    &mut arena,
                                    &mut shard_run,
                                );
                                let after = arena.capacity_bytes();
                                shard_run.kernel.record_checkout(
                                    after as u64,
                                    reused,
                                    after.saturating_sub(before) as u64,
                                );
                                pool.give_back(arena);
                                table
                            }
                        }
                    }
                    // Single-node query: the shard's owned-vertex count is
                    // its scalar partial sum.
                    None => ProjectionTable::Scalar(plan.shard(s).num_vertices() as Count),
                };
                shard_run.elapsed = solve_started.elapsed();
                (table, shard_run)
            });
            let mut chunks: Vec<Vec<(ProjectionTable, RunMetrics)>> =
                Vec::with_capacity(active.len());
            let mut it = flat.into_iter();
            for _ in 0..active.len() {
                chunks.push((&mut it).take(num_shards).collect());
            }
            chunks
        };
        // Absorb per-shard execution metrics (including each solve's own
        // elapsed time, so a job's reported duration reflects the work done
        // *for it*, not the whole batch), then combine every active job's
        // partials in ONE shared exchange round.
        let mut round_partials: Vec<Vec<ProjectionTable>> = Vec::with_capacity(active.len());
        for (&j, partials) in active.iter().zip(per_job_partials) {
            let mut job_tables = Vec::with_capacity(num_shards);
            for (s, (table, shard_run)) in partials.into_iter().enumerate() {
                shard_metrics[j].ops_per_shard[s] += shard_run.total_ops;
                metrics[j].absorb_shard(&shard_run);
                busy[j] += shard_run.elapsed;
                job_tables.push(table);
            }
            round_partials.push(job_tables);
        }
        let exchange_started = Instant::now();
        let mut round_metrics: Vec<ShardMetrics> = active
            .iter()
            .map(|&j| std::mem::take(&mut shard_metrics[j]))
            .collect();
        let combined = {
            // The exchange round is shared; record it if any active job has
            // observability on (the caller thread may itself be suspended).
            let _span = active
                .iter()
                .any(|&j| jobs[j].obs)
                .then(|| sgc_obs::span(sgc_obs::Stage::Exchange));
            exchange::combine_round(round_partials, &mut round_metrics)
        };
        shared_rounds += 1;
        // The shared round's cost is split evenly across the jobs it served.
        let exchange_share = exchange_started.elapsed() / active.len() as u32;
        for ((&j, taken), table) in active.iter().zip(round_metrics).zip(combined) {
            shard_metrics[j] = taken;
            busy[j] += exchange_share;
            if jobs[j].plan.root.is_some() {
                // Parity with the serial driver: only real block tables are
                // observed; a single-node query's scalar exchange is not a
                // produced table there either.
                metrics[j].observe_table(table.len());
                let id = jobs[j].plan.blocks[step].id;
                tables[j][id] = Some(table);
            } else {
                single_totals[j] = Some(table.total());
            }
        }
    }

    let results = jobs
        .iter()
        .enumerate()
        .map(|(j, job)| {
            let colorful_matches = match job.plan.root {
                Some(root) => tables[j][root]
                    .as_ref()
                    .expect("root table was computed in its block step")
                    .total(),
                None => single_totals[j].expect("single-node totals resolve in step 0"),
            };
            let mut metrics = std::mem::replace(&mut metrics[j], RunMetrics::new(1));
            metrics.shards = Some(std::mem::take(&mut shard_metrics[j]));
            // Per-job duration: the solves and exchange shares performed
            // for THIS job, so batching other jobs alongside never inflates
            // a member's reported time. (For a one-job batch this is the
            // whole loop minus scheduling gaps — the solo cost as before.)
            metrics.elapsed = busy[j];
            CountResult {
                colorful_matches,
                metrics,
            }
        })
        .collect();
    Ok(ShardedBatchOutcome {
        results,
        shared_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_partitions_every_vertex_once() {
        let plan = ShardPlan::new(103, 8).unwrap();
        let mut owners = vec![0usize; 103];
        for s in 0..plan.num_shards() {
            let shard = plan.shard(s);
            assert_eq!(shard.index(), s);
            for v in shard.range() {
                owners[v as usize] += 1;
                assert!(shard.owns(v));
            }
            assert_eq!(shard.range().len(), shard.num_vertices());
        }
        assert!(owners.iter().all(|&n| n == 1));
    }

    #[test]
    fn more_shards_than_vertices_leaves_trailing_shards_empty() {
        let plan = ShardPlan::new(3, 8).unwrap();
        let total: usize = (0..8).map(|s| plan.shard(s).num_vertices()).sum();
        assert_eq!(total, 3);
        assert_eq!(plan.shard(7).num_vertices(), 0);
        assert!(plan.shard(7).range().is_empty());
    }

    #[test]
    fn zero_shards_is_an_error() {
        assert!(matches!(ShardPlan::new(10, 0), Err(SgcError::ZeroShards)));
    }

    #[test]
    #[should_panic]
    fn out_of_range_shard_index_panics() {
        let plan = ShardPlan::new(10, 2).unwrap();
        let _ = plan.shard(2);
    }
}
