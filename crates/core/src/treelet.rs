//! The tree-query (treelet) dynamic program.
//!
//! Trees have treewidth one, and the paper's predecessors (Alon et al.'s
//! biological-network study and Slota & Madduri's FASCIA) implement color
//! coding for tree queries with a linear-time bottom-up dynamic program: for
//! every query node `q` (processed leaves-first) and every data vertex `v`,
//! store the number of colorful matches of the subtree rooted at `q` that map
//! `q` to `v`, keyed by the set of colors used.
//!
//! The general treewidth-2 machinery in this crate also handles trees (the
//! decomposition consists solely of leaf-edge blocks), so this module exists
//! as an *independent* implementation used to cross-validate the general path
//! on tree queries, and as the natural baseline when only treelets are needed.

use sgc_engine::hash::FastMap;
use sgc_engine::{Count, Signature};
use sgc_graph::{Coloring, CsrGraph, VertexId};
use sgc_query::treewidth::is_tree;
use sgc_query::{QueryGraph, QueryNode};

/// Counts the colorful matches of a tree query with the classic color-coding
/// dynamic program.
///
/// # Panics
/// Panics if the query is not a tree or the coloring does not use exactly
/// `k = query.num_nodes()` colors.
pub fn count_colorful_treelet(graph: &CsrGraph, coloring: &Coloring, query: &QueryGraph) -> Count {
    assert!(is_tree(query), "treelet counting requires a tree query");
    assert_eq!(coloring.num_colors(), query.num_nodes());
    assert_eq!(coloring.num_vertices(), graph.num_vertices());
    let k = query.num_nodes();
    if k == 1 {
        return graph.num_vertices() as Count;
    }

    // Root the query at node 0 and compute a post-order over the tree.
    let root: QueryNode = 0;
    let mut parent: Vec<Option<QueryNode>> = vec![None; k];
    let mut order: Vec<QueryNode> = Vec::with_capacity(k);
    let mut stack = vec![root];
    let mut seen = vec![false; k];
    seen[root as usize] = true;
    while let Some(a) = stack.pop() {
        order.push(a);
        for b in query.neighbors(a) {
            if !seen[b as usize] {
                seen[b as usize] = true;
                parent[b as usize] = Some(a);
                stack.push(b);
            }
        }
    }
    debug_assert_eq!(order.len(), k, "tree queries are connected");

    // tables[q][v] : list of (signature, count) for the subtree rooted at q
    // with q mapped to v.
    let mut tables: Vec<FastMap<VertexId, Vec<(Signature, Count)>>> = vec![FastMap::default(); k];

    // Process in reverse DFS discovery order → children before parents.
    for &q in order.iter().rev() {
        let children: Vec<QueryNode> = query
            .neighbors(q)
            .filter(|&c| parent[c as usize] == Some(q))
            .collect();
        let mut table: FastMap<VertexId, Vec<(Signature, Count)>> = FastMap::default();
        for v in graph.vertices() {
            let base_sig = Signature::singleton(coloring.color(v));
            // Start with the single mapping q -> v.
            let mut acc: Vec<(Signature, Count)> = vec![(base_sig, 1)];
            for &c in &children {
                let child_table = &tables[c as usize];
                let mut next: FastMap<Signature, Count> = FastMap::default();
                for &(sig, count) in &acc {
                    for &w in graph.neighbors(v) {
                        let Some(entries) = child_table.get(&w) else {
                            continue;
                        };
                        for &(child_sig, child_count) in entries {
                            if !sig.is_disjoint(child_sig) {
                                continue;
                            }
                            *next.entry(sig.union(child_sig)).or_insert(0) += count * child_count;
                        }
                    }
                }
                acc = next.into_iter().collect();
                if acc.is_empty() {
                    break;
                }
            }
            if !acc.is_empty() {
                table.insert(v, acc);
            }
        }
        tables[q as usize] = table;
    }

    tables[root as usize]
        .values()
        .flatten()
        .map(|&(sig, count)| {
            debug_assert_eq!(sig.len() as usize, k);
            count
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::count_colorful_matches;
    use sgc_graph::GraphBuilder;
    use sgc_query::catalog;

    fn sample_graph() -> CsrGraph {
        let mut b = GraphBuilder::new(9);
        b.extend_edges([
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (0, 4),
            (4, 5),
            (5, 6),
            (6, 2),
            (7, 1),
            (7, 5),
            (8, 0),
            (8, 6),
        ]);
        b.build()
    }

    #[test]
    fn matches_brute_force_on_paths_and_stars() {
        let g = sample_graph();
        for query in [catalog::path(3), catalog::path(4), catalog::star(3)] {
            for seed in 0..4 {
                let coloring = Coloring::random(g.num_vertices(), query.num_nodes(), seed);
                let dp = count_colorful_treelet(&g, &coloring, &query);
                let brute = count_colorful_matches(&g, &query, &coloring);
                assert_eq!(
                    dp,
                    brute,
                    "query with {} nodes, seed {seed}",
                    query.num_nodes()
                );
            }
        }
    }

    #[test]
    fn matches_general_pipeline_on_tree_queries() {
        let g = sample_graph();
        let query = catalog::binary_tree(3);
        let coloring = Coloring::random(g.num_vertices(), query.num_nodes(), 42);
        let dp = count_colorful_treelet(&g, &coloring, &query);
        let general = crate::engine::Engine::new(&g)
            .count(&query)
            .coloring(&coloring)
            .run()
            .unwrap();
        assert_eq!(dp, general.colorful_matches);
    }

    #[test]
    fn single_node_tree() {
        let g = sample_graph();
        let coloring = Coloring::from_colors(vec![0; 9], 1);
        assert_eq!(
            count_colorful_treelet(&g, &coloring, &QueryGraph::new(1)),
            9
        );
    }

    #[test]
    #[should_panic]
    fn rejects_cyclic_queries() {
        let g = sample_graph();
        let coloring = Coloring::random(9, 3, 0);
        let _ = count_colorful_treelet(&g, &coloring, &catalog::triangle());
    }
}
