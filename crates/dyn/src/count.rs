//! The delta-aware trial runner: replay what the delta cannot have
//! changed, recompute only what it might have.

use crate::store::{PartialKey, PartialStore};
use crate::version::{DynError, VersionId, VersionedGraph};
use sgc_core::kernel::ArenaPool;
use sgc_core::{
    count_sharded_retaining, dirty_shards, estimator::summarize_trials, recount_sharded_replay,
    Algorithm, Estimate, KernelKind, SgcError,
};
use sgc_engine::Count;
use sgc_graph::Coloring;
use sgc_query::{canonical_key, heuristic_plan, DecompositionTree, QueryGraph};
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

/// Everything that shapes one versioned counting run (shared by all its
/// trials).
pub struct TrialSpec<'a> {
    /// The query pattern.
    pub query: &'a QueryGraph,
    /// Its decomposition plan. Per-trial counts are plan-independent
    /// (exact given a coloring), so any valid plan preserves the
    /// bit-identity contract.
    pub tree: &'a DecompositionTree,
    /// The cycle-solving algorithm.
    pub algorithm: Algorithm,
    /// Base seed; trial `t` colors with `seed + t`, the same convention as
    /// [`Engine`](sgc_core::Engine) — which is what makes versioned counts
    /// bit-identical to engine counts on the materialized graph.
    pub seed: u64,
    /// Shard count for the sharded runtime (and the replay granularity).
    pub num_shards: usize,
    /// Which join kernel runs the per-shard solves.
    pub kernel: KernelKind,
}

/// What [`run_trials`] did, and how much of it was replayed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrialBatchOutcome {
    /// Exact per-trial colorful counts, in trial order — bit-identical to
    /// a from-scratch run on the version's materialized graph.
    pub per_trial: Vec<Count>,
    /// Trials answered entirely from this version's stored partials.
    pub trials_from_store: usize,
    /// Trials recounted incrementally from the parent version's partials.
    pub trials_incremental: usize,
    /// Trials computed from scratch.
    pub trials_scratch: usize,
    /// Shard solves (one per block step per shard) replayed from cached
    /// partials across all trials.
    pub shards_replayed: usize,
    /// Shard solves actually computed across all trials.
    pub shards_computed: usize,
}

/// Runs trials `trials` of `spec` against `version`, replaying stored
/// partial sums where the version chain proves them unchanged.
///
/// Per trial, in order of preference:
///
/// 1. **Store hit on this version** — every shard's partials are already
///    retained: replay them all (pure exchange, no DP).
/// 2. **Store hit on the parent version** — recompute only the shards in
///    the delta's invalidation ball ([`dirty_shards`]), replay the rest.
/// 3. **From scratch** — full sharded solve, retaining partials.
///
/// All three paths retain the trial's partials under this version, so a
/// subsequent delta recounts incrementally no matter how this one was
/// answered. The returned counts are bit-identical across the three paths;
/// `tests/dynamic.rs` pins that differentially.
pub fn run_trials(
    versions: &VersionedGraph,
    store: &PartialStore,
    version: VersionId,
    spec: &TrialSpec<'_>,
    trials: Range<usize>,
    pool: &ArenaPool,
) -> Result<TrialBatchOutcome, DynError> {
    let data = versions.data_at(version)?;
    let query_key = canonical_key(spec.query);
    let key_for = |v: VersionId, trial: usize| PartialKey {
        version: v,
        query: query_key.clone(),
        algorithm: spec.algorithm,
        seed: spec.seed,
        num_shards: spec.num_shards,
        trial,
    };
    let parent = versions.parent(version);
    // The invalidation ball depends only on the delta and the two graphs,
    // not the trial — computed at most once per call.
    let mut dirty: Option<Vec<bool>> = None;
    let all_clean = vec![false; spec.num_shards];

    let mut outcome = TrialBatchOutcome::default();
    for trial in trials {
        let coloring = Coloring::random(
            data.graph.num_vertices(),
            spec.query.num_nodes(),
            spec.seed.wrapping_add(trial as u64),
        );
        let cached_here = store.get(&key_for(version, trial));
        let cached_parent = match (&cached_here, parent) {
            (None, Some(p)) => store.get(&key_for(p, trial)),
            _ => None,
        };
        let run = if let Some(cached) = &cached_here {
            outcome.trials_from_store += 1;
            recount_sharded_replay(
                &data.graph,
                &data.prep,
                &coloring,
                spec.tree,
                spec.algorithm,
                spec.num_shards,
                spec.kernel,
                pool,
                &all_clean,
                cached,
            )?
        } else if let Some(cached) = &cached_parent {
            if dirty.is_none() {
                let parent = parent.expect("parent hit implies a parent");
                let delta = versions
                    .delta(version)
                    .expect("non-root versions record their delta");
                let changed: Vec<_> = delta.changed_edges().collect();
                let old = versions.data_at(parent)?;
                dirty = Some(dirty_shards(
                    &old.graph,
                    &data.graph,
                    &changed,
                    spec.query.num_nodes(),
                    spec.num_shards,
                )?);
            }
            let dirty = dirty.as_deref().expect("just computed");
            outcome.trials_incremental += 1;
            recount_sharded_replay(
                &data.graph,
                &data.prep,
                &coloring,
                spec.tree,
                spec.algorithm,
                spec.num_shards,
                spec.kernel,
                pool,
                dirty,
                cached,
            )?
        } else {
            outcome.trials_scratch += 1;
            count_sharded_retaining(
                &data.graph,
                &data.prep,
                &coloring,
                spec.tree,
                spec.algorithm,
                spec.num_shards,
                spec.kernel,
                pool,
            )?
        };
        let solves = spec.tree.blocks.len().max(1) * spec.num_shards;
        outcome.shards_replayed += run.shards_replayed;
        outcome.shards_computed += solves - run.shards_replayed;
        outcome.per_trial.push(run.colorful_matches);
        store.insert(key_for(version, trial), Arc::new(run.partials));
    }
    Ok(outcome)
}

/// Convenience: plan `query`, run trials `0..trials` at `version`, and
/// fold them into an [`Estimate`] exactly as the engine would
/// ([`summarize_trials`] over the same per-trial counts).
#[allow(clippy::too_many_arguments)]
pub fn estimate_at(
    versions: &VersionedGraph,
    store: &PartialStore,
    version: VersionId,
    query: &QueryGraph,
    algorithm: Algorithm,
    seed: u64,
    trials: usize,
    num_shards: usize,
) -> Result<(Estimate, TrialBatchOutcome), DynError> {
    if trials == 0 {
        return Err(DynError::Count(SgcError::ZeroTrials));
    }
    let tree = heuristic_plan(query).map_err(|e| DynError::Count(SgcError::Query(e)))?;
    let spec = TrialSpec {
        query,
        tree: &tree,
        algorithm,
        seed,
        num_shards,
        kernel: KernelKind::default(),
    };
    let started = Instant::now();
    let outcome = run_trials(
        versions,
        store,
        version,
        &spec,
        0..trials,
        &ArenaPool::new(),
    )?;
    let estimate = summarize_trials(
        outcome.per_trial.clone(),
        query,
        started.elapsed().as_secs_f64(),
    );
    Ok((estimate, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_core::Engine;
    use sgc_graph::{EdgeDelta, GraphBuilder};
    use sgc_query::catalog;

    fn grid(side: usize) -> sgc_graph::CsrGraph {
        let mut b = GraphBuilder::new(side * side);
        let id = |r: usize, c: usize| (r * side + c) as u32;
        for r in 0..side {
            for c in 0..side {
                if c + 1 < side {
                    b.add_edge(id(r, c), id(r, c + 1));
                }
                if r + 1 < side {
                    b.add_edge(id(r, c), id(r + 1, c));
                }
            }
        }
        b.build()
    }

    #[test]
    fn versioned_counts_match_the_engine_on_the_materialized_graph() {
        let mut versions = VersionedGraph::new(&grid(10));
        let store = PartialStore::default();
        let query = catalog::path(4);
        let delta = EdgeDelta::new(vec![(0, 3)], vec![(0, 1)]).unwrap();
        let v1 = versions.apply_to_head(&delta).unwrap();

        let (estimate, outcome) = estimate_at(
            &versions,
            &store,
            v1,
            &query,
            Algorithm::DegreeBased,
            42,
            6,
            4,
        )
        .unwrap();
        // First sight of this chain: everything is scratch.
        assert_eq!(outcome.trials_scratch, 6);

        // The hard contract: bit-identical to the engine on a fresh build
        // of the same edge list.
        let data = versions.data_at(v1).unwrap();
        let reference = Engine::new(&data.graph)
            .count(&query)
            .seed(42)
            .trials(6)
            .estimate()
            .unwrap();
        assert_eq!(estimate.per_trial, reference.per_trial);
        assert_eq!(estimate.estimated_subgraphs, reference.estimated_subgraphs);

        // Asking again answers every trial from the store.
        let (again, outcome2) = estimate_at(
            &versions,
            &store,
            v1,
            &query,
            Algorithm::DegreeBased,
            42,
            6,
            4,
        )
        .unwrap();
        assert_eq!(outcome2.trials_from_store, 6);
        assert_eq!(outcome2.shards_computed, 0);
        assert_eq!(again.per_trial, estimate.per_trial);
    }

    #[test]
    fn incremental_recount_replays_clean_shards_bit_identically() {
        let base = grid(16);
        let mut versions = VersionedGraph::new(&base);
        let store = PartialStore::default();
        let query = catalog::triangle();
        let tree = heuristic_plan(&query).unwrap();
        let spec = TrialSpec {
            query: &query,
            tree: &tree,
            algorithm: Algorithm::DegreeBased,
            seed: 7,
            num_shards: 8,
            kernel: KernelKind::Columnar,
        };
        let pool = ArenaPool::new();
        let root = versions.root();
        run_trials(&versions, &store, root, &spec, 0..4, &pool).unwrap();

        // A corner-local delta: close the top-left unit square's diagonal.
        let delta = EdgeDelta::new(vec![(0, 17)], vec![]).unwrap();
        let v1 = versions.apply_to_head(&delta).unwrap();
        let incremental = run_trials(&versions, &store, v1, &spec, 0..4, &pool).unwrap();
        assert_eq!(incremental.trials_incremental, 4);
        assert!(
            incremental.shards_replayed > 0,
            "a corner delta on a 256-vertex grid must leave clean shards"
        );

        // Scratch reference on an empty store.
        let fresh = PartialStore::default();
        let scratch = run_trials(&versions, &fresh, v1, &spec, 0..4, &pool).unwrap();
        assert_eq!(scratch.trials_scratch, 4);
        assert_eq!(incremental.per_trial, scratch.per_trial);
    }
}
