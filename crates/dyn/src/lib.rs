//! # sgc-dyn — versioned graphs and delta-aware incremental recount
//!
//! The rest of the workspace treats the data graph as immutable: build a
//! [`CsrGraph`](sgc_graph::CsrGraph), count against it forever. This crate
//! makes the graph *mutable without giving that up*: every edge
//! insert/delete batch ([`EdgeDelta`](sgc_graph::EdgeDelta)) produces a new
//! immutable copy-on-write snapshot, identified by a [`VersionId`], and
//! counting always targets a specific version. Three pieces:
//!
//! * [`VersionedGraph`] — the version chain. Applying a delta to a parent
//!   version yields a child whose id is `parent ⊕ delta.digest()`, shares
//!   every untouched CSR segment with its parent, and can be materialized
//!   (memoized) into a plain `CsrGraph` + [`GraphPrep`](sgc_core::context::GraphPrep)
//!   for the solvers.
//! * [`PartialStore`] — a bounded LRU store of per-trial, per-shard partial
//!   sums ([`TrialPartials`](sgc_core::TrialPartials)) keyed by
//!   `(version, query, algorithm, seed, shards, trial)`.
//! * [`run_trials`] / [`estimate_at`] — the delta-aware trial runner: a
//!   trial whose parent-version partials are in the store recomputes only
//!   the shards within the delta's invalidation ball
//!   ([`dirty_shards`](sgc_core::dirty_shards)) and **replays** the rest —
//!   with the hard contract that the per-trial counts are bit-identical to
//!   a from-scratch run on the new snapshot (per-trial colorful counts are
//!   exact given a coloring, and colorings depend only on
//!   `(num_vertices, colors, seed + trial)`, which edge deltas never
//!   change).
//!
//! `sgc-service` builds its `apply_delta` / `count_at` / `watch` jobs on
//! top of this crate; `sgc-net` exposes them as protocol-v3 verbs.

pub mod count;
pub mod store;
pub mod version;

pub use count::{estimate_at, run_trials, TrialBatchOutcome, TrialSpec};
pub use store::{PartialKey, PartialStore, StoreStats, DEFAULT_STORE_CAPACITY_BYTES};
pub use version::{DynError, VersionData, VersionId, VersionedGraph};
