//! The bounded partial-sum store.

use crate::version::VersionId;
use sgc_core::{Algorithm, TrialPartials};
use sgc_query::CanonicalQueryKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default capacity of a [`PartialStore`]: 64 MiB of retained partials.
pub const DEFAULT_STORE_CAPACITY_BYTES: usize = 64 << 20;

/// Identifies one trial's retained partials. Everything that shapes the
/// partial tables is in the key: the graph version, the canonical query
/// (two isomorphic patterns share an entry), the algorithm, the trial
/// seed base, the shard layout, and the trial index.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PartialKey {
    /// The graph version the partials were computed on.
    pub version: VersionId,
    /// Canonical form of the query pattern.
    pub query: CanonicalQueryKey,
    /// The cycle-solving algorithm (PS and DB tables differ in shape).
    pub algorithm: Algorithm,
    /// The run's base seed (trial `t` colors with `seed + t`).
    pub seed: u64,
    /// Shard count the partials were produced with.
    pub num_shards: usize,
    /// Trial index within the run.
    pub trial: usize,
}

/// A point-in-time snapshot of a store's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries currently held.
    pub entries: usize,
    /// Approximate retained bytes.
    pub bytes: usize,
    /// Lookups that found their entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to stay under capacity.
    pub evictions: u64,
}

struct StoreInner {
    map: HashMap<PartialKey, (u64, Arc<TrialPartials>)>,
    bytes: usize,
    tick: u64,
}

/// A bounded, thread-safe LRU store of per-trial partial sums.
///
/// Capacity is accounted in approximate bytes
/// ([`TrialPartials::approx_bytes`]); inserting past capacity evicts
/// least-recently-used entries (get and insert both refresh recency). An
/// entry larger than the whole capacity is simply not retained — the
/// incremental path then falls back to from-scratch counting, it never
/// fails.
pub struct PartialStore {
    inner: Mutex<StoreInner>,
    capacity_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PartialStore {
    /// A store holding at most `capacity_bytes` of partials.
    pub fn new(capacity_bytes: usize) -> Self {
        PartialStore {
            inner: Mutex::new(StoreInner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Fetches the partials under `key`, refreshing their recency.
    pub fn get(&self, key: &PartialKey) -> Option<Arc<TrialPartials>> {
        let mut inner = self.inner.lock().expect("partial store poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((last_used, partials)) => {
                *last_used = tick;
                let hit = Arc::clone(partials);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(hit)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `partials` under `key`, evicting LRU entries as needed.
    /// Replacing an existing entry first releases its accounted bytes.
    pub fn insert(&self, key: PartialKey, partials: Arc<TrialPartials>) {
        let size = partials.approx_bytes();
        if size > self.capacity_bytes {
            return;
        }
        let mut evicted = 0u64;
        {
            let mut inner = self.inner.lock().expect("partial store poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((_, old)) = inner.map.remove(&key) {
                inner.bytes -= old.approx_bytes();
            }
            while inner.bytes + size > self.capacity_bytes {
                let oldest = inner
                    .map
                    .iter()
                    .min_by_key(|(_, (last_used, _))| *last_used)
                    .map(|(k, _)| k.clone())
                    .expect("over capacity implies a resident entry");
                let (_, gone) = inner.map.remove(&oldest).expect("key just observed");
                inner.bytes -= gone.approx_bytes();
                evicted += 1;
            }
            inner.bytes += size;
            inner.map.insert(key, (tick, partials));
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("partial store poisoned");
        StoreStats {
            entries: inner.map.len(),
            bytes: inner.bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl Default for PartialStore {
    fn default() -> Self {
        PartialStore::new(DEFAULT_STORE_CAPACITY_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_core::context::GraphPrep;
    use sgc_core::kernel::ArenaPool;
    use sgc_core::{count_sharded_retaining, KernelKind};
    use sgc_graph::{Coloring, GraphBuilder};
    use sgc_query::{canonical_key, catalog, heuristic_plan};

    fn sample_partials(seed: u64) -> Arc<TrialPartials> {
        let mut b = GraphBuilder::new(12);
        for v in 0..11u32 {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        let prep = GraphPrep::new(&g);
        let query = catalog::path(3);
        let tree = heuristic_plan(&query).unwrap();
        let coloring = Coloring::random(12, 3, seed);
        let outcome = count_sharded_retaining(
            &g,
            &prep,
            &coloring,
            &tree,
            Algorithm::DegreeBased,
            2,
            KernelKind::Scalar,
            &ArenaPool::new(),
        )
        .unwrap();
        Arc::new(outcome.partials)
    }

    fn key(trial: usize) -> PartialKey {
        PartialKey {
            version: VersionId::from_u64(1),
            query: canonical_key(&catalog::path(3)),
            algorithm: Algorithm::DegreeBased,
            seed: 0,
            num_shards: 2,
            trial,
        }
    }

    #[test]
    fn lru_evicts_oldest_and_counts() {
        let one = sample_partials(0);
        let size = one.approx_bytes();
        // Room for exactly two entries.
        let store = PartialStore::new(2 * size);
        store.insert(key(0), Arc::clone(&one));
        store.insert(key(1), sample_partials(1));
        assert_eq!(store.stats().entries, 2);
        // Touch 0 so 1 becomes the LRU victim.
        assert!(store.get(&key(0)).is_some());
        store.insert(key(2), sample_partials(2));
        assert_eq!(store.evictions(), 1);
        assert!(store.get(&key(1)).is_none());
        assert!(store.get(&key(0)).is_some());
        assert!(store.get(&key(2)).is_some());
        let stats = store.stats();
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= store.capacity_bytes());
        assert_eq!(stats.misses, 1);

        // An entry bigger than the whole store is skipped, not stored.
        let tiny = PartialStore::new(size / 2);
        tiny.insert(key(3), one);
        assert_eq!(tiny.stats().entries, 0);
        assert_eq!(tiny.evictions(), 0);
    }

    #[test]
    fn replacing_an_entry_releases_its_bytes() {
        let p = sample_partials(0);
        let size = p.approx_bytes();
        let store = PartialStore::new(3 * size);
        store.insert(key(0), Arc::clone(&p));
        store.insert(key(0), Arc::clone(&p));
        store.insert(key(0), p);
        let stats = store.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, size);
        assert_eq!(stats.evictions, 0);
    }
}
