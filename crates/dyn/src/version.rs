//! The version chain: snapshot lineage with fingerprint-⊕-digest ids.

use sgc_core::context::GraphPrep;
use sgc_graph::{CsrGraph, DeltaError, EdgeDelta, SegmentedSnapshot};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Identifies one graph version in a [`VersionedGraph`].
///
/// The root version's id is the base graph's
/// [`fingerprint`](CsrGraph::fingerprint); a child's id is
/// `parent ⊕ delta.digest()`. XOR-chaining has two properties the system
/// leans on:
///
/// * **Deterministic**: the same base graph plus the same delta sequence
///   yields the same id on every node and every run, so version ids are
///   meaningful across the wire (protocol v3 sends them verbatim).
/// * **Path-dependent in exactly the right way**: the id commits to the
///   *multiset* of applied delta digests — two clients that converge on
///   the same edit sequence converge on the same id. (XOR also means a
///   delta that exactly undoes another lands on a pre-existing id; deltas
///   are therefore always validated against their parent before the store
///   trusts an id collision as "version already known".)
///
/// Like the result cache's graph fingerprints, ids are 64-bit hashes:
/// collisions are possible in principle and accepted with the same
/// trade-off.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VersionId(u64);

impl VersionId {
    /// Wraps a raw id (e.g. one received off the wire).
    pub fn from_u64(raw: u64) -> Self {
        VersionId(raw)
    }

    /// The raw 64-bit id (what protocol v3 puts on the wire).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The id a child produced from this version by `delta` will have.
    pub fn child(self, delta: &EdgeDelta) -> VersionId {
        VersionId(self.0 ^ delta.digest())
    }
}

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:016x}", self.0)
    }
}

/// Everything the solvers need about one materialized version: the plain
/// CSR graph and its prepared degree-order views, built once and shared.
pub struct VersionData {
    /// The version's full graph, materialized from its snapshot.
    pub graph: CsrGraph,
    /// The solver-side preprocessing ([`GraphPrep`]) for that graph.
    pub prep: GraphPrep,
}

struct VersionEntry {
    snapshot: SegmentedSnapshot,
    parent: Option<VersionId>,
    delta: Option<EdgeDelta>,
    /// Materialized lazily, at most once, shared by all readers.
    data: OnceLock<Arc<VersionData>>,
}

/// Errors from the versioned store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DynError {
    /// The referenced version is not in the store.
    UnknownVersion(VersionId),
    /// The delta does not apply to the parent snapshot (missing delete,
    /// duplicate insert, vertex out of range, ...).
    Delta(DeltaError),
    /// A counting error from the underlying runtime.
    Count(sgc_core::SgcError),
}

impl fmt::Display for DynError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynError::UnknownVersion(v) => write!(f, "unknown graph version {v}"),
            DynError::Delta(e) => write!(f, "delta rejected: {e}"),
            DynError::Count(e) => write!(f, "count failed: {e}"),
        }
    }
}

impl std::error::Error for DynError {}

impl From<DeltaError> for DynError {
    fn from(e: DeltaError) -> Self {
        DynError::Delta(e)
    }
}

impl From<sgc_core::SgcError> for DynError {
    fn from(e: sgc_core::SgcError) -> Self {
        DynError::Count(e)
    }
}

/// A chain (in general, a tree) of copy-on-write graph versions.
///
/// The store owns one [`SegmentedSnapshot`] per version; siblings and
/// ancestors share every CSR segment a delta did not touch, so holding many
/// versions of a large graph costs far less than many full copies.
/// Materialized `CsrGraph`s (needed by the solvers) are built lazily and
/// memoized per version.
///
/// ```
/// use sgc_dyn::VersionedGraph;
/// use sgc_graph::{EdgeDelta, GraphBuilder};
///
/// let mut b = GraphBuilder::new(4);
/// b.extend_edges([(0, 1), (1, 2), (2, 3)]);
/// let mut versions = VersionedGraph::new(&b.build());
/// let root = versions.root();
///
/// let delta = EdgeDelta::new(vec![(0, 3)], vec![]).unwrap();
/// let v1 = versions.apply_delta(root, &delta).unwrap();
/// assert_eq!(v1, root.child(&delta));
/// assert_eq!(versions.head(), v1);
/// assert!(versions.snapshot(v1).unwrap().has_edge(0, 3));
/// assert!(!versions.snapshot(root).unwrap().has_edge(0, 3));
/// ```
pub struct VersionedGraph {
    root: VersionId,
    head: VersionId,
    versions: HashMap<VersionId, VersionEntry>,
}

impl VersionedGraph {
    /// Starts a version chain at `graph` (the root version's id is the
    /// graph's fingerprint).
    pub fn new(graph: &CsrGraph) -> Self {
        Self::with_snapshot(graph, SegmentedSnapshot::new(graph))
    }

    /// Like [`new`](VersionedGraph::new) with an explicit snapshot segment
    /// size (smaller segments = finer copy-on-write granularity).
    pub fn with_segment_vertices(graph: &CsrGraph, segment_vertices: usize) -> Self {
        Self::with_snapshot(
            graph,
            SegmentedSnapshot::from_graph(graph, segment_vertices),
        )
    }

    fn with_snapshot(graph: &CsrGraph, snapshot: SegmentedSnapshot) -> Self {
        let root = VersionId(graph.fingerprint());
        let mut versions = HashMap::new();
        versions.insert(
            root,
            VersionEntry {
                snapshot,
                parent: None,
                delta: None,
                data: OnceLock::new(),
            },
        );
        VersionedGraph {
            root,
            head: root,
            versions,
        }
    }

    /// The id of the base version.
    pub fn root(&self) -> VersionId {
        self.root
    }

    /// The most recently created version on the main line: advanced by
    /// every [`apply_delta`](VersionedGraph::apply_delta) whose parent *is*
    /// the head (applying to an older version creates a branch and leaves
    /// the head alone).
    pub fn head(&self) -> VersionId {
        self.head
    }

    /// Number of versions in the store.
    pub fn num_versions(&self) -> usize {
        self.versions.len()
    }

    /// Whether `version` exists.
    pub fn contains(&self, version: VersionId) -> bool {
        self.versions.contains_key(&version)
    }

    /// The version's snapshot, if it exists.
    pub fn snapshot(&self, version: VersionId) -> Option<&SegmentedSnapshot> {
        self.versions.get(&version).map(|e| &e.snapshot)
    }

    /// The version's parent id (`None` for the root or unknown versions).
    pub fn parent(&self, version: VersionId) -> Option<VersionId> {
        self.versions.get(&version).and_then(|e| e.parent)
    }

    /// The delta that produced `version` from its parent (`None` for the
    /// root or unknown versions).
    pub fn delta(&self, version: VersionId) -> Option<&EdgeDelta> {
        self.versions.get(&version).and_then(|e| e.delta.as_ref())
    }

    /// The ids from the root to `version`, in application order.
    pub fn chain(&self, version: VersionId) -> Option<Vec<VersionId>> {
        let mut chain = vec![version];
        let mut at = version;
        self.versions.get(&at)?;
        while let Some(parent) = self.parent(at) {
            chain.push(parent);
            at = parent;
        }
        chain.reverse();
        Some(chain)
    }

    /// Applies `delta` to `parent`, storing the child snapshot and
    /// returning its id (`parent ⊕ delta.digest()`). Re-applying a delta
    /// that already produced a child is idempotent. Runs under the
    /// `delta.apply` observability stage.
    ///
    /// # Errors
    /// [`DynError::UnknownVersion`] when `parent` is not in the store;
    /// [`DynError::Delta`] when the delta does not apply to it.
    // The entry API cannot express this insert: building the child
    // snapshot is fallible and borrows the parent's entry from the same
    // map the vacancy check would hold open.
    #[allow(clippy::map_entry)]
    pub fn apply_delta(
        &mut self,
        parent: VersionId,
        delta: &EdgeDelta,
    ) -> Result<VersionId, DynError> {
        let _span = sgc_obs::span(sgc_obs::Stage::DeltaApply);
        let entry = self
            .versions
            .get(&parent)
            .ok_or(DynError::UnknownVersion(parent))?;
        // Validate even when the child id already exists: with XOR
        // chaining, re-applying a delta's digest lands back on the parent's
        // parent, and skipping validation there would accept (say) an
        // insert of an edge the parent already has — silently moving the
        // head to a graph missing that edge.
        entry.snapshot.check(delta)?;
        let child = parent.child(delta);
        if !self.versions.contains_key(&child) {
            let snapshot = entry.snapshot.apply(delta)?;
            self.versions.insert(
                child,
                VersionEntry {
                    snapshot,
                    parent: Some(parent),
                    delta: Some(delta.clone()),
                    data: OnceLock::new(),
                },
            );
        }
        if parent == self.head {
            self.head = child;
        }
        Ok(child)
    }

    /// Applies `delta` to the current head.
    pub fn apply_to_head(&mut self, delta: &EdgeDelta) -> Result<VersionId, DynError> {
        self.apply_delta(self.head, delta)
    }

    /// The materialized graph + solver prep of `version`, built on first
    /// use and shared afterwards.
    ///
    /// # Errors
    /// [`DynError::UnknownVersion`] when `version` is not in the store.
    pub fn data_at(&self, version: VersionId) -> Result<Arc<VersionData>, DynError> {
        let entry = self
            .versions
            .get(&version)
            .ok_or(DynError::UnknownVersion(version))?;
        Ok(Arc::clone(entry.data.get_or_init(|| {
            let graph = entry.snapshot.materialize();
            let prep = GraphPrep::new(&graph);
            Arc::new(VersionData { graph, prep })
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_graph::GraphBuilder;

    fn path_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u32 - 1 {
            b.add_edge(v, v + 1);
        }
        b.build()
    }

    #[test]
    fn ids_chain_by_xor_and_head_advances() {
        let g = path_graph(8);
        let mut versions = VersionedGraph::new(&g);
        let root = versions.root();
        assert_eq!(root.as_u64(), g.fingerprint());
        assert_eq!(versions.head(), root);

        let d1 = EdgeDelta::new(vec![(0, 7)], vec![]).unwrap();
        let d2 = EdgeDelta::new(vec![], vec![(3, 4)]).unwrap();
        let v1 = versions.apply_to_head(&d1).unwrap();
        let v2 = versions.apply_to_head(&d2).unwrap();
        assert_eq!(v1.as_u64(), root.as_u64() ^ d1.digest());
        assert_eq!(v2.as_u64(), v1.as_u64() ^ d2.digest());
        assert_eq!(versions.head(), v2);
        assert_eq!(versions.chain(v2).unwrap(), vec![root, v1, v2]);
        assert_eq!(versions.parent(v2), Some(v1));
        assert_eq!(versions.delta(v2), Some(&d2));
        assert_eq!(versions.num_versions(), 3);
    }

    #[test]
    fn branching_leaves_head_alone_and_reapply_is_idempotent() {
        let g = path_graph(6);
        let mut versions = VersionedGraph::new(&g);
        let root = versions.root();
        let d1 = EdgeDelta::new(vec![(0, 2)], vec![]).unwrap();
        let v1 = versions.apply_to_head(&d1).unwrap();

        // Branch off the root: a new version, but head stays at v1.
        let d2 = EdgeDelta::new(vec![(0, 3)], vec![]).unwrap();
        let b1 = versions.apply_delta(root, &d2).unwrap();
        assert_ne!(b1, v1);
        assert_eq!(versions.head(), v1);

        // Same parent + same delta = same version, nothing new stored.
        let before = versions.num_versions();
        assert_eq!(versions.apply_delta(root, &d1).unwrap(), v1);
        assert_eq!(versions.num_versions(), before);
    }

    #[test]
    fn reapplying_a_delta_at_its_child_is_rejected_not_a_silent_walk_back() {
        // XOR chaining makes d1's digest at v1 land exactly on the root id;
        // the store must still reject it (v1 already has the edge) instead
        // of trusting the id collision and moving the head back to a graph
        // missing it.
        let g = path_graph(6);
        let mut versions = VersionedGraph::new(&g);
        let root = versions.root();
        let d1 = EdgeDelta::new(vec![(0, 2)], vec![]).unwrap();
        let v1 = versions.apply_to_head(&d1).unwrap();
        assert_eq!(v1.child(&d1), root);
        assert!(matches!(
            versions.apply_to_head(&d1),
            Err(DynError::Delta(DeltaError::InsertExisting { edge: (0, 2) }))
        ));
        assert_eq!(versions.head(), v1);

        // The true inverse (deleting what was inserted) is valid; its
        // digest differs from d1's, so it creates a new version whose edge
        // set matches the root rather than aliasing the root's id.
        let undo = EdgeDelta::new(vec![], vec![(0, 2)]).unwrap();
        let v2 = versions.apply_to_head(&undo).unwrap();
        assert_ne!(v2, root);
        assert!(!versions.snapshot(v2).unwrap().has_edge(0, 2));
    }

    #[test]
    fn bad_inputs_are_typed_errors() {
        let g = path_graph(4);
        let mut versions = VersionedGraph::new(&g);
        let ghost = VersionId::from_u64(0xdead_beef);
        let d = EdgeDelta::new(vec![(0, 2)], vec![]).unwrap();
        assert_eq!(
            versions.apply_delta(ghost, &d),
            Err(DynError::UnknownVersion(ghost))
        );
        assert!(versions.data_at(ghost).is_err());
        // Deleting an absent edge is a Delta error, not a panic.
        let bad = EdgeDelta::new(vec![], vec![(0, 3)]).unwrap();
        assert!(matches!(
            versions.apply_to_head(&bad),
            Err(DynError::Delta(DeltaError::DeleteMissing { .. }))
        ));
    }

    #[test]
    fn materialized_version_matches_a_fresh_build() {
        let g = path_graph(10);
        let mut versions = VersionedGraph::new(&g);
        let d = EdgeDelta::new(vec![(0, 9), (2, 7)], vec![(4, 5)]).unwrap();
        let v1 = versions.apply_to_head(&d).unwrap();

        let mut b = GraphBuilder::new(10);
        for v in 0..9u32 {
            if (v, v + 1) != (4, 5) {
                b.add_edge(v, v + 1);
            }
        }
        b.add_edge(0, 9);
        b.add_edge(2, 7);
        let fresh = b.build();

        let data = versions.data_at(v1).unwrap();
        assert_eq!(data.graph.fingerprint(), fresh.fingerprint());
        // Memoized: second call hands back the same allocation.
        let again = versions.data_at(v1).unwrap();
        assert!(Arc::ptr_eq(&data, &again));
    }
}
