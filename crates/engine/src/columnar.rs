//! Columnar accumulation tables.
//!
//! The scalar kernel stores every DP table as a `FastMap<Key, Count>`; the
//! columnar kernel stores the same logical table as one dense row column of
//! packed 32-byte records — a `u128` key word (the four `u32` key fields:
//! start, end and the two tracked boundary extras), the low `u64` color-set
//! lane, and a `u64` count — plus a power-of-two open-addressing slot index
//! mapping key hashes to row ids. The high color-set lane (colors 64..128)
//! lives in a lazily materialized side column that the common `k <= 64`
//! workload never touches. Rows are append-only (counts accumulate in
//! place), so iteration is a linear scan over dense memory and
//! [`reset`](ColumnarTable::reset) retains every allocation for the next
//! trial: the arena-reuse story of `sgc-core::kernel` is built entirely on
//! these two properties.
//!
//! Three layout details keep the hot loops memory-friendly:
//!
//! * every slot word carries a 16-bit *fingerprint* of the row's hash next
//!   to the row id, so a probe rejects non-matching slots without loading
//!   any row data — only a fingerprint match (rare for foreign keys) pays
//!   the full key + signature compare;
//! * slot words are also tagged with a 16-bit *epoch*; `reset` just bumps
//!   the epoch, turning every stale slot invalid at once instead of
//!   memsetting a high-water slot table on every join;
//! * insertion is software-pipelined: [`prepare`](ColumnarTable::prepare)
//!   hashes a row up front, [`prefetch`](ColumnarTable::prefetch) pulls its
//!   slot line, and [`AddPipeline`] keeps a fixed ring of prepared inserts
//!   in flight so the joins overlap each probe's cache misses with useful
//!   work instead of stalling on them one at a time.
//!
//! The same four-field shape serves every table the DP needs:
//!
//! | logical table           | f0      | f1    | f2     | f3     |
//! |-------------------------|---------|-------|--------|--------|
//! | path table (`PathKey`)  | start   | end   | extra0 | extra1 |
//! | unary projection        | vertex  | —     | —      | —      |
//! | binary projection       | u       | v     | —      | —      |
//! | scalar projection       | —       | —     | —      | —      |
//!
//! Unused fields hold [`NO_VERTEX`], so key equality stays a single
//! 128-bit compare.

use crate::signature::Signature;
use crate::table::Count;
use sgc_graph::vertex::{VertexId, NO_VERTEX};

/// Number of `u32` key fields per row.
pub const KEY_FIELDS: usize = 4;

/// A row key: up to four vertex images ([`NO_VERTEX`] for unused fields).
pub type RowKey = [VertexId; KEY_FIELDS];

/// Group sentinel: no entry (used by [`EndpointGroups`] scratch).
const EMPTY: u32 = u32::MAX;

/// Initial slot-table size (power of two).
const MIN_SLOTS: usize = 16;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Packs the four `u32` key fields into one `u128` column word.
#[inline]
const fn pack_key(key: RowKey) -> u128 {
    (key[0] as u128)
        | ((key[1] as u128) << 32)
        | ((key[2] as u128) << 64)
        | ((key[3] as u128) << 96)
}

/// Unpacks a `u128` column word back into the four key fields.
#[inline]
const fn unpack_key(packed: u128) -> RowKey {
    [
        packed as u32,
        (packed >> 32) as u32,
        (packed >> 64) as u32,
        (packed >> 96) as u32,
    ]
}

/// The high key half when both extra fields are unused (`NO_VERTEX` twice).
const NO_EXTRAS: u64 = u64::MAX;

/// FxHash-style mix of a packed row key and its signature words (the same
/// rotate-xor-multiply scheme as [`crate::hash::FxHasher`]). Words that
/// almost every row leaves at their idle value — extras-free key halves and
/// empty high signature lanes — are skipped: the hash stays a pure function
/// of the row's content (full key equality still guards every probe match),
/// and the multiply chain on the probe's critical path halves for the
/// common extras-free, `k <= 64` row.
#[inline]
fn hash_row(packed: u128, sig_lo: u64, sig_hi: u64) -> u64 {
    let mut state = 0u64;
    let mut mix = |word: u64| state = (state.rotate_left(5) ^ word).wrapping_mul(SEED);
    mix(packed as u64);
    let hi = (packed >> 64) as u64;
    if hi != NO_EXTRAS {
        mix(hi);
    }
    mix(sig_lo);
    if sig_hi != 0 {
        mix(sig_hi);
    }
    state
}

/// One dense row record: the packed key, the low signature lane and the
/// count, packed into 32 bytes so a probe's key compare and its count
/// accumulation touch the same cache line.
#[derive(Clone, Copy, Debug)]
struct Row {
    /// The four `u32` key fields, packed (see [`pack_key`]).
    key: u128,
    /// Low signature word (colors 0..64).
    sig_lo: u64,
    /// Accumulated count.
    count: Count,
}

/// A columnar accumulation table: a dense row column plus a hash index.
///
/// `add` sums duplicate keys in place; `rows`/`row` iterate the dense
/// columns in insertion order; `reset` clears the rows while keeping every
/// buffer's capacity (and the slot table's size) for reuse.
///
/// The high signature lane (colors 64..128) lives in a side column that is
/// only consulted when some row actually uses it (`any_hi`): the common
/// `k <= 64` workload never reads it, keeping every probe inside the packed
/// 32-byte row records.
#[derive(Clone, Debug)]
pub struct ColumnarTable {
    /// Dense row records in insertion order.
    rows: Vec<Row>,
    /// High signature words, one per row; left empty (never allocated)
    /// until some row has a nonzero high word (`any_hi`).
    sig_hi: Vec<u64>,
    /// Whether any live row has a nonzero high signature word.
    any_hi: bool,
    /// Open-addressing index: slot → `epoch << 48 | fingerprint << 32 | row`.
    /// Power-of-two sized, linear probing. A slot is live only when its
    /// epoch tag equals [`ColumnarTable::epoch`].
    slots: Vec<u64>,
    /// Current slot epoch; bumped by `reset` to invalidate all slots at once.
    epoch: u16,
}

impl Default for ColumnarTable {
    fn default() -> Self {
        ColumnarTable {
            rows: Vec::new(),
            sig_hi: Vec::new(),
            any_hi: false,
            slots: Vec::new(),
            epoch: 1,
        }
    }
}

impl ColumnarTable {
    /// Creates an empty table (no buffers allocated until the first `add`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct keys (rows).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row `r`'s high signature word (zero unless some row uses colors
    /// 64..128 — the branch on the table-level flag keeps the side column
    /// untouched on narrow workloads).
    #[inline]
    fn hi(&self, r: usize) -> u64 {
        if self.any_hi {
            self.sig_hi[r]
        } else {
            0
        }
    }

    /// The epoch+fingerprint tag of `hash` under the current epoch (row id
    /// bits zero).
    #[inline]
    fn tag(&self, hash: u64) -> u64 {
        ((self.epoch as u64) << 48) | (((hash >> 32) & 0xFFFF) << 32)
    }

    /// Adds `count` to the row for `(key, sig)`, appending a row if absent.
    /// Zero counts are ignored (matching the scalar tables' `add`).
    #[inline]
    pub fn add(&mut self, key: RowKey, sig: Signature, count: Count) {
        self.add_prepared(Self::prepare(key, sig, count));
    }

    /// Packs and hashes an add without touching the table, so the slot line
    /// it will probe can be prefetched (see [`prefetch`](Self::prefetch))
    /// well before the probe itself runs.
    #[inline]
    pub fn prepare(key: RowKey, sig: Signature, count: Count) -> PreparedAdd {
        let packed = pack_key(key);
        let [sig_lo, sig_hi] = sig.words();
        PreparedAdd {
            packed,
            sig_lo,
            sig_hi,
            count,
            hash: hash_row(packed, sig_lo, sig_hi),
        }
    }

    /// Prefetches the slot cache line `p`'s probe will read first. Purely
    /// advisory: growth between the prefetch and the probe just wastes the
    /// hint.
    #[inline]
    pub fn prefetch(&self, p: &PreparedAdd) {
        #[cfg(target_arch = "x86_64")]
        if !self.slots.is_empty() {
            let slot = (p.hash as usize) & (self.slots.len() - 1);
            // SAFETY: `slot` is masked into bounds; prefetch has no effect
            // beyond the cache.
            unsafe {
                std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                    self.slots.as_ptr().add(slot) as *const i8,
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = p;
    }

    /// Advisory second pipeline stage: probes (read-only, bounded) for the
    /// row `p` will land on and prefetches that row record. Runs after
    /// [`prefetch`](Self::prefetch) has had time to pull the slot line in,
    /// and before [`add_prepared`](Self::add_prepared) needs the row line.
    /// Wrong or missed predictions (pipelined adds not yet applied, growth
    /// in between) only waste the hint.
    #[inline]
    pub fn prefetch_candidate_row(&self, p: &PreparedAdd) {
        #[cfg(target_arch = "x86_64")]
        if !self.slots.is_empty() {
            let tag = self.tag(p.hash);
            let mask = self.slots.len() - 1;
            let mut slot = (p.hash as usize) & mask;
            for _ in 0..4 {
                let entry = self.slots[slot];
                if (entry >> 48) as u16 != self.epoch {
                    return;
                }
                if entry >> 32 == tag >> 32 {
                    // SAFETY: slot entries index live rows; prefetch has no
                    // effect beyond the cache.
                    unsafe {
                        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                            self.rows.as_ptr().add(entry as u32 as usize) as *const i8,
                        );
                    }
                    return;
                }
                slot = (slot + 1) & mask;
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = p;
    }

    /// Applies a prepared add — [`add`](Self::add) with the pack and hash
    /// already done.
    #[inline]
    pub fn add_prepared(&mut self, p: PreparedAdd) {
        let PreparedAdd {
            packed,
            sig_lo,
            sig_hi,
            count,
            hash,
        } = p;
        if count == 0 {
            return;
        }
        // Grow at 2/3 load: longer probe chains cost less than blowing the
        // slot table out of L2 (probes walk consecutive slots, so extra
        // displacement rarely crosses a cache line).
        if self.rows.len() * 3 >= self.slots.len() * 2 {
            self.grow();
        }
        let tag = self.tag(hash);
        let mask = self.slots.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = self.slots[slot];
            if (entry >> 48) as u16 != self.epoch {
                // Stale or virgin slot: claim it for a fresh row. The high
                // signature column stays empty (untouched) until some row
                // actually needs it.
                self.slots[slot] = tag | self.rows.len() as u64;
                self.rows.push(Row {
                    key: packed,
                    sig_lo,
                    count,
                });
                if self.any_hi {
                    self.sig_hi.push(sig_hi);
                } else if sig_hi != 0 {
                    self.sig_hi.resize(self.rows.len() - 1, 0);
                    self.sig_hi.push(sig_hi);
                    self.any_hi = true;
                }
                return;
            }
            if entry >> 32 == tag >> 32 {
                let r = entry as u32 as usize;
                let row = &mut self.rows[r];
                if row.key == packed && row.sig_lo == sig_lo {
                    let hi = if self.any_hi { self.sig_hi[r] } else { 0 };
                    if hi == sig_hi {
                        row.count += count;
                        return;
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The count stored for `(key, sig)`, zero if absent.
    pub fn get(&self, key: RowKey, sig: Signature) -> Count {
        if self.slots.is_empty() {
            return 0;
        }
        let packed = pack_key(key);
        let [sig_lo, sig_hi] = sig.words();
        let hash = hash_row(packed, sig_lo, sig_hi);
        let tag = self.tag(hash);
        let mask = self.slots.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = self.slots[slot];
            if (entry >> 48) as u16 != self.epoch {
                return 0;
            }
            if entry >> 32 == tag >> 32 {
                let r = entry as u32 as usize;
                let row = &self.rows[r];
                if row.key == packed && row.sig_lo == sig_lo && self.hi(r) == sig_hi {
                    return row.count;
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Row `r` as `(key, signature, count)`.
    #[inline]
    pub fn row(&self, r: usize) -> (RowKey, Signature, Count) {
        let row = &self.rows[r];
        (
            unpack_key(row.key),
            Signature::from_words([row.sig_lo, self.hi(r)]),
            row.count,
        )
    }

    /// Row `r`'s signature alone — the first thing every merge filter
    /// checks, exposed separately so the filter does not have to
    /// materialize the whole row.
    #[inline]
    pub fn sig(&self, r: usize) -> Signature {
        Signature::from_words([self.rows[r].sig_lo, self.hi(r)])
    }

    /// Row `r`'s count alone (for merge paths that never need the key).
    #[inline]
    pub fn count(&self, r: usize) -> Count {
        self.rows[r].count
    }

    /// Row `r`'s two endpoint key fields (`f0`, `f1`) alone.
    #[inline]
    pub fn endpoints(&self, r: usize) -> (VertexId, VertexId) {
        let lo = self.rows[r].key as u64;
        (lo as u32, (lo >> 32) as u32)
    }

    /// Row `r`'s two extra key fields (`f2`, `f3`) alone.
    #[inline]
    pub fn extras(&self, r: usize) -> [VertexId; 2] {
        let hi = (self.rows[r].key >> 64) as u64;
        [hi as u32, (hi >> 32) as u32]
    }

    /// Iterates over all rows in insertion order.
    pub fn rows(&self) -> impl Iterator<Item = (RowKey, Signature, Count)> + '_ {
        (0..self.len()).map(|r| self.row(r))
    }

    /// Sum of all counts.
    pub fn total(&self) -> Count {
        self.rows.iter().map(|row| row.count).sum()
    }

    /// Clears all rows while retaining every buffer's capacity — the
    /// steady-state trial path allocates nothing. O(1): the slot table is
    /// invalidated by bumping the epoch, not by rewriting it (a real wipe
    /// happens only when the 16-bit epoch wraps).
    pub fn reset(&mut self) {
        self.rows.clear();
        self.sig_hi.clear();
        self.any_hi = false;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.slots.fill(0);
            self.epoch = 1;
        }
    }

    /// Total allocated bytes across all columns and the slot index.
    pub fn capacity_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<Row>()
            + (self.sig_hi.capacity() + self.slots.capacity()) * std::mem::size_of::<u64>()
    }

    /// Doubles the slot table and re-indexes every row.
    #[cold]
    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(MIN_SLOTS);
        self.slots.clear();
        self.slots.resize(new_len, 0);
        self.epoch = 1;
        let mask = new_len - 1;
        for r in 0..self.rows.len() {
            let hash = hash_row(self.rows[r].key, self.rows[r].sig_lo, self.hi(r));
            let tag = self.tag(hash);
            let mut slot = (hash as usize) & mask;
            while (self.slots[slot] >> 48) as u16 == self.epoch {
                slot = (slot + 1) & mask;
            }
            self.slots[slot] = tag | r as u64;
        }
    }
}

/// A packed-and-hashed pending add, produced by
/// [`ColumnarTable::prepare`] and consumed by
/// [`ColumnarTable::add_prepared`].
#[derive(Clone, Copy, Debug)]
pub struct PreparedAdd {
    /// Packed key (see [`pack_key`]).
    packed: u128,
    /// Low signature word.
    sig_lo: u64,
    /// High signature word.
    sig_hi: u64,
    /// Count to accumulate.
    count: Count,
    /// Precomputed row hash.
    hash: u64,
}

/// An idle pipeline entry (count 0, so applying it is a no-op).
const NO_ADD: PreparedAdd = PreparedAdd {
    packed: 0,
    sig_lo: 0,
    sig_hi: 0,
    count: 0,
    hash: 0,
};

/// Pipeline depth: far enough ahead that a prefetched slot line arrives
/// from L2/L3 before its probe runs, small enough to stay L1-resident.
const PIPELINE_DEPTH: usize = 16;

/// A fixed-depth software pipeline over table adds.
///
/// The probe of a hash add is two dependent cache misses (slot word, then
/// row record) that out-of-order execution cannot overlap across the
/// branchy probe loop. The pipeline makes the overlap explicit: each
/// [`push`](AddPipeline::push) hashes the new add and prefetches its slot
/// line, then applies the add that entered the 16-deep ring earlier —
/// by which point that line is resident. Adds drain in FIFO order, so the
/// table (rows, row order, counts) is exactly what the same sequence of
/// plain [`ColumnarTable::add`] calls would build.
#[derive(Debug)]
pub struct AddPipeline {
    /// Ring of pending adds.
    buf: [PreparedAdd; PIPELINE_DEPTH],
    /// Next write position.
    head: usize,
    /// Number of live entries (≤ [`PIPELINE_DEPTH`]).
    len: usize,
}

impl Default for AddPipeline {
    fn default() -> Self {
        AddPipeline {
            buf: [NO_ADD; PIPELINE_DEPTH],
            head: 0,
            len: 0,
        }
    }
}

impl AddPipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues `(key, sig, count)` for `table`, applying the oldest pending
    /// add if the pipeline is full.
    #[inline]
    pub fn push(&mut self, table: &mut ColumnarTable, key: RowKey, sig: Signature, count: Count) {
        if count == 0 {
            return;
        }
        let p = ColumnarTable::prepare(key, sig, count);
        table.prefetch(&p);
        let old = std::mem::replace(&mut self.buf[self.head], p);
        self.head = (self.head + 1) % PIPELINE_DEPTH;
        // Second stage: the half-aged entry's slot line has arrived by now;
        // resolve its candidate row and prefetch that line too, so the
        // apply below never waits on either access. (Idle entries hold
        // `NO_ADD`, whose probe is harmless.)
        let mid = (self.head + PIPELINE_DEPTH / 2) % PIPELINE_DEPTH;
        table.prefetch_candidate_row(&self.buf[mid]);
        if self.len == PIPELINE_DEPTH {
            table.add_prepared(old);
        } else {
            self.len += 1;
        }
    }

    /// Applies every pending add in FIFO order, leaving the pipeline empty.
    /// Must run before the table is read — a pipeline is a window of adds
    /// the table has not seen yet.
    pub fn flush(&mut self, table: &mut ColumnarTable) {
        let mut i = (self.head + PIPELINE_DEPTH - self.len) % PIPELINE_DEPTH;
        for _ in 0..self.len {
            table.add_prepared(self.buf[i]);
            i = (i + 1) % PIPELINE_DEPTH;
        }
        self.len = 0;
    }
}

/// One permuted row payload of an [`EndpointGroups`] build: everything the
/// path merge needs about a grouped row, copied into group order so the
/// merge's span walks read dense, sequential records instead of chasing row
/// ids back into the source table.
#[derive(Clone, Copy, Debug, Default)]
pub struct GroupedRow {
    /// Low signature word.
    pub sig_lo: u64,
    /// High signature word.
    pub sig_hi: u64,
    /// Accumulated count.
    pub count: Count,
    /// The two extra key fields, packed (`f2 | f3 << 32`).
    extras: u64,
}

impl GroupedRow {
    /// The row's full signature.
    #[inline]
    pub fn sig(&self) -> Signature {
        Signature::from_words([self.sig_lo, self.sig_hi])
    }

    /// The row's two extra key fields.
    #[inline]
    pub fn extras(&self) -> [VertexId; 2] {
        [self.extras as u32, (self.extras >> 32) as u32]
    }
}

/// Rows of a [`ColumnarTable`] grouped by their `(f0, f1)` endpoint pair —
/// the access pattern of the cycle path-merge join. Built by counting sort
/// into one contiguous buffer (each group is a dense span, not a pointer
/// chain), so the merge's repeated group walks read sequential memory; all
/// scratch buffers are reusable across trials.
#[derive(Clone, Debug)]
pub struct EndpointGroups {
    /// Open-addressing index: slot → `epoch << 48 | fingerprint << 32 |
    /// group`, same tagging scheme as [`ColumnarTable::slots`].
    slots: Vec<u64>,
    /// Probe payloads parallel to `slots` (see [`SlotSpan`]).
    slot_spans: Vec<SlotSpan>,
    /// Slot claimed by each group in pass one (so pass three can write the
    /// span bounds into `slot_spans` without re-probing).
    group_slot: Vec<u32>,
    /// Current slot epoch.
    epoch: u16,
    /// Packed `(f1 << 32) | f0` key per group.
    group_keys: Vec<u64>,
    /// Scratch: group id of each row (pass one of the counting sort).
    group_of: Vec<u32>,
    /// Prefix offsets into `rows`: group `g` spans
    /// `rows[starts[g]..starts[g + 1]]`.
    starts: Vec<u32>,
    /// Row ids, contiguous per group.
    rows: Vec<u32>,
    /// Permuted row payloads, contiguous per group (parallel to `rows`).
    grouped: Vec<GroupedRow>,
    /// Low signature word per permuted row (parallel to `grouped`): the
    /// merge's signature filter scans this dense 8-byte lane and touches a
    /// full [`GroupedRow`] record only on the (rare) match.
    grouped_sigs: Vec<u64>,
    /// Scratch: per-group write cursors for the scatter pass.
    cursors: Vec<u32>,
}

impl Default for EndpointGroups {
    fn default() -> Self {
        EndpointGroups {
            slots: Vec::new(),
            slot_spans: Vec::new(),
            group_slot: Vec::new(),
            epoch: 1,
            group_keys: Vec::new(),
            group_of: Vec::new(),
            starts: Vec::new(),
            rows: Vec::new(),
            grouped: Vec::new(),
            grouped_sigs: Vec::new(),
            cursors: Vec::new(),
        }
    }
}

/// Per-slot probe payload of an [`EndpointGroups`] index: the group's
/// packed endpoint key and its span bounds, stored parallel to the slot
/// word. Everything a successful probe needs is indexed by the slot it
/// already computed, so a lookahead prefetch of the slot line can cover
/// the payload line too — no dependent walk through group-id arrays.
#[derive(Clone, Copy, Debug, Default)]
struct SlotSpan {
    /// Packed `(f1 << 32) | f0` endpoint key (claim-time).
    key: u64,
    /// Span start in the permuted row lanes (filled after the prefix sum).
    start: u32,
    /// Span end (exclusive).
    end: u32,
}

/// Hash of a packed endpoint pair (same mix family as `hash_row`).
#[inline]
fn hash_pair(packed: u64) -> u64 {
    (packed.rotate_left(5) ^ packed).wrapping_mul(SEED)
}

impl EndpointGroups {
    /// Creates an empty grouping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the grouping over `table`'s rows, reusing all buffers.
    pub fn build(&mut self, table: &ColumnarTable) {
        self.group_keys.clear();
        self.group_of.clear();
        self.group_of.resize(table.len(), EMPTY);
        // The slot table is sized to the number of *groups*, not rows —
        // groups are typically several times fewer, and the merge probes
        // this index once per outer row, so keeping it small keeps it
        // cache-resident. It grows on demand during pass one and retains
        // its size across rebuilds, so steady-state trials size it once.
        self.group_slot.clear();
        if self.slots.is_empty() {
            self.slots.resize(MIN_SLOTS, 0);
            self.slot_spans.resize(MIN_SLOTS, SlotSpan::default());
            self.epoch = 1;
        } else {
            self.epoch = self.epoch.wrapping_add(1);
            if self.epoch == 0 {
                self.slots.fill(0);
                self.epoch = 1;
            }
        }
        let mut mask = self.slots.len() - 1;
        // Pass one: assign a group id to every row, counting group sizes in
        // `starts` (shifted by one so the prefix sum lands in place).
        self.starts.clear();
        for r in 0..table.len() {
            if self.group_keys.len() * 2 >= self.slots.len() {
                self.grow_slots();
                mask = self.slots.len() - 1;
            }
            // The packed `(f1 << 32) | f0` pair is exactly the low half of
            // the packed key column.
            let packed = table.rows[r].key as u64;
            let hash = hash_pair(packed);
            let tag = ((self.epoch as u64) << 48) | (((hash >> 32) & 0xFFFF) << 32);
            let mut slot = (hash as usize) & mask;
            let group = loop {
                let entry = self.slots[slot];
                if (entry >> 48) as u16 != self.epoch {
                    let g = self.group_keys.len() as u32;
                    self.slots[slot] = tag | g as u64;
                    self.slot_spans[slot].key = packed;
                    self.group_slot.push(slot as u32);
                    self.group_keys.push(packed);
                    self.starts.push(0);
                    break g;
                }
                if entry >> 32 == tag >> 32 {
                    let g = entry as u32;
                    if self.slot_spans[slot].key == packed {
                        break g;
                    }
                }
                slot = (slot + 1) & mask;
            };
            self.group_of[r] = group;
            self.starts[group as usize] += 1;
        }
        // Prefix sum: starts[g] becomes the span start of group g.
        let mut acc = 0u32;
        for s in &mut self.starts {
            let len = *s;
            *s = acc;
            acc += len;
        }
        self.starts.push(acc);
        // Pass two: scatter row ids into their group spans.
        self.cursors.clear();
        self.cursors
            .extend_from_slice(&self.starts[..self.starts.len() - 1]);
        self.rows.clear();
        self.rows.resize(table.len(), 0);
        self.grouped.clear();
        self.grouped.resize(table.len(), GroupedRow::default());
        self.grouped_sigs.clear();
        self.grouped_sigs.resize(table.len(), 0);
        for (r, &g) in self.group_of.iter().enumerate() {
            let c = &mut self.cursors[g as usize];
            let row = &table.rows[r];
            self.rows[*c as usize] = r as u32;
            self.grouped[*c as usize] = GroupedRow {
                sig_lo: row.sig_lo,
                sig_hi: table.hi(r),
                count: row.count,
                extras: (row.key >> 64) as u64,
            };
            self.grouped_sigs[*c as usize] = row.sig_lo;
            *c += 1;
        }
        // Pass three: copy each group's span bounds next to its slot, so a
        // probe resolves key, start and end from the one prefetched
        // payload line.
        for (g, &slot) in self.group_slot.iter().enumerate() {
            let span = &mut self.slot_spans[slot as usize];
            span.start = self.starts[g];
            span.end = self.starts[g + 1];
        }
    }

    /// Prefetches the slot cache line a [`spans_for`](Self::spans_for) /
    /// [`rows_for`](Self::rows_for) probe of `(start, end)` will read
    /// first. The merge's group probes are dependent random accesses with
    /// almost no work between them; issuing the prefetch a few outer rows
    /// ahead overlaps their miss latency.
    #[inline]
    pub fn prefetch_pair(&self, start: VertexId, end: VertexId) {
        #[cfg(target_arch = "x86_64")]
        if !self.slots.is_empty() {
            let packed = (start as u64) | ((end as u64) << 32);
            let slot = (hash_pair(packed) as usize) & (self.slots.len() - 1);
            // SAFETY: `slot` is masked into bounds; prefetch has no effect
            // beyond the cache.
            unsafe {
                std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                    self.slots.as_ptr().add(slot) as *const i8,
                );
                std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                    self.slot_spans.as_ptr().add(slot) as *const i8,
                );
            }
        }
    }

    /// Doubles the group slot table and re-indexes every group key.
    #[cold]
    fn grow_slots(&mut self) {
        let new_len = (self.slots.len() * 2).max(MIN_SLOTS);
        self.slots.clear();
        self.slots.resize(new_len, 0);
        self.slot_spans.clear();
        self.slot_spans.resize(new_len, SlotSpan::default());
        self.epoch = 1;
        let mask = new_len - 1;
        for (g, &packed) in self.group_keys.iter().enumerate() {
            let hash = hash_pair(packed);
            let tag = ((self.epoch as u64) << 48) | (((hash >> 32) & 0xFFFF) << 32);
            let mut slot = (hash as usize) & mask;
            while (self.slots[slot] >> 48) as u16 == self.epoch {
                slot = (slot + 1) & mask;
            }
            self.slots[slot] = tag | g as u64;
            self.slot_spans[slot].key = packed;
            self.group_slot[g] = slot as u32;
        }
    }

    /// The span of rows whose `(f0, f1)` equals `(start, end)`, as the pair
    /// of parallel lanes the merge scans: the dense low-signature words and
    /// the full permuted payloads (both empty if the pair never occurs).
    pub fn spans_for(&self, start: VertexId, end: VertexId) -> (&[u64], &[GroupedRow]) {
        if self.slots.is_empty() {
            return (&[], &[]);
        }
        let packed = (start as u64) | ((end as u64) << 32);
        let hash = hash_pair(packed);
        let tag = ((self.epoch as u64) << 48) | (((hash >> 32) & 0xFFFF) << 32);
        let mask = self.slots.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = self.slots[slot];
            if (entry >> 48) as u16 != self.epoch {
                return (&[], &[]);
            }
            if entry >> 32 == tag >> 32 {
                let p = &self.slot_spans[slot];
                if p.key == packed {
                    let span = p.start as usize..p.end as usize;
                    return (&self.grouped_sigs[span.clone()], &self.grouped[span]);
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The permuted payloads of the rows whose `(f0, f1)` equals
    /// `(start, end)`, as one dense span (empty if the pair never occurs).
    pub fn grouped_rows_for(&self, start: VertexId, end: VertexId) -> &[GroupedRow] {
        if self.slots.is_empty() {
            return &[];
        }
        let packed = (start as u64) | ((end as u64) << 32);
        let hash = hash_pair(packed);
        let tag = ((self.epoch as u64) << 48) | (((hash >> 32) & 0xFFFF) << 32);
        let mask = self.slots.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = self.slots[slot];
            if (entry >> 48) as u16 != self.epoch {
                return &[];
            }
            if entry >> 32 == tag >> 32 {
                let p = &self.slot_spans[slot];
                if p.key == packed {
                    return &self.grouped[p.start as usize..p.end as usize];
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The row ids whose `(f0, f1)` equals `(start, end)`, as one dense
    /// span (empty if the pair never occurs).
    pub fn rows_for(&self, start: VertexId, end: VertexId) -> &[u32] {
        if self.slots.is_empty() {
            return &[];
        }
        let packed = (start as u64) | ((end as u64) << 32);
        let hash = hash_pair(packed);
        let tag = ((self.epoch as u64) << 48) | (((hash >> 32) & 0xFFFF) << 32);
        let mask = self.slots.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = self.slots[slot];
            if (entry >> 48) as u16 != self.epoch {
                return &[];
            }
            if entry >> 32 == tag >> 32 {
                let p = &self.slot_spans[slot];
                if p.key == packed {
                    return &self.rows[p.start as usize..p.end as usize];
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Total allocated bytes across all scratch buffers.
    pub fn capacity_bytes(&self) -> usize {
        (self.group_of.capacity()
            + self.starts.capacity()
            + self.rows.capacity()
            + self.group_slot.capacity()
            + self.cursors.capacity())
            * std::mem::size_of::<u32>()
            + self.slot_spans.capacity() * std::mem::size_of::<SlotSpan>()
            + (self.slots.capacity() + self.group_keys.capacity() + self.grouped_sigs.capacity())
                * std::mem::size_of::<u64>()
            + self.grouped.capacity() * std::mem::size_of::<GroupedRow>()
    }
}

/// A path-table row key with no extras (parallel to `PathKey::new`).
#[inline]
pub const fn path_key(start: VertexId, end: VertexId) -> RowKey {
    [start, end, NO_VERTEX, NO_VERTEX]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_and_gets() {
        let mut t = ColumnarTable::new();
        let sig = Signature::pair(0, 1);
        t.add(path_key(3, 5), sig, 2);
        t.add(path_key(3, 5), sig, 5);
        t.add(path_key(3, 6), sig, 1);
        t.add(path_key(9, 9), sig, 0); // ignored
        assert_eq!(t.get(path_key(3, 5), sig), 7);
        assert_eq!(t.get(path_key(3, 6), sig), 1);
        assert_eq!(t.get(path_key(3, 7), sig), 0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.total(), 8);
    }

    #[test]
    fn signatures_distinguish_rows_across_words() {
        let mut t = ColumnarTable::new();
        // Same key, signatures differing only in the high word.
        let lo = Signature::pair(0, 63);
        let hi = Signature::pair(0, 64);
        t.add(path_key(1, 2), lo, 3);
        t.add(path_key(1, 2), hi, 4);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(path_key(1, 2), lo), 3);
        assert_eq!(t.get(path_key(1, 2), hi), 4);
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut t = ColumnarTable::new();
        for i in 0..10_000u32 {
            t.add(
                path_key(i % 997, i % 1009),
                Signature::singleton((i % 90) as u8),
                1,
            );
        }
        let bytes = t.capacity_bytes();
        assert!(bytes > 0);
        t.reset();
        assert!(t.is_empty());
        assert_eq!(t.capacity_bytes(), bytes, "reset must not shed capacity");
        // Refilling with the same working set allocates nothing new.
        for i in 0..10_000u32 {
            t.add(
                path_key(i % 997, i % 1009),
                Signature::singleton((i % 90) as u8),
                1,
            );
        }
        assert_eq!(t.capacity_bytes(), bytes, "steady state must not grow");
    }

    #[test]
    fn reset_survives_epoch_wrap() {
        // 16-bit epoch: after 65536 resets the tag space wraps and the slot
        // table must be wiped for real. Drive past the wrap and check the
        // table still distinguishes fresh from stale rows.
        let mut t = ColumnarTable::new();
        let sig = Signature::singleton(1);
        for round in 0..70_000u32 {
            t.add(path_key(round % 13, 1), sig, 1);
            assert_eq!(t.get(path_key(round % 13, 1), sig), 1);
            assert_eq!(t.len(), 1, "stale slot resurrected at round {round}");
            t.reset();
            assert_eq!(t.get(path_key(round % 13, 1), sig), 0);
        }
    }

    #[test]
    fn rows_round_trip() {
        let mut t = ColumnarTable::new();
        let k = [1, 2, 7, NO_VERTEX];
        let sig = Signature::empty().with(3).with(100);
        t.add(k, sig, 11);
        let rows: Vec<_> = t.rows().collect();
        assert_eq!(rows, vec![(k, sig, 11)]);
        assert_eq!(t.sig(0), sig);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut t = ColumnarTable::new();
        for i in 0..5_000u32 {
            t.add(
                path_key(i, i + 1),
                Signature::singleton((i % 120) as u8),
                i as u64 + 1,
            );
        }
        for i in 0..5_000u32 {
            assert_eq!(
                t.get(path_key(i, i + 1), Signature::singleton((i % 120) as u8)),
                i as u64 + 1
            );
        }
    }

    #[test]
    fn endpoint_groups_find_all_rows() {
        let mut t = ColumnarTable::new();
        t.add(path_key(1, 2), Signature::singleton(0), 1);
        t.add(path_key(1, 2), Signature::singleton(1), 2);
        t.add(path_key(1, 3), Signature::singleton(2), 3);
        t.add([1, 2, 9, NO_VERTEX], Signature::singleton(3), 4);
        let mut groups = EndpointGroups::new();
        groups.build(&t);
        let counts: u64 = groups
            .rows_for(1, 2)
            .iter()
            .map(|&r| t.row(r as usize).2)
            .sum();
        assert_eq!(counts, 7);
        assert_eq!(groups.rows_for(1, 3).len(), 1);
        assert_eq!(groups.rows_for(2, 1).len(), 0);
    }

    #[test]
    fn endpoint_group_spans_are_contiguous_and_ordered() {
        // Counting sort must keep each group's rows in insertion order and
        // cover every row exactly once.
        let mut t = ColumnarTable::new();
        for i in 0..100u32 {
            t.add(
                path_key(i % 3, i % 2),
                Signature::singleton((i % 100) as u8),
                1,
            );
        }
        let mut groups = EndpointGroups::new();
        groups.build(&t);
        let mut seen = vec![false; t.len()];
        for a in 0..3u32 {
            for b in 0..2u32 {
                let span = groups.rows_for(a, b);
                assert!(span.windows(2).all(|w| w[0] < w[1]), "insertion order");
                for &r in span {
                    assert!(!seen[r as usize], "row listed twice");
                    seen[r as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every row grouped");
    }

    #[test]
    fn endpoint_groups_rebuild_reuses_buffers() {
        let mut t = ColumnarTable::new();
        for i in 0..1000u32 {
            t.add(
                path_key(i % 31, i % 37),
                Signature::singleton((i % 64) as u8),
                1,
            );
        }
        let mut groups = EndpointGroups::new();
        groups.build(&t);
        let bytes = groups.capacity_bytes();
        groups.build(&t);
        assert_eq!(groups.capacity_bytes(), bytes);
        let total: u64 = (0..31u32)
            .flat_map(|a| (0..37u32).map(move |b| (a, b)))
            .map(|(a, b)| {
                groups
                    .rows_for(a, b)
                    .iter()
                    .map(|&r| t.row(r as usize).2)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(total, t.total());
    }
}
