//! A fast, non-cryptographic hasher for table keys.
//!
//! The projection tables are hit billions of times on larger runs; Rust's
//! default SipHash is designed for HashDoS resistance, which is irrelevant
//! here (keys are vertex ids and bitmasks we generate ourselves). This is the
//! FxHash multiply-rotate scheme used by rustc, implemented locally so the
//! workspace stays within its approved dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style hasher: fold every 8/4/1-byte chunk into the state with a
/// rotate + xor + multiply.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Creates an empty [`FastMap`] with the given capacity.
pub fn fast_map_with_capacity<K, V>(capacity: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let builder: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        builder.hash_one(value)
    }

    #[test]
    fn equal_values_hash_equally() {
        assert_eq!(hash_of(&(1u32, 2u32, 3u32)), hash_of(&(1u32, 2u32, 3u32)));
        assert_ne!(hash_of(&(1u32, 2u32, 3u32)), hash_of(&(1u32, 2u32, 4u32)));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<(u32, u32), u64> = FastMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 2), i as u64);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(10, 20)], 10);
        assert!(!m.contains_key(&(10, 21)));
    }

    #[test]
    fn distribution_is_reasonable() {
        // Sequential keys should not collapse onto a few buckets: count
        // distinct hash values modulo a small table size.
        let mut buckets = vec![0usize; 64];
        for i in 0..6400u64 {
            buckets[(hash_of(&i) as usize) % 64] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 400, "bucket imbalance too high: {max}");
    }

    #[test]
    fn set_alias_works() {
        let mut s: FastSet<u64> = FastSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn byte_slices_hash_consistently() {
        assert_eq!(hash_of(&"hello world"), hash_of(&"hello world"));
        assert_ne!(hash_of(&"hello world"), hash_of(&"hello worlds"));
    }
}
