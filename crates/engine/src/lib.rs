//! # sgc-engine — tables, joins and the simulated distributed engine
//!
//! The paper's "engine" layer (Section 7) stores the data graph and the
//! projection tables in a distributed fashion and exposes join routines to
//! the plan solver. This crate provides the shared-memory equivalent:
//!
//! * [`Signature`] — color sets as two `u64` bitset words with the
//!   disjointness / containment operations used by every join,
//! * [`hash`] — an FxHash-style hasher and the [`FastMap`] alias used for
//!   all tables (projection-table lookups dominate runtime, so SipHash
//!   would be a measurable tax),
//! * [`table`] — unary / binary projection tables, the scalar root table and
//!   the path tables (with up to two extra tracked boundary fields) used
//!   while solving cycles,
//! * [`columnar`] — the same logical tables as structure-of-arrays column
//!   buffers with an open-addressing row index, built for arena reuse (the
//!   storage layer of `sgc-core`'s columnar kernel),
//! * [`load`] — per-rank load accounting over a
//!   [`sgc_graph::BlockPartition`], reproducing the paper's
//!   "number of projection function operations per processor" metric,
//! * [`parallel`] — small rayon helpers (chunked map-reduce over table
//!   entries, scoped thread pools for the scaling experiments).

pub mod columnar;
pub mod hash;
pub mod load;
pub mod parallel;
pub mod signature;
pub mod table;

pub use columnar::{ColumnarTable, EndpointGroups};
pub use hash::FastMap;
pub use load::LoadStats;
pub use signature::{Color, Signature};
pub use table::{BinaryTable, Count, PathKey, PathTable, ProjectionTable, UnaryTable};
