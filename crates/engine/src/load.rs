//! Per-rank load accounting.
//!
//! Figure 11 of the paper compares the PS and DB algorithms by the *load* of
//! each processor, defined as the number of projection function operations it
//! performs: the DB algorithm both lowers the average load (less wasted work)
//! and, crucially, the maximum load (better balance around high-degree
//! vertices). In this reproduction the ranks are simulated: each join
//! operation is attributed to the rank that owns the vertex at which the
//! paper's engine would have executed it (the owner of the key's second
//! vertex `v`, Section 7), regardless of which thread actually ran it.

use sgc_graph::{BlockPartition, VertexId};

/// Accumulated per-rank operation counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadStats {
    per_rank: Vec<u64>,
}

impl LoadStats {
    /// Creates a zeroed load vector for `num_ranks` ranks.
    pub fn new(num_ranks: usize) -> Self {
        LoadStats {
            per_rank: vec![0; num_ranks.max(1)],
        }
    }

    /// Number of ranks tracked.
    pub fn num_ranks(&self) -> usize {
        self.per_rank.len()
    }

    /// Records `ops` operations owned by `rank`.
    #[inline]
    pub fn record(&mut self, rank: usize, ops: u64) {
        self.per_rank[rank] += ops;
    }

    /// Records `ops` operations attributed to the owner of `vertex`.
    #[inline]
    pub fn record_vertex(&mut self, partition: &BlockPartition, vertex: VertexId, ops: u64) {
        // Serial runs track a single simulated rank; skip the owner division
        // entirely on that (hot) path.
        if self.per_rank.len() == 1 {
            self.per_rank[0] += ops;
        } else {
            self.per_rank[partition.owner(vertex)] += ops;
        }
    }

    /// Adds another load vector into this one (must have the same rank count).
    pub fn merge(&mut self, other: &LoadStats) {
        assert_eq!(self.per_rank.len(), other.per_rank.len());
        for (a, b) in self.per_rank.iter_mut().zip(&other.per_rank) {
            *a += b;
        }
    }

    /// Total operations over all ranks.
    pub fn total(&self) -> u64 {
        self.per_rank.iter().sum()
    }

    /// Maximum per-rank load — the paper's load-balance metric.
    pub fn max(&self) -> u64 {
        self.per_rank.iter().copied().max().unwrap_or(0)
    }

    /// Average per-rank load.
    pub fn average(&self) -> f64 {
        if self.per_rank.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.per_rank.len() as f64
        }
    }

    /// Ratio of maximum to average load (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let avg = self.average();
        if avg == 0.0 {
            1.0
        } else {
            self.max() as f64 / avg
        }
    }

    /// Raw per-rank counts.
    pub fn per_rank(&self) -> &[u64] {
        &self.per_rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_aggregate() {
        let mut l = LoadStats::new(4);
        l.record(0, 10);
        l.record(3, 30);
        l.record(3, 5);
        assert_eq!(l.total(), 45);
        assert_eq!(l.max(), 35);
        assert!((l.average() - 11.25).abs() < 1e-12);
        assert!((l.imbalance() - 35.0 / 11.25).abs() < 1e-12);
    }

    #[test]
    fn record_by_vertex_owner() {
        let p = BlockPartition::new(100, 4);
        let mut l = LoadStats::new(4);
        l.record_vertex(&p, 0, 7); // rank 0
        l.record_vertex(&p, 99, 3); // rank 3
        assert_eq!(l.per_rank(), &[7, 0, 0, 3]);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = LoadStats::new(2);
        a.record(0, 1);
        let mut b = LoadStats::new(2);
        b.record(0, 2);
        b.record(1, 5);
        a.merge(&b);
        assert_eq!(a.per_rank(), &[3, 5]);
    }

    #[test]
    fn empty_load_is_balanced() {
        let l = LoadStats::new(8);
        assert_eq!(l.max(), 0);
        assert_eq!(l.imbalance(), 1.0);
    }

    #[test]
    #[should_panic]
    fn merging_mismatched_ranks_panics() {
        let mut a = LoadStats::new(2);
        a.merge(&LoadStats::new(3));
    }
}
