//! Rayon helpers for the sharded joins and the scaling experiments.
//!
//! The paper's joins run across MPI ranks; here the same joins run as
//! data-parallel rayon jobs over chunks of table entries. The helpers in this
//! module keep the algorithm code free of thread-pool plumbing:
//!
//! * [`run_with_threads`] executes a closure inside a dedicated rayon pool of
//!   a given size — used by the strong/weak scaling experiments (Figures 12
//!   and 13) to sweep the degree of parallelism,
//! * [`parallel_chunks`] splits a slice of work items into one chunk per
//!   available thread (at a minimum granularity) and maps each chunk,
//!   returning the per-chunk results for the caller to merge.

use rayon::prelude::*;

/// Minimum number of items per chunk before a join bothers going parallel;
/// below this the sequential path is faster than the fork/join overhead.
pub const MIN_PARALLEL_ITEMS: usize = 2_048;

/// Runs `f` on a dedicated rayon thread pool with `num_threads` threads.
///
/// # Panics
/// Panics if the pool cannot be built (e.g. `num_threads == 0`).
pub fn run_with_threads<R: Send>(num_threads: usize, f: impl FnOnce() -> R + Send) -> R {
    assert!(num_threads > 0, "need at least one thread");
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(num_threads)
        .build()
        .expect("failed to build rayon thread pool");
    pool.install(f)
}

/// Maps `f` over chunks of `items` in parallel and returns the per-chunk
/// results. Falls back to a single chunk when the input is small.
pub fn parallel_chunks<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(&[T]) -> R + Sync + Send,
) -> Vec<R> {
    if items.is_empty() {
        return Vec::new();
    }
    let threads = rayon::current_num_threads().max(1);
    let chunk_size = items
        .len()
        .div_ceil(threads)
        .max(MIN_PARALLEL_ITEMS.min(items.len()));
    if items.len() <= MIN_PARALLEL_ITEMS || threads == 1 {
        return vec![f(items)];
    }
    items.par_chunks(chunk_size).map(f).collect()
}

/// Reduces `items` to a single value by rounds of pairwise parallel merges
/// (`⌈log₂ n⌉` rounds of concurrent two-item combines instead of a serial
/// left fold). Returns `None` for an empty input.
///
/// `op` must be associative; the reduction order is the deterministic
/// balanced-tree order over the input sequence, so commutativity is only
/// required if callers reorder the input.
pub fn pairwise_reduce<T: Send>(mut items: Vec<T>, op: impl Fn(T, T) -> T + Sync) -> Option<T> {
    while items.len() > 1 {
        items = items
            .into_par_iter()
            .chunks(2)
            .map(|mut pair| {
                if pair.len() == 2 {
                    let second = pair.pop().unwrap();
                    let first = pair.pop().unwrap();
                    op(first, second)
                } else {
                    pair.pop().unwrap()
                }
            })
            .collect();
    }
    items.pop()
}

/// Maps `f` over `0..count` in parallel with *per-item* granularity,
/// returning the results in index order.
///
/// Unlike [`parallel_chunks`], which only goes parallel past
/// [`MIN_PARALLEL_ITEMS`] because its work items are cheap table entries,
/// this helper assumes each item is expensive (an entire counting trial) and
/// parallelises even tiny counts. Results are deterministic: item `i`'s
/// output depends only on `i`, never on the thread layout.
pub fn parallel_indexed<R: Send>(count: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if count == 0 {
        return Vec::new();
    }
    let threads = rayon::current_num_threads().max(1);
    if threads == 1 || count == 1 {
        return (0..count).map(f).collect();
    }
    let indices: Vec<usize> = (0..count).collect();
    let chunk_size = count.div_ceil(threads);
    indices
        .par_chunks(chunk_size)
        .map(|chunk| chunk.iter().map(|&i| f(i)).collect::<Vec<R>>())
        .collect::<Vec<_>>()
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_with_threads_controls_pool_size() {
        let observed = run_with_threads(3, rayon::current_num_threads);
        assert_eq!(observed, 3);
        let observed = run_with_threads(1, rayon::current_num_threads);
        assert_eq!(observed, 1);
    }

    #[test]
    fn parallel_chunks_covers_all_items() {
        let items: Vec<u64> = (0..100_000).collect();
        let partials = parallel_chunks(&items, |chunk| chunk.iter().sum::<u64>());
        let total: u64 = partials.iter().sum();
        assert_eq!(total, items.iter().sum::<u64>());
    }

    #[test]
    fn small_inputs_use_a_single_chunk() {
        let items: Vec<u32> = (0..10).collect();
        let partials = parallel_chunks(&items, |chunk| chunk.len());
        assert_eq!(partials, vec![10]);
    }

    #[test]
    fn empty_input_returns_no_chunks() {
        let items: Vec<u32> = Vec::new();
        let partials = parallel_chunks(&items, |chunk| chunk.len());
        assert!(partials.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_threads_panics() {
        run_with_threads(0, || ());
    }

    #[test]
    fn pairwise_reduce_matches_a_fold() {
        assert_eq!(pairwise_reduce(Vec::<u64>::new(), |a, b| a + b), None);
        assert_eq!(pairwise_reduce(vec![7u64], |a, b| a + b), Some(7));
        let items: Vec<u64> = (1..=100).collect();
        let total = pairwise_reduce(items.clone(), |a, b| a + b);
        assert_eq!(total, Some(items.iter().sum()));
        // Associative but non-commutative op: balanced-tree order must
        // still concatenate left to right.
        let words: Vec<String> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            pairwise_reduce(words, |a, b| a + &b).as_deref(),
            Some("abcde")
        );
    }

    #[test]
    fn parallel_indexed_is_ordered_and_thread_invariant() {
        let f = |i: usize| (i * i) as u64;
        let expected: Vec<u64> = (0..37).map(f).collect();
        for threads in [1, 2, 5] {
            let got = run_with_threads(threads, || parallel_indexed(37, f));
            assert_eq!(got, expected, "threads = {threads}");
        }
        assert!(parallel_indexed(0, f).is_empty());
        assert_eq!(parallel_indexed(1, f), vec![0]);
    }
}
