//! Color signatures.
//!
//! A *signature* is the set of colors used by a colorful match of a subquery
//! (Section 4.2). With at most 32 colors (queries of at most 32 nodes) a
//! signature fits in a `u32` bitmask, and the compatibility checks performed
//! inside joins — disjointness except for the colors of shared boundary
//! vertices — become a couple of bitwise instructions, exactly as in the
//! paper's implementation ("signatures are maintained as bitmaps").

/// A color in `0..k`.
pub type Color = u8;

/// A set of colors, stored as a bitmask.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature(pub u32);

impl Signature {
    /// The empty signature.
    #[inline]
    pub const fn empty() -> Self {
        Signature(0)
    }

    /// The signature containing a single color.
    #[inline]
    pub const fn singleton(color: Color) -> Self {
        Signature(1 << color)
    }

    /// The signature containing two colors (not necessarily distinct).
    #[inline]
    pub const fn pair(a: Color, b: Color) -> Self {
        Signature((1 << a) | (1 << b))
    }

    /// The full signature of `k` colors `{0, ..., k-1}`.
    #[inline]
    pub fn full(k: usize) -> Self {
        debug_assert!(k <= 32);
        if k == 32 {
            Signature(u32::MAX)
        } else {
            Signature((1u32 << k) - 1)
        }
    }

    /// Whether the signature contains `color`.
    #[inline]
    pub const fn contains(self, color: Color) -> bool {
        (self.0 >> color) & 1 == 1
    }

    /// Inserts a color, returning the new signature.
    #[inline]
    pub const fn with(self, color: Color) -> Self {
        Signature(self.0 | (1 << color))
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: Self) -> Self {
        Signature(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: Self) -> Self {
        Signature(self.0 & other.0)
    }

    /// Whether the two signatures share no color.
    #[inline]
    pub const fn is_disjoint(self, other: Self) -> bool {
        self.0 & other.0 == 0
    }

    /// Whether `self` is a subset of `other`.
    #[inline]
    pub const fn is_subset_of(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// Number of colors in the signature.
    #[inline]
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the signature is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The colors in increasing order.
    pub fn colors(self) -> impl Iterator<Item = Color> {
        (0..32u8).filter(move |&c| self.contains(c))
    }
}

impl std::fmt::Display for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for c in self.colors() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let s = Signature::empty().with(3).with(7);
        assert!(s.contains(3));
        assert!(s.contains(7));
        assert!(!s.contains(0));
        assert_eq!(s.len(), 2);
        assert_eq!(Signature::pair(2, 2).len(), 1);
    }

    #[test]
    fn set_operations() {
        let a = Signature::pair(0, 1);
        let b = Signature::pair(1, 2);
        assert_eq!(a.union(b), Signature::full(3));
        assert_eq!(a.intersection(b), Signature::singleton(1));
        assert!(!a.is_disjoint(b));
        assert!(a.is_disjoint(Signature::singleton(5)));
        assert!(a.is_subset_of(Signature::full(4)));
        assert!(!Signature::full(4).is_subset_of(a));
    }

    #[test]
    fn full_signature_edges() {
        assert_eq!(Signature::full(1), Signature::singleton(0));
        assert_eq!(Signature::full(32).len(), 32);
        assert!(Signature::full(0).is_empty());
    }

    #[test]
    fn colors_iterator_round_trips() {
        let s = Signature::empty().with(1).with(4).with(31);
        let cs: Vec<Color> = s.colors().collect();
        assert_eq!(cs, vec![1, 4, 31]);
        let rebuilt = cs.iter().fold(Signature::empty(), |acc, &c| acc.with(c));
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn display_formats_as_set() {
        assert_eq!(Signature::pair(0, 2).to_string(), "{0,2}");
        assert_eq!(Signature::empty().to_string(), "{}");
    }
}
