//! Color signatures.
//!
//! A *signature* is the set of colors used by a colorful match of a subquery
//! (Section 4.2). With at most [`MAX_SIGNATURE_COLORS`] colors a signature
//! fits in [`SIGNATURE_WORDS`] `u64` bitset lanes, and the compatibility
//! checks performed inside joins — disjointness except for the colors of
//! shared boundary vertices — become a couple of bitwise instructions per
//! word, exactly as in the paper's implementation ("signatures are
//! maintained as bitmaps").
//!
//! The columnar kernel (`sgc-core::kernel`) stores the two lanes as
//! separate `sig_lo`/`sig_hi` columns and processes them word-at-a-time;
//! [`Signature::words`]/[`Signature::from_words`] are the bridge between
//! the struct view and the lane view, and the word-level operations here
//! (popcount via [`len`](Signature::len), subset enumeration via
//! [`subsets`](Signature::subsets)) are the primitives that the unit tests
//! in this module pin down at the 64-bit word boundary.

/// A color in `0..k`.
pub type Color = u8;

/// Number of `u64` words in a signature.
pub const SIGNATURE_WORDS: usize = 2;

/// Largest supported color count (`SIGNATURE_WORDS * 64`).
pub const MAX_SIGNATURE_COLORS: usize = SIGNATURE_WORDS * 64;

/// Splits a color into its `(word index, bit mask)` lane coordinates.
#[inline]
pub const fn word_bit(color: Color) -> (usize, u64) {
    ((color >> 6) as usize, 1u64 << (color & 63))
}

/// A set of colors, stored as two `u64` bitset words (low word first).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature(pub [u64; SIGNATURE_WORDS]);

impl Signature {
    /// The empty signature.
    #[inline]
    pub const fn empty() -> Self {
        Signature([0; SIGNATURE_WORDS])
    }

    /// The signature containing a single color.
    #[inline]
    pub const fn singleton(color: Color) -> Self {
        Signature::empty().with(color)
    }

    /// The signature containing two colors (not necessarily distinct).
    #[inline]
    pub const fn pair(a: Color, b: Color) -> Self {
        Signature::empty().with(a).with(b)
    }

    /// The full signature of `k` colors `{0, ..., k-1}`.
    #[inline]
    pub const fn full(k: usize) -> Self {
        debug_assert!(k <= MAX_SIGNATURE_COLORS);
        let mut words = [0u64; SIGNATURE_WORDS];
        let mut w = 0;
        while w < SIGNATURE_WORDS {
            let low = w * 64;
            if k >= low + 64 {
                words[w] = u64::MAX;
            } else if k > low {
                words[w] = (1u64 << (k - low)) - 1;
            }
            w += 1;
        }
        Signature(words)
    }

    /// Builds a signature directly from its `u64` words (low word first).
    #[inline]
    pub const fn from_words(words: [u64; SIGNATURE_WORDS]) -> Self {
        Signature(words)
    }

    /// The signature's `u64` words (low word first) — the columnar lane view.
    #[inline]
    pub const fn words(self) -> [u64; SIGNATURE_WORDS] {
        self.0
    }

    /// Whether the signature contains `color`.
    #[inline]
    pub const fn contains(self, color: Color) -> bool {
        let (w, bit) = word_bit(color);
        self.0[w] & bit != 0
    }

    /// Inserts a color, returning the new signature.
    #[inline]
    pub const fn with(self, color: Color) -> Self {
        let (w, bit) = word_bit(color);
        let mut words = self.0;
        words[w] |= bit;
        Signature(words)
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: Self) -> Self {
        Signature([self.0[0] | other.0[0], self.0[1] | other.0[1]])
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: Self) -> Self {
        Signature([self.0[0] & other.0[0], self.0[1] & other.0[1]])
    }

    /// Whether the two signatures share no color.
    #[inline]
    pub const fn is_disjoint(self, other: Self) -> bool {
        (self.0[0] & other.0[0]) | (self.0[1] & other.0[1]) == 0
    }

    /// Whether `self` is a subset of `other`.
    #[inline]
    pub const fn is_subset_of(self, other: Self) -> bool {
        (self.0[0] & !other.0[0]) | (self.0[1] & !other.0[1]) == 0
    }

    /// Number of colors in the signature (word-at-a-time popcount).
    #[inline]
    pub const fn len(self) -> u32 {
        self.0[0].count_ones() + self.0[1].count_ones()
    }

    /// Whether the signature is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0[0] | self.0[1] == 0
    }

    /// The colors in increasing order.
    pub fn colors(self) -> impl Iterator<Item = Color> {
        self.0.into_iter().enumerate().flat_map(|(w, mut word)| {
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros();
                word &= word - 1;
                Some((w * 64) as Color + bit as Color)
            })
        })
    }

    /// Enumerates every subset of this signature, the empty set first and
    /// `self` last, via the carry-propagating `(sub - 1) & mask` walk run
    /// over both words as one 128-bit lane.
    pub fn subsets(self) -> impl Iterator<Item = Signature> {
        let mask = (self.0[0] as u128) | ((self.0[1] as u128) << 64);
        let mut next = Some(0u128);
        std::iter::from_fn(move || {
            let sub = next?;
            next = if sub == mask {
                None
            } else {
                Some(sub.wrapping_sub(mask) & mask)
            };
            Some(Signature([sub as u64, (sub >> 64) as u64]))
        })
    }
}

impl std::fmt::Display for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for c in self.colors() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let s = Signature::empty().with(3).with(7);
        assert!(s.contains(3));
        assert!(s.contains(7));
        assert!(!s.contains(0));
        assert_eq!(s.len(), 2);
        assert_eq!(Signature::pair(2, 2).len(), 1);
    }

    #[test]
    fn set_operations() {
        let a = Signature::pair(0, 1);
        let b = Signature::pair(1, 2);
        assert_eq!(a.union(b), Signature::full(3));
        assert_eq!(a.intersection(b), Signature::singleton(1));
        assert!(!a.is_disjoint(b));
        assert!(a.is_disjoint(Signature::singleton(5)));
        assert!(a.is_subset_of(Signature::full(4)));
        assert!(!Signature::full(4).is_subset_of(a));
    }

    #[test]
    fn full_signature_edges() {
        assert_eq!(Signature::full(1), Signature::singleton(0));
        assert_eq!(Signature::full(32).len(), 32);
        assert!(Signature::full(0).is_empty());
        // The word boundary and both extremes of the second lane.
        assert_eq!(Signature::full(64).words(), [u64::MAX, 0]);
        assert_eq!(Signature::full(65).words(), [u64::MAX, 1]);
        assert_eq!(Signature::full(128).words(), [u64::MAX, u64::MAX]);
        assert_eq!(Signature::full(128).len(), 128);
    }

    #[test]
    fn membership_crosses_the_word_boundary() {
        let s = Signature::empty().with(63).with(64).with(127);
        assert_eq!(s.words(), [1 << 63, (1 << 63) | 1]);
        assert!(s.contains(63) && s.contains(64) && s.contains(127));
        assert!(!s.contains(62) && !s.contains(65));
        assert_eq!(s.len(), 3);
        assert_eq!(Signature::pair(63, 64).words(), [1 << 63, 1]);
    }

    #[test]
    fn high_lane_set_operations() {
        let a = Signature::pair(10, 70);
        let b = Signature::pair(70, 100);
        assert_eq!(a.intersection(b), Signature::singleton(70));
        assert_eq!(a.union(b).len(), 3);
        assert!(a.is_disjoint(Signature::pair(11, 71)));
        assert!(!a.is_disjoint(Signature::singleton(70)));
        assert!(Signature::singleton(70).is_subset_of(a));
        assert!(!a.is_subset_of(Signature::singleton(70)));
    }

    #[test]
    fn colors_iterator_round_trips() {
        let s = Signature::empty().with(1).with(4).with(31);
        let cs: Vec<Color> = s.colors().collect();
        assert_eq!(cs, vec![1, 4, 31]);
        let rebuilt = cs.iter().fold(Signature::empty(), |acc, &c| acc.with(c));
        assert_eq!(rebuilt, s);
        let wide = Signature::empty().with(0).with(63).with(64).with(127);
        assert_eq!(wide.colors().collect::<Vec<_>>(), vec![0, 63, 64, 127]);
    }

    #[test]
    fn words_round_trip() {
        let s = Signature::empty().with(5).with(64).with(100);
        assert_eq!(Signature::from_words(s.words()), s);
    }

    #[test]
    fn subsets_of_empty_is_just_empty() {
        let subs: Vec<_> = Signature::empty().subsets().collect();
        assert_eq!(subs, vec![Signature::empty()]);
    }

    #[test]
    fn subsets_enumerate_exactly_the_power_set() {
        let s = Signature::empty().with(2).with(5).with(9);
        let subs: Vec<_> = s.subsets().collect();
        assert_eq!(subs.len(), 8);
        assert_eq!(subs[0], Signature::empty());
        assert_eq!(*subs.last().unwrap(), s);
        for sub in &subs {
            assert!(sub.is_subset_of(s));
        }
        let unique: std::collections::HashSet<_> = subs.iter().collect();
        assert_eq!(unique.len(), 8);
    }

    #[test]
    fn subsets_carry_across_the_word_boundary() {
        // Bits straddling the lane boundary force the `(sub - 1) & mask`
        // walk to borrow from the high word — the classic hand-rolled bug.
        let s = Signature::empty().with(63).with(64).with(65);
        let subs: Vec<_> = s.subsets().collect();
        assert_eq!(subs.len(), 8);
        assert_eq!(*subs.last().unwrap(), s);
        let unique: std::collections::HashSet<_> = subs.iter().collect();
        assert_eq!(unique.len(), 8);
        assert!(subs.contains(&Signature::pair(63, 65)));
    }

    #[test]
    fn full_word_subsets_terminate() {
        // A full low word: 2^4 sampled check would be huge, so use the
        // closed form on a small full() plus the boundary full(64) head.
        let s = Signature::full(4);
        assert_eq!(s.subsets().count(), 16);
        let mut head = Signature::full(64).subsets();
        assert_eq!(head.next(), Some(Signature::empty()));
        assert_eq!(head.next(), Some(Signature::singleton(0)));
    }

    #[test]
    fn display_formats_as_set() {
        assert_eq!(Signature::pair(0, 2).to_string(), "{0,2}");
        assert_eq!(Signature::empty().to_string(), "{}");
        assert_eq!(Signature::pair(63, 64).to_string(), "{63,64}");
    }
}
