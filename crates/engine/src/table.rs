//! Projection tables and path tables.
//!
//! Section 4.2 defines the *projection table* of a subquery: for every
//! combination of boundary-node images and signature it stores the number of
//! colorful matches consistent with that combination. Blocks with one
//! boundary node produce [`UnaryTable`]s, blocks with two produce
//! [`BinaryTable`]s, and the root block (no boundary nodes) produces a plain
//! count. Only non-zero entries are materialised.
//!
//! While a cycle block is being solved, the partially built paths carry up to
//! two additional tracked vertices (the images of the cycle's boundary nodes,
//! which may fall in the middle of a path when the DB algorithm splits at the
//! highest-degree node — Section 5.1, "configurations"). [`PathTable`] holds
//! those working entries keyed by [`PathKey`].

use crate::hash::FastMap;
use crate::signature::Signature;
use sgc_graph::vertex::{VertexId, NO_VERTEX};

/// Number of colorful matches (or partial matches) — always a plain count.
pub type Count = u64;

/// Key of a [`UnaryTable`]: the image of the single boundary node plus the
/// signature of the match.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UnaryKey {
    /// Image of the boundary node.
    pub vertex: VertexId,
    /// Colors used by the match.
    pub sig: Signature,
}

/// Key of a [`BinaryTable`]: images of the two boundary nodes (in the block's
/// boundary order) plus the signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BinaryKey {
    /// Image of the first boundary node.
    pub u: VertexId,
    /// Image of the second boundary node.
    pub v: VertexId,
    /// Colors used by the match.
    pub sig: Signature,
}

/// Projection table of a block with a single boundary node.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnaryTable {
    map: FastMap<UnaryKey, Count>,
}

impl UnaryTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` to the entry for `(vertex, sig)`.
    #[inline]
    pub fn add(&mut self, vertex: VertexId, sig: Signature, count: Count) {
        if count != 0 {
            *self.map.entry(UnaryKey { vertex, sig }).or_insert(0) += count;
        }
    }

    /// The count stored for `(vertex, sig)`, zero if absent.
    pub fn get(&self, vertex: VertexId, sig: Signature) -> Count {
        self.map
            .get(&UnaryKey { vertex, sig })
            .copied()
            .unwrap_or(0)
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over all `(key, count)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&UnaryKey, &Count)> {
        self.map.iter()
    }

    /// Sum of all counts (used when the root block has one boundary node).
    pub fn total(&self) -> Count {
        self.map.values().sum()
    }

    /// Groups the entries by vertex for join-side lookups.
    pub fn group_by_vertex(&self) -> FastMap<VertexId, Vec<(Signature, Count)>> {
        let mut grouped: FastMap<VertexId, Vec<(Signature, Count)>> = FastMap::default();
        for (key, &count) in &self.map {
            grouped
                .entry(key.vertex)
                .or_default()
                .push((key.sig, count));
        }
        grouped
    }

    /// Merges another unary table into this one.
    pub fn merge(&mut self, other: &UnaryTable) {
        for (key, &count) in &other.map {
            *self.map.entry(*key).or_insert(0) += count;
        }
    }
}

/// Projection table of a block with two boundary nodes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BinaryTable {
    map: FastMap<BinaryKey, Count>,
}

impl BinaryTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` to the entry for `(u, v, sig)`.
    #[inline]
    pub fn add(&mut self, u: VertexId, v: VertexId, sig: Signature, count: Count) {
        if count != 0 {
            *self.map.entry(BinaryKey { u, v, sig }).or_insert(0) += count;
        }
    }

    /// The count stored for `(u, v, sig)`, zero if absent.
    pub fn get(&self, u: VertexId, v: VertexId, sig: Signature) -> Count {
        self.map.get(&BinaryKey { u, v, sig }).copied().unwrap_or(0)
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over all `(key, count)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&BinaryKey, &Count)> {
        self.map.iter()
    }

    /// Sum of all counts.
    pub fn total(&self) -> Count {
        self.map.values().sum()
    }

    /// The transposed table: `cnt'(v, u, α) = cnt(u, v, α)`. The paper notes
    /// the two orientations of a block's projection table are transposes of
    /// one another and keeps both; we transpose on demand instead.
    pub fn transpose(&self) -> BinaryTable {
        let mut out = BinaryTable::new();
        for (key, &count) in &self.map {
            out.add(key.v, key.u, key.sig, count);
        }
        out
    }

    /// Groups entries by the first vertex `u`, yielding `(v, sig, count)`
    /// lists — the access pattern of an EdgeJoin against this table.
    pub fn group_by_first(&self) -> FastMap<VertexId, Vec<(VertexId, Signature, Count)>> {
        let mut grouped: FastMap<VertexId, Vec<(VertexId, Signature, Count)>> = FastMap::default();
        for (key, &count) in &self.map {
            grouped
                .entry(key.u)
                .or_default()
                .push((key.v, key.sig, count));
        }
        grouped
    }

    /// Merges another binary table into this one.
    pub fn merge(&mut self, other: &BinaryTable) {
        for (key, &count) in &other.map {
            *self.map.entry(*key).or_insert(0) += count;
        }
    }
}

/// The projection table of a block: scalar for the root (no boundary nodes),
/// unary for one boundary node, binary for two.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProjectionTable {
    /// Total count — blocks with no boundary node (the root).
    Scalar(Count),
    /// One boundary node.
    Unary(UnaryTable),
    /// Two boundary nodes, keyed in the block's boundary order.
    Binary(BinaryTable),
}

impl ProjectionTable {
    /// The total count aggregated over all entries.
    pub fn total(&self) -> Count {
        match self {
            ProjectionTable::Scalar(c) => *c,
            ProjectionTable::Unary(t) => t.total(),
            ProjectionTable::Binary(t) => t.total(),
        }
    }

    /// Number of materialised entries (1 for a scalar).
    pub fn len(&self) -> usize {
        match self {
            ProjectionTable::Scalar(_) => 1,
            ProjectionTable::Unary(t) => t.len(),
            ProjectionTable::Binary(t) => t.len(),
        }
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        match self {
            ProjectionTable::Scalar(c) => *c == 0,
            ProjectionTable::Unary(t) => t.is_empty(),
            ProjectionTable::Binary(t) => t.is_empty(),
        }
    }

    /// The unary table, if this is a unary projection.
    pub fn as_unary(&self) -> Option<&UnaryTable> {
        match self {
            ProjectionTable::Unary(t) => Some(t),
            _ => None,
        }
    }

    /// The binary table, if this is a binary projection.
    pub fn as_binary(&self) -> Option<&BinaryTable> {
        match self {
            ProjectionTable::Binary(t) => Some(t),
            _ => None,
        }
    }
}

/// Key of a [`PathTable`] entry: a partially built path along a cycle.
///
/// `start` and `end` are the images of the path's first and last cycle nodes
/// (the split nodes); `extra` carries the images of up to two tracked cycle
/// boundary nodes encountered along the path ([`NO_VERTEX`] when unused /
/// not yet encountered).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PathKey {
    /// Image of the path's start node (the split node `a_h` / `a_p`).
    pub start: VertexId,
    /// Image of the path's current end node.
    pub end: VertexId,
    /// Images of tracked boundary nodes (slot per boundary node).
    pub extra: [VertexId; 2],
    /// Colors used by the partial match.
    pub sig: Signature,
}

impl PathKey {
    /// A key with no tracked extras.
    pub fn new(start: VertexId, end: VertexId, sig: Signature) -> Self {
        PathKey {
            start,
            end,
            extra: [NO_VERTEX, NO_VERTEX],
            sig,
        }
    }

    /// Returns a copy with `slot` set to `vertex`.
    pub fn with_extra(mut self, slot: usize, vertex: VertexId) -> Self {
        self.extra[slot] = vertex;
        self
    }
}

/// Working table for a path segment of a cycle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PathTable {
    map: FastMap<PathKey, Count>,
}

impl PathTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` to the entry for `key`.
    #[inline]
    pub fn add(&mut self, key: PathKey, count: Count) {
        if count != 0 {
            *self.map.entry(key).or_insert(0) += count;
        }
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over all `(key, count)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&PathKey, &Count)> {
        self.map.iter()
    }

    /// Drains the table into a vector of entries (used to shard work across
    /// threads between join steps).
    pub fn into_entries(self) -> Vec<(PathKey, Count)> {
        self.map.into_iter().collect()
    }

    /// Builds a table from raw entries, summing duplicates.
    pub fn from_entries(entries: impl IntoIterator<Item = (PathKey, Count)>) -> Self {
        let mut t = PathTable::new();
        for (k, c) in entries {
            t.add(k, c);
        }
        t
    }

    /// Groups entries by `(start, end)` pair — the access pattern of the final
    /// path-merge join.
    pub fn group_by_endpoints(&self) -> FastMap<(VertexId, VertexId), Vec<(PathKey, Count)>> {
        let mut grouped: FastMap<(VertexId, VertexId), Vec<(PathKey, Count)>> = FastMap::default();
        for (&key, &count) in &self.map {
            grouped
                .entry((key.start, key.end))
                .or_default()
                .push((key, count));
        }
        grouped
    }

    /// Merges another path table into this one.
    pub fn merge(&mut self, other: PathTable) {
        for (key, count) in other.map {
            *self.map.entry(key).or_insert(0) += count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_table_accumulates() {
        let mut t = UnaryTable::new();
        t.add(3, Signature::singleton(1), 2);
        t.add(3, Signature::singleton(1), 5);
        t.add(4, Signature::singleton(2), 1);
        t.add(9, Signature::singleton(0), 0); // ignored
        assert_eq!(t.get(3, Signature::singleton(1)), 7);
        assert_eq!(t.get(3, Signature::singleton(2)), 0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.total(), 8);
    }

    #[test]
    fn binary_table_transpose() {
        let mut t = BinaryTable::new();
        t.add(1, 2, Signature::pair(0, 1), 5);
        t.add(2, 1, Signature::pair(0, 1), 3);
        let tt = t.transpose();
        assert_eq!(tt.get(2, 1, Signature::pair(0, 1)), 5);
        assert_eq!(tt.get(1, 2, Signature::pair(0, 1)), 3);
        assert_eq!(tt.total(), t.total());
    }

    #[test]
    fn binary_group_by_first() {
        let mut t = BinaryTable::new();
        t.add(1, 2, Signature::pair(0, 1), 5);
        t.add(1, 3, Signature::pair(0, 2), 4);
        t.add(2, 3, Signature::pair(1, 2), 1);
        let grouped = t.group_by_first();
        assert_eq!(grouped[&1].len(), 2);
        assert_eq!(grouped[&2].len(), 1);
        assert!(!grouped.contains_key(&3));
    }

    #[test]
    fn projection_table_totals() {
        assert_eq!(ProjectionTable::Scalar(11).total(), 11);
        let mut u = UnaryTable::new();
        u.add(0, Signature::singleton(0), 4);
        assert_eq!(ProjectionTable::Unary(u).total(), 4);
        assert!(ProjectionTable::Scalar(0).is_empty());
    }

    #[test]
    fn path_table_merge_and_group() {
        let k1 = PathKey::new(1, 5, Signature::pair(0, 1));
        let k2 = PathKey::new(1, 5, Signature::pair(0, 2)).with_extra(0, 9);
        let mut a = PathTable::new();
        a.add(k1, 2);
        let mut b = PathTable::new();
        b.add(k1, 3);
        b.add(k2, 1);
        a.merge(b);
        assert_eq!(a.len(), 2);
        let grouped = a.group_by_endpoints();
        assert_eq!(grouped[&(1, 5)].len(), 2);
        let rebuilt = PathTable::from_entries(a.clone().into_entries());
        assert_eq!(rebuilt, a);
    }

    #[test]
    fn path_key_extras() {
        let k = PathKey::new(0, 1, Signature::empty())
            .with_extra(0, 7)
            .with_extra(1, 9);
        assert_eq!(k.extra, [7, 9]);
        assert_ne!(k, PathKey::new(0, 1, Signature::empty()));
    }

    #[test]
    fn unary_group_by_vertex() {
        let mut t = UnaryTable::new();
        t.add(5, Signature::singleton(0), 1);
        t.add(5, Signature::singleton(1), 2);
        t.add(6, Signature::singleton(2), 3);
        let g = t.group_by_vertex();
        assert_eq!(g[&5].len(), 2);
        assert_eq!(g[&6], vec![(Signature::singleton(2), 3)]);
    }
}
