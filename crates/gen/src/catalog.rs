//! Synthetic analogs of the paper's Table 1 benchmark graphs.
//!
//! Each entry matches one row of Table 1 by name, domain, vertex count, edge
//! count and degree skew. Because the real SNAP / Open Connectome datasets
//! are not bundled, each analog is generated from the model that best matches
//! the row's characteristics:
//!
//! * skewed social / communication / citation graphs → Chung-Lu with a
//!   truncated power-law degree sequence tuned so that the average degree and
//!   the rough maximum degree match the row,
//! * `roadNetCA` → the low-skew [`crate::road::road_like`] generator,
//! * a generic R-MAT entry is used by the weak-scaling experiment.
//!
//! Every spec carries a `scale` so the full-size graphs can be shrunk to
//! laptop-friendly sizes while preserving the degree-distribution shape; the
//! experiment binaries default to `scale = 1/16` of the paper sizes and
//! print the scale they used.

use crate::chung_lu::chung_lu;
use crate::power_law::power_law_degrees;
use crate::road::road_like;
use sgc_graph::CsrGraph;

/// Which generative model backs a catalog entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphModel {
    /// Chung-Lu with a truncated power-law degree sequence of the given
    /// exponent, scaled so the average degree matches the Table 1 row.
    PowerLawChungLu {
        /// Power-law exponent α ∈ (1, 2); smaller = heavier tail.
        alpha: f64,
    },
    /// Low-skew road-like grid.
    RoadLike,
}

/// A named synthetic analog of a Table 1 graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphSpec {
    /// Graph name as it appears in Table 1.
    pub name: &'static str,
    /// Domain column of Table 1.
    pub domain: &'static str,
    /// Number of vertices in the paper's dataset.
    pub paper_vertices: usize,
    /// Number of edges in the paper's dataset.
    pub paper_edges: usize,
    /// Average degree reported in Table 1.
    pub paper_avg_degree: f64,
    /// Maximum degree reported in Table 1.
    pub paper_max_degree: usize,
    /// Generative model used for the analog.
    pub model: GraphModel,
}

impl GraphSpec {
    /// Generates the analog at `scale` (1.0 = paper size, 1/16 = default
    /// laptop size). The degree *distribution shape* is preserved; only the
    /// vertex count shrinks.
    pub fn generate(&self, scale: f64, seed: u64) -> CsrGraph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = ((self.paper_vertices as f64 * scale).round() as usize).max(64);
        match self.model {
            GraphModel::PowerLawChungLu { alpha } => {
                let mut degrees = power_law_degrees(n, alpha);
                // Rescale the sequence so its mean matches the paper's
                // average degree (keeping every entry ≥ 1).
                let mean: f64 = degrees.iter().sum::<f64>() / n as f64;
                let factor = (self.paper_avg_degree / mean).max(f64::MIN_POSITIVE);
                for d in &mut degrees {
                    *d = (*d * factor).max(1.0);
                }
                chung_lu(&degrees, seed)
            }
            GraphModel::RoadLike => {
                let side = (n as f64).sqrt().round() as usize;
                road_like(side.max(2), 0.65, 0.02, seed)
            }
        }
    }
}

/// The ten rows of Table 1 as synthetic analogs.
///
/// Exponents were chosen so that higher-skew rows (enron, slashdot, epinions)
/// get heavier tails than collaboration networks; `roadNetCA` uses the
/// road-like generator.
pub const TABLE1_ANALOGS: &[GraphSpec] = &[
    GraphSpec {
        name: "brightkite",
        domain: "Geo loc.",
        paper_vertices: 58_000,
        paper_edges: 214_000,
        paper_avg_degree: 4.0,
        paper_max_degree: 1135,
        model: GraphModel::PowerLawChungLu { alpha: 1.45 },
    },
    GraphSpec {
        name: "condMat",
        domain: "Collab.",
        paper_vertices: 23_000,
        paper_edges: 93_000,
        paper_avg_degree: 4.0,
        paper_max_degree: 281,
        model: GraphModel::PowerLawChungLu { alpha: 1.7 },
    },
    GraphSpec {
        name: "astroph",
        domain: "Collab.",
        paper_vertices: 18_000,
        paper_edges: 198_000,
        paper_avg_degree: 11.0,
        paper_max_degree: 504,
        model: GraphModel::PowerLawChungLu { alpha: 1.7 },
    },
    GraphSpec {
        name: "enron",
        domain: "Commn.",
        paper_vertices: 36_000,
        paper_edges: 180_000,
        paper_avg_degree: 5.0,
        paper_max_degree: 1385,
        model: GraphModel::PowerLawChungLu { alpha: 1.4 },
    },
    GraphSpec {
        name: "hepph",
        domain: "Citation",
        paper_vertices: 34_000,
        paper_edges: 421_000,
        paper_avg_degree: 12.0,
        paper_max_degree: 848,
        model: GraphModel::PowerLawChungLu { alpha: 1.6 },
    },
    GraphSpec {
        name: "slashdot",
        domain: "Soc. net.",
        paper_vertices: 82_000,
        paper_edges: 900_000,
        paper_avg_degree: 11.0,
        paper_max_degree: 2554,
        model: GraphModel::PowerLawChungLu { alpha: 1.45 },
    },
    GraphSpec {
        name: "epinions",
        domain: "Soc. net.",
        paper_vertices: 131_000,
        paper_edges: 841_000,
        paper_avg_degree: 6.0,
        paper_max_degree: 3558,
        model: GraphModel::PowerLawChungLu { alpha: 1.35 },
    },
    GraphSpec {
        name: "orkut",
        domain: "Soc. net.",
        paper_vertices: 524_000,
        paper_edges: 1_300_000,
        paper_avg_degree: 3.0,
        paper_max_degree: 1634,
        model: GraphModel::PowerLawChungLu { alpha: 1.5 },
    },
    GraphSpec {
        name: "roadNetCA",
        domain: "Road net.",
        paper_vertices: 2_000_000,
        paper_edges: 2_700_000,
        paper_avg_degree: 1.3,
        paper_max_degree: 14,
        model: GraphModel::RoadLike,
    },
    GraphSpec {
        name: "brain",
        domain: "Biology",
        paper_vertices: 400_000,
        paper_edges: 1_100_000,
        paper_avg_degree: 3.0,
        paper_max_degree: 286,
        model: GraphModel::PowerLawChungLu { alpha: 1.65 },
    },
];

/// Looks up a catalog entry by its Table 1 name (case-insensitive).
pub fn spec_by_name(name: &str) -> Option<&'static GraphSpec> {
    TABLE1_ANALOGS
        .iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_graph::DegreeStats;

    #[test]
    fn catalog_has_all_ten_rows() {
        assert_eq!(TABLE1_ANALOGS.len(), 10);
        assert!(spec_by_name("enron").is_some());
        assert!(spec_by_name("ENRON").is_some());
        assert!(spec_by_name("facebook").is_none());
    }

    #[test]
    fn generated_analog_matches_avg_degree_roughly() {
        let spec = spec_by_name("condMat").unwrap();
        let g = spec.generate(0.05, 1);
        let stats = DegreeStats::compute(&g);
        assert!(
            (stats.avg_degree - spec.paper_avg_degree).abs() < spec.paper_avg_degree,
            "avg degree {} too far from paper value {}",
            stats.avg_degree,
            spec.paper_avg_degree
        );
    }

    #[test]
    fn skewed_rows_are_more_skewed_than_road() {
        let enron = spec_by_name("enron").unwrap().generate(0.05, 2);
        let road = spec_by_name("roadNetCA").unwrap().generate(0.002, 2);
        let skew_enron = DegreeStats::compute(&enron).skew();
        let skew_road = DegreeStats::compute(&road).skew();
        assert!(
            skew_enron > 3.0 * skew_road,
            "enron analog skew {skew_enron} should dominate road skew {skew_road}"
        );
    }

    #[test]
    fn scale_changes_size_not_shape() {
        let spec = spec_by_name("astroph").unwrap();
        let small = spec.generate(0.02, 3);
        let big = spec.generate(0.08, 3);
        assert!(big.num_vertices() > 2 * small.num_vertices());
        let s_small = DegreeStats::compute(&small);
        let s_big = DegreeStats::compute(&big);
        assert!((s_small.avg_degree - s_big.avg_degree).abs() < 0.5 * s_big.avg_degree + 2.0);
    }

    #[test]
    #[should_panic]
    fn zero_scale_panics() {
        let _ = TABLE1_ANALOGS[0].generate(0.0, 0);
    }
}
