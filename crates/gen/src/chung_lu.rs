//! Chung-Lu random graphs.
//!
//! The Chung-Lu model (Section 9.2 of the paper) takes an expected degree
//! sequence `d = (d_1, ..., d_n)` with `2m = Σ d_u` and includes each edge
//! `(u, v)` independently with probability `min(d_u d_v / 2m, 1)`. The
//! expected degree of `u` is then `d_u`.
//!
//! A naive sampler costs `O(n²)`; this module implements the
//! Miller–Hagberg skipping sampler, which sorts the weights in decreasing
//! order and geometrically skips over non-edges, giving `O(n + m)` expected
//! time while sampling from exactly the same distribution.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sgc_graph::{CsrGraph, GraphBuilder, VertexId};

/// Samples a Chung-Lu graph with the given expected degree sequence.
///
/// Vertex ids are randomly permuted so that a vertex's id carries no
/// information about its degree (the DB order breaks ties by id, so this
/// avoids accidental correlation in experiments).
///
/// # Panics
/// Panics if the sequence is empty or contains a non-positive weight.
pub fn chung_lu(expected_degrees: &[f64], seed: u64) -> CsrGraph {
    assert!(!expected_degrees.is_empty(), "empty degree sequence");
    assert!(
        expected_degrees.iter().all(|&d| d > 0.0),
        "expected degrees must be positive"
    );
    let n = expected_degrees.len();
    let total_weight: f64 = expected_degrees.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);

    // Sort weights descending, remembering original positions.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| {
        expected_degrees[b]
            .partial_cmp(&expected_degrees[a])
            .unwrap()
    });
    let weights: Vec<f64> = order.iter().map(|&i| expected_degrees[i]).collect();

    // Random relabeling of the sorted positions to final vertex ids.
    let mut relabel: Vec<VertexId> = (0..n as VertexId).collect();
    relabel.shuffle(&mut rng);

    let mut builder = GraphBuilder::with_capacity(n, (total_weight / 2.0) as usize + 16);

    // Miller-Hagberg: for each u (in decreasing-weight order) walk v > u with
    // geometric skips based on an upper bound p on the true probability q;
    // since weights are sorted descending, q is non-increasing in v and the
    // rejection step `accept with prob q/p` corrects the bound exactly.
    for u in 0..n {
        let wu = weights[u];
        let mut v = u + 1;
        if v >= n {
            break;
        }
        let mut p = (wu * weights[v] / total_weight).min(1.0);
        while v < n && p > 0.0 {
            if p < 1.0 {
                let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let skip = (r.ln() / (1.0 - p).ln()).floor();
                // Guard against pathological large skips overflowing usize.
                if skip >= (n - v) as f64 {
                    break;
                }
                v += skip as usize;
            }
            if v < n {
                let q = (wu * weights[v] / total_weight).min(1.0);
                if rng.gen::<f64>() < q / p {
                    builder.add_edge(relabel[u], relabel[v]);
                }
                p = q;
                v += 1;
            }
        }
    }
    builder.build()
}

/// Samples a Chung-Lu graph with the naive `O(n²)` per-pair Bernoulli sampler.
///
/// Used by tests and the theory experiments to cross-check the fast sampler
/// on small inputs; both samplers draw from the same distribution.
pub fn chung_lu_naive(expected_degrees: &[f64], seed: u64) -> CsrGraph {
    assert!(!expected_degrees.is_empty(), "empty degree sequence");
    let n = expected_degrees.len();
    let total_weight: f64 = expected_degrees.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (expected_degrees[u] * expected_degrees[v] / total_weight).min(1.0);
            if rng.gen::<f64>() < p {
                builder.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_law::power_law_degrees;

    #[test]
    fn expected_edge_count_is_respected() {
        let n = 2000;
        let degrees = vec![6.0; n];
        let g = chung_lu(&degrees, 7);
        let expected_m = 6.0 * n as f64 / 2.0;
        let m = g.num_edges() as f64;
        assert!(
            (m - expected_m).abs() < expected_m * 0.15,
            "edge count {m} far from expected {expected_m}"
        );
    }

    #[test]
    fn fast_and_naive_samplers_agree_in_distribution() {
        // Compare average edge counts over a few seeds on a small skewed sequence.
        let degrees = power_law_degrees(300, 1.5);
        let trials = 8;
        let fast: f64 = (0..trials)
            .map(|s| chung_lu(&degrees, s).num_edges() as f64)
            .sum::<f64>()
            / trials as f64;
        let naive: f64 = (0..trials)
            .map(|s| chung_lu_naive(&degrees, 1000 + s).num_edges() as f64)
            .sum::<f64>()
            / trials as f64;
        assert!(
            (fast - naive).abs() < 0.25 * naive.max(1.0),
            "fast {fast} vs naive {naive} edge counts diverge"
        );
    }

    #[test]
    fn high_weight_vertices_get_high_degree() {
        let n = 3000;
        let mut degrees = vec![2.0; n];
        degrees[0] = 50.0; // will be relabeled, so check max degree instead
        let g = chung_lu(&degrees, 3);
        assert!(
            g.max_degree() >= 25,
            "a weight-50 vertex should end up with degree near 50, got {}",
            g.max_degree()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let degrees = power_law_degrees(500, 1.6);
        let a = chung_lu(&degrees, 11);
        let b = chung_lu(&degrees, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn graph_is_simple() {
        let degrees = power_law_degrees(400, 1.4);
        let g = chung_lu(&degrees, 5);
        for u in g.vertices() {
            assert!(!g.has_edge(u, u));
            let nb = g.neighbors(u);
            assert!(
                nb.windows(2).all(|w| w[0] < w[1]),
                "sorted, deduped adjacency"
            );
        }
    }
}
