//! Erdős–Rényi random graphs.
//!
//! Used as low-skew baselines in tests and in the property-based correctness
//! suite (random small graphs on which brute force, PS and DB must agree).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sgc_graph::{CsrGraph, GraphBuilder, VertexId};

/// Samples `G(n, m)`: a graph with `n` vertices and (up to) `m` distinct
/// uniformly random edges.
pub fn gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m);
    if n < 2 {
        return builder.build();
    }
    let max_edges = n * (n - 1) / 2;
    let target = m.min(max_edges);
    // Rejection sampling is fine for the sparse graphs we generate.
    let mut seen = std::collections::HashSet::with_capacity(target * 2);
    let mut guard = 0usize;
    while seen.len() < target && guard < target * 50 + 1000 {
        guard += 1;
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            builder.add_edge(key.0, key.1);
        }
    }
    builder.build()
}

/// Samples `G(n, p)`: each of the `n(n-1)/2` possible edges appears
/// independently with probability `p`. Quadratic; intended for small `n`.
pub fn gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                builder.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_requested_edges_when_feasible() {
        let g = gnm(100, 300, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 300);
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let g = gnm(5, 1000, 2);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 3).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 3).num_edges(), 45);
    }

    #[test]
    fn gnp_density_close_to_p() {
        let g = gnp(200, 0.1, 4);
        let expected = 0.1 * (200.0 * 199.0 / 2.0);
        let m = g.num_edges() as f64;
        assert!((m - expected).abs() < expected * 0.3);
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        assert_eq!(gnm(0, 10, 0).num_vertices(), 0);
        assert_eq!(gnm(1, 10, 0).num_edges(), 0);
        assert_eq!(gnp(1, 0.5, 0).num_edges(), 0);
    }
}
