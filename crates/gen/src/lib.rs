//! # sgc-gen — synthetic data-graph generators
//!
//! The paper evaluates on nine SNAP graphs plus a human-brain network
//! (Table 1) and on R-MAT graphs for weak scaling. Those datasets cannot be
//! redistributed here, so this crate provides the generators used to build
//! *synthetic analogs* with the same sizes and degree-distribution skew:
//!
//! * [`mod@chung_lu`] — the Chung-Lu random-graph model (the model analysed in
//!   Section 9 of the paper) with an exact O(n + m) sampler,
//! * [`power_law`] — truncated power-law expected-degree sequences
//!   (Section 9.2's definition),
//! * [`mod@rmat`] — the R-MAT generator with the Graph 500 parameters used for
//!   the weak-scaling study (Section 8.4),
//! * [`erdos_renyi`] — uniform random graphs for baselines and tests,
//! * [`road`] — a low-skew, grid-like generator standing in for roadNetCA,
//! * [`catalog`] — named analogs of each row of Table 1, scalable down to
//!   laptop sizes,
//! * [`small`] — deterministic small graphs (cliques, cycles, Petersen,
//!   Zachary's karate club) for unit tests and examples.

pub mod catalog;
pub mod chung_lu;
pub mod erdos_renyi;
pub mod power_law;
pub mod rmat;
pub mod road;
pub mod small;

pub use catalog::{GraphSpec, TABLE1_ANALOGS};
pub use chung_lu::chung_lu;
pub use erdos_renyi::{gnm, gnp};
pub use power_law::power_law_degrees;
pub use rmat::{rmat, RmatParams};
pub use road::road_like;
