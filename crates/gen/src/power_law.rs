//! Truncated power-law expected-degree sequences.
//!
//! Section 9.2 of the paper defines a degree sequence as satisfying the
//! *truncated power law* with exponent `α ∈ (1, 2)` when, for each
//! `0 ≤ j ≤ ½·log₂ n`, the number of vertices with degree in `[2^j, 2^{j+1})`
//! is `Θ(n / 2^{αj})`. The maximum degree is therefore `≈ √n`, and such
//! sequences are `λ`-balanced for `λ = O(n^{α/2 - 1})` (Claim 10.1).
//!
//! [`power_law_degrees`] produces exactly that shape deterministically: for
//! every bucket `j` it emits `⌈n / 2^{αj}⌉` vertices of degree `2^j`, then
//! truncates or pads with degree-1 vertices so that precisely `n` degrees are
//! returned.

/// Generates a truncated power-law degree sequence of length `n` with
/// exponent `alpha`.
///
/// Degrees are capped at `√n` per the model's assumption `max d_u ≤ √n`.
///
/// # Panics
/// Panics unless `1.0 < alpha < 2.0` and `n > 0`.
pub fn power_law_degrees(n: usize, alpha: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one vertex");
    assert!(
        alpha > 1.0 && alpha < 2.0,
        "truncated power law requires alpha in (1, 2), got {alpha}"
    );
    let max_bucket = (0.5 * (n as f64).log2()).floor() as u32;
    // Normalise the bucket sizes so that Σ_j c·n/2^{αj} = n exactly: the
    // paper's Θ(n/2^{αj}) counts determine the shape, the constant c the total.
    let norm: f64 = (0..=max_bucket).map(|j| 2f64.powf(-alpha * j as f64)).sum();
    let mut degrees: Vec<f64> = Vec::with_capacity(n);
    // Highest-degree vertices first so truncation to n keeps the tail intact.
    for j in (0..=max_bucket).rev() {
        let count = ((n as f64 / norm) / 2f64.powf(alpha * j as f64)).ceil() as usize;
        let degree = 2f64.powi(j as i32).min((n as f64).sqrt());
        for _ in 0..count {
            if degrees.len() == n {
                return normalize_order(degrees);
            }
            degrees.push(degree.max(1.0));
        }
    }
    while degrees.len() < n {
        degrees.push(1.0);
    }
    normalize_order(degrees)
}

/// Sorts ascending so that vertex id correlates with degree only through the
/// caller's shuffling; generators shuffle ids themselves.
fn normalize_order(mut degrees: Vec<f64>) -> Vec<f64> {
    degrees.sort_by(|a, b| a.partial_cmp(b).unwrap());
    degrees
}

/// Sum of the s-th powers of a degree sequence, `Σ d_u^s`, the moments that
/// drive the runtime bounds of Section 9.
pub fn degree_moment(degrees: &[f64], s: f64) -> f64 {
    degrees.iter().map(|&d| d.powf(s)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_has_requested_length_and_min_degree_one() {
        for &n in &[10usize, 100, 1000, 4096] {
            let d = power_law_degrees(n, 1.5);
            assert_eq!(d.len(), n);
            assert!(d.iter().all(|&x| x >= 1.0));
        }
    }

    #[test]
    fn max_degree_is_at_most_sqrt_n() {
        let n = 10_000;
        let d = power_law_degrees(n, 1.3);
        let max = d.iter().cloned().fold(0.0f64, f64::max);
        assert!(max <= (n as f64).sqrt() + 1e-9);
        assert!(
            max >= (n as f64).sqrt() / 4.0,
            "tail should reach close to sqrt(n)"
        );
    }

    #[test]
    fn smaller_alpha_gives_heavier_tail() {
        let n = 10_000;
        let heavy = power_law_degrees(n, 1.2);
        let light = power_law_degrees(n, 1.9);
        let sum2_heavy = degree_moment(&heavy, 2.0);
        let sum2_light = degree_moment(&light, 2.0);
        assert!(
            sum2_heavy > sum2_light,
            "alpha=1.2 second moment {sum2_heavy} should exceed alpha=1.9 {sum2_light}"
        );
    }

    #[test]
    fn bucket_counts_follow_power_law_shape() {
        let n = 1 << 14;
        let alpha = 1.5;
        let d = power_law_degrees(n, alpha);
        // Count vertices with degree in [2^j, 2^{j+1}) for a few buckets and
        // check the ratio between consecutive buckets is roughly 2^alpha.
        let mut buckets = [0usize; 16];
        for &x in &d {
            let j = (x.log2().floor() as usize).min(15);
            buckets[j] += 1;
        }
        for j in 0..4 {
            if buckets[j + 1] == 0 {
                continue;
            }
            let ratio = buckets[j] as f64 / buckets[j + 1] as f64;
            assert!(
                ratio > 2f64.powf(alpha) * 0.5 && ratio < 2f64.powf(alpha) * 2.0,
                "bucket ratio {ratio} at j={j} not near 2^alpha"
            );
        }
    }

    #[test]
    #[should_panic]
    fn alpha_out_of_range_panics() {
        let _ = power_law_degrees(100, 2.5);
    }

    #[test]
    fn moments_are_monotone_in_s() {
        let d = power_law_degrees(1000, 1.5);
        let m1 = degree_moment(&d, 1.0);
        let m2 = degree_moment(&d, 2.0);
        assert!(m2 >= m1);
    }
}
