//! R-MAT recursive-matrix graph generator.
//!
//! The paper's weak-scaling study (Section 8.4) uses R-MAT graphs with the
//! Graph 500 parameters `A = 0.5, B = 0.1, C = 0.1, D = 0.3` and edge
//! factor 16. R-MAT recursively subdivides the adjacency matrix into four
//! quadrants and drops each edge into a quadrant with those probabilities,
//! producing skewed, community-like degree distributions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sgc_graph::{CsrGraph, GraphBuilder, VertexId};

/// R-MAT quadrant probabilities and edge factor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant.
    pub d: f64,
    /// Number of generated edges per vertex (before dedup).
    pub edge_factor: usize,
}

impl RmatParams {
    /// The parameters used by the paper's weak-scaling experiment
    /// (Graph 500 specification): `A=0.5, B=0.1, C=0.1, D=0.3`, edge factor 16.
    pub fn paper() -> Self {
        RmatParams {
            a: 0.5,
            b: 0.1,
            c: 0.1,
            d: 0.3,
            edge_factor: 16,
        }
    }

    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "R-MAT probabilities must sum to 1, got {sum}"
        );
        assert!(self.edge_factor > 0, "edge factor must be positive");
    }
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams::paper()
    }
}

/// Generates an R-MAT graph with `2^scale` vertices.
///
/// Self-loops and duplicate edges produced by the recursive process are
/// removed, so the final edge count is slightly below
/// `edge_factor * 2^scale`, as in standard Graph 500 practice.
pub fn rmat(scale: u32, params: RmatParams, seed: u64) -> CsrGraph {
    params.validate();
    let n = 1usize << scale;
    let target_edges = n * params.edge_factor;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, target_edges);
    for _ in 0..target_edges {
        let (u, v) = sample_edge(scale, &params, &mut rng);
        builder.add_edge(u, v);
    }
    builder.build()
}

fn sample_edge(scale: u32, p: &RmatParams, rng: &mut StdRng) -> (VertexId, VertexId) {
    let mut u = 0u64;
    let mut v = 0u64;
    for _ in 0..scale {
        let r: f64 = rng.gen();
        let (du, dv) = if r < p.a {
            (0, 0)
        } else if r < p.a + p.b {
            (0, 1)
        } else if r < p.a + p.b + p.c {
            (1, 0)
        } else {
            (1, 1)
        };
        u = (u << 1) | du;
        v = (v << 1) | dv;
    }
    (u as VertexId, v as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_graph::DegreeStats;

    #[test]
    fn paper_params_sum_to_one() {
        RmatParams::paper().validate();
    }

    #[test]
    fn vertex_and_edge_counts_are_plausible() {
        let g = rmat(10, RmatParams::paper(), 1);
        assert_eq!(g.num_vertices(), 1024);
        // Dedup removes some edges but the bulk should remain.
        assert!(g.num_edges() > 1024 * 16 / 3);
        assert!(g.num_edges() <= 1024 * 16);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(12, RmatParams::paper(), 2);
        let stats = DegreeStats::compute(&g);
        assert!(
            stats.skew() > 5.0,
            "R-MAT with Graph500 params should be skewed, got skew {}",
            stats.skew()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(8, RmatParams::paper(), 9);
        let b = rmat(8, RmatParams::paper(), 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn invalid_probabilities_panic() {
        let p = RmatParams {
            a: 0.9,
            b: 0.9,
            c: 0.0,
            d: 0.0,
            edge_factor: 4,
        };
        let _ = rmat(4, p, 0);
    }
}
