//! Low-skew, road-network-like graphs.
//!
//! roadNetCA in Table 1 has average degree 1.3 and maximum degree 14 — almost
//! no skew — and the paper observes that such graphs are an order of
//! magnitude cheaper than social graphs of comparable size (Section 8.2).
//! This generator reproduces that regime: a 2D grid where each cell keeps a
//! random subset of its lattice edges plus a sprinkling of short "shortcut"
//! edges, yielding bounded degree and long shortest paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sgc_graph::{CsrGraph, GraphBuilder, VertexId};

/// Generates a road-like graph on a `side × side` grid.
///
/// `keep_prob` is the probability of keeping each lattice edge;
/// `shortcut_fraction` adds that fraction of `n` extra short diagonal edges.
pub fn road_like(side: usize, keep_prob: f64, shortcut_fraction: f64, seed: u64) -> CsrGraph {
    assert!(side >= 2, "grid side must be at least 2");
    assert!((0.0..=1.0).contains(&keep_prob));
    let n = side * side;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, 2 * n);
    let id = |x: usize, y: usize| (x * side + y) as VertexId;
    for x in 0..side {
        for y in 0..side {
            if x + 1 < side && rng.gen::<f64>() < keep_prob {
                builder.add_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < side && rng.gen::<f64>() < keep_prob {
                builder.add_edge(id(x, y), id(x, y + 1));
            }
        }
    }
    let shortcuts = (n as f64 * shortcut_fraction) as usize;
    for _ in 0..shortcuts {
        let x = rng.gen_range(0..side - 1);
        let y = rng.gen_range(0..side - 1);
        builder.add_edge(id(x, y), id(x + 1, y + 1));
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_graph::DegreeStats;

    #[test]
    fn degree_is_bounded() {
        let g = road_like(60, 0.7, 0.1, 1);
        assert_eq!(g.num_vertices(), 3600);
        // Grid + diagonal shortcuts: degree can never exceed 8.
        assert!(g.max_degree() <= 8);
    }

    #[test]
    fn skew_is_low() {
        let g = road_like(80, 0.65, 0.05, 2);
        let stats = DegreeStats::compute(&g);
        assert!(
            stats.skew() < 6.0,
            "road-like graphs must have low skew, got {}",
            stats.skew()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(road_like(20, 0.6, 0.1, 5), road_like(20, 0.6, 0.1, 5));
    }

    #[test]
    fn keep_prob_zero_gives_only_shortcuts() {
        let g = road_like(10, 0.0, 0.0, 3);
        assert_eq!(g.num_edges(), 0);
    }
}
