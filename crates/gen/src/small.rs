//! Deterministic small graphs for tests and examples.
//!
//! These include the classic structured graphs (paths, cycles, cliques,
//! stars, grids, the Petersen graph) and Zachary's karate-club network — a
//! tiny real social network in the public domain — so that examples can show
//! the counting pipeline on a "real" graph without shipping large datasets.

use sgc_graph::{CsrGraph, GraphBuilder, VertexId};

/// Path graph `P_n` on `n` vertices.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge((i - 1) as VertexId, i as VertexId);
    }
    b.build()
}

/// Cycle graph `C_n` on `n ≥ 3` vertices.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i as VertexId, ((i + 1) % n) as VertexId);
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
    b.build()
}

/// Star graph with one center (id 0) and `leaves` leaves.
pub fn star(leaves: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(leaves + 1);
    for v in 1..=leaves {
        b.add_edge(0, v as VertexId);
    }
    b.build()
}

/// 2D grid graph of `rows × cols` vertices.
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
        }
    }
    b.build()
}

/// The Petersen graph (10 vertices, 15 edges, girth 5).
pub fn petersen() -> CsrGraph {
    let mut b = GraphBuilder::new(10);
    // Outer 5-cycle 0..4, inner 5-cycle 5..9 connected as a pentagram.
    for i in 0..5u32 {
        b.add_edge(i, (i + 1) % 5);
        b.add_edge(5 + i, 5 + (i + 2) % 5);
        b.add_edge(i, 5 + i);
    }
    b.build()
}

/// Zachary's karate-club network: 34 vertices, 78 edges.
pub fn karate_club() -> CsrGraph {
    const EDGES: &[(VertexId, VertexId)] = &[
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (0, 5),
        (0, 6),
        (0, 7),
        (0, 8),
        (0, 10),
        (0, 11),
        (0, 12),
        (0, 13),
        (0, 17),
        (0, 19),
        (0, 21),
        (0, 31),
        (1, 2),
        (1, 3),
        (1, 7),
        (1, 13),
        (1, 17),
        (1, 19),
        (1, 21),
        (1, 30),
        (2, 3),
        (2, 7),
        (2, 8),
        (2, 9),
        (2, 13),
        (2, 27),
        (2, 28),
        (2, 32),
        (3, 7),
        (3, 12),
        (3, 13),
        (4, 6),
        (4, 10),
        (5, 6),
        (5, 10),
        (5, 16),
        (6, 16),
        (8, 30),
        (8, 32),
        (8, 33),
        (9, 33),
        (13, 33),
        (14, 32),
        (14, 33),
        (15, 32),
        (15, 33),
        (18, 32),
        (18, 33),
        (19, 33),
        (20, 32),
        (20, 33),
        (22, 32),
        (22, 33),
        (23, 25),
        (23, 27),
        (23, 29),
        (23, 32),
        (23, 33),
        (24, 25),
        (24, 27),
        (24, 31),
        (25, 31),
        (26, 29),
        (26, 33),
        (27, 33),
        (28, 31),
        (28, 33),
        (29, 32),
        (29, 33),
        (30, 32),
        (30, 33),
        (31, 32),
        (31, 33),
        (32, 33),
    ];
    let mut b = GraphBuilder::new(34);
    b.extend_edges(EDGES.iter().copied());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_cycle_counts() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(cycle(3).num_edges(), 3);
    }

    #[test]
    fn complete_graph_edges() {
        assert_eq!(complete(6).num_edges(), 15);
        assert_eq!(complete(1).num_edges(), 0);
    }

    #[test]
    fn star_degrees() {
        let g = star(7);
        assert_eq!(g.degree(0), 7);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // horizontal + vertical
    }

    #[test]
    fn petersen_is_cubic_with_15_edges() {
        let g = petersen();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 15);
        for u in g.vertices() {
            assert_eq!(g.degree(u), 3);
        }
    }

    #[test]
    fn karate_club_has_known_size() {
        let g = karate_club();
        assert_eq!(g.num_vertices(), 34);
        assert_eq!(g.num_edges(), 78);
        assert_eq!(g.max_degree(), 17); // vertex 33 (the instructor)
        let comp = g.connected_components();
        assert!(
            comp.iter().all(|&c| c == 0),
            "karate club must be connected"
        );
    }

    #[test]
    #[should_panic]
    fn cycle_of_length_two_panics() {
        let _ = cycle(2);
    }
}
