//! Edge-list builder producing [`CsrGraph`]s.
//!
//! The builder accepts edges in any order, ignores self loops, deduplicates
//! parallel edges and symmetrises the adjacency, mirroring the preprocessing
//! the paper applies to the SNAP graphs (which are treated as simple
//! undirected graphs).

use crate::csr::CsrGraph;
use crate::vertex::VertexId;

/// Accumulates an edge list and produces a clean [`CsrGraph`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices
    /// (ids `0..num_vertices`).
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with a pre-reserved edge capacity.
    pub fn with_capacity(num_vertices: usize, edge_capacity: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::with_capacity(edge_capacity),
        }
    }

    /// Number of vertices the final graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge. Self loops are silently dropped; duplicates
    /// are removed at [`build`](Self::build) time. Endpoints beyond the
    /// declared vertex count grow the graph.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        if u == v {
            return;
        }
        let max = u.max(v) as usize;
        if max >= self.num_vertices {
            self.num_vertices = max + 1;
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Adds every edge of an iterator.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
    }

    /// Finalises the builder into a [`CsrGraph`].
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        // Count degrees, then fill adjacency lists.
        let n = self.num_vertices;
        let mut adjacency: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for &(u, v) in &self.edges {
            adjacency[u as usize].push(v);
            adjacency[v as usize].push(u);
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        CsrGraph::from_sorted_adjacency(adjacency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_and_self_loops_are_removed() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        b.add_edge(2, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn vertex_count_grows_to_fit_edges() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 7);
        let g = b.build();
        assert_eq!(g.num_vertices(), 8);
        assert!(g.has_edge(7, 0));
    }

    #[test]
    fn extend_edges_adds_all() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn triangle_has_expected_adjacency() {
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(2, 0), (0, 1), (1, 2)]);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
    }
}
