//! Random k-colorings of the data graph.
//!
//! Color coding assigns every data vertex an independent uniformly random
//! color in `{0, ..., k-1}` where `k` is the number of query nodes, and then
//! counts only *colorful* matches (all query nodes mapped to distinctly
//! colored vertices). This module holds the coloring itself; the estimator in
//! `sgc-core` handles the `k^k / k!` scaling and repeated trials.

use crate::vertex::VertexId;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Maximum supported number of colors. Signatures are stored as two `u64`
/// bitset words, and queries in the paper have at most ~10 nodes, so 128
/// colors is a comfortable bound (and lets tests straddle the 64-color
/// word boundary).
pub const MAX_COLORS: usize = 128;

/// A fixed assignment of one of `k` colors to every data vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<u8>,
    num_colors: usize,
}

impl Coloring {
    /// Colors `num_vertices` vertices uniformly at random with `num_colors`
    /// colors using a seeded RNG (deterministic per seed).
    ///
    /// # Panics
    /// Panics if `num_colors` is zero or exceeds [`MAX_COLORS`].
    pub fn random(num_vertices: usize, num_colors: usize, seed: u64) -> Self {
        assert!(
            num_colors > 0 && num_colors <= MAX_COLORS,
            "num_colors must be in 1..={MAX_COLORS}, got {num_colors}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Uniform::new(0, num_colors as u8);
        let colors = (0..num_vertices).map(|_| dist.sample(&mut rng)).collect();
        Coloring { colors, num_colors }
    }

    /// Builds a coloring from an explicit color array (used by tests and the
    /// brute-force oracle).
    ///
    /// # Panics
    /// Panics if any color is `>= num_colors` or `num_colors > MAX_COLORS`.
    pub fn from_colors(colors: Vec<u8>, num_colors: usize) -> Self {
        assert!(num_colors > 0 && num_colors <= MAX_COLORS);
        assert!(
            colors.iter().all(|&c| (c as usize) < num_colors),
            "color out of range"
        );
        Coloring { colors, num_colors }
    }

    /// The number of colors `k`.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// The number of colored vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.colors.len()
    }

    /// Color of vertex `u` in `0..k`.
    #[inline]
    pub fn color(&self, u: VertexId) -> u8 {
        self.colors[u as usize]
    }

    /// Histogram of colors (length `k`).
    pub fn histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_colors];
        for &c in &self.colors {
            h[c as usize] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_coloring_is_deterministic_per_seed() {
        let a = Coloring::random(1000, 5, 42);
        let b = Coloring::random(1000, 5, 42);
        let c = Coloring::random(1000, 5, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn colors_are_in_range_and_roughly_uniform() {
        let k = 7;
        let col = Coloring::random(70_000, k, 1);
        let hist = col.histogram();
        assert_eq!(hist.len(), k);
        assert_eq!(hist.iter().sum::<usize>(), 70_000);
        let expected = 70_000 / k;
        for &count in &hist {
            assert!(
                count > expected / 2 && count < expected * 2,
                "color count {count} far from expected {expected}"
            );
        }
    }

    #[test]
    fn from_colors_roundtrips() {
        let col = Coloring::from_colors(vec![0, 1, 2, 1], 3);
        assert_eq!(col.color(0), 0);
        assert_eq!(col.color(3), 1);
        assert_eq!(col.num_colors(), 3);
        assert_eq!(col.num_vertices(), 4);
    }

    #[test]
    #[should_panic]
    fn out_of_range_color_panics() {
        let _ = Coloring::from_colors(vec![0, 3], 3);
    }

    #[test]
    #[should_panic]
    fn too_many_colors_panics() {
        let _ = Coloring::random(10, MAX_COLORS + 1, 0);
    }
}
