//! Compressed sparse row (CSR) representation of an undirected data graph.
//!
//! The graph is stored as a single `offsets` array of length `n + 1` and a
//! `neighbors` array of length `2m` holding the sorted adjacency list of every
//! vertex. Neighbor lists are sorted by vertex id, which gives `O(log d)` edge
//! probes via binary search and cache-friendly sequential scans during the
//! path-extension joins of the PS and DB algorithms.

use crate::vertex::VertexId;

/// An immutable undirected graph in CSR form.
///
/// Self-loops and parallel edges are removed at construction time (see
/// [`crate::builder::GraphBuilder`]); the structure stores each undirected
/// edge twice, once per endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
    num_edges: usize,
}

impl CsrGraph {
    /// Builds a graph directly from per-vertex sorted adjacency lists.
    ///
    /// This is the low-level constructor used by [`crate::builder::GraphBuilder`];
    /// callers must guarantee that the lists are sorted, deduplicated,
    /// self-loop free and symmetric. Debug builds assert these invariants.
    pub fn from_sorted_adjacency(adjacency: Vec<Vec<VertexId>>) -> Self {
        let n = adjacency.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let total: usize = adjacency.iter().map(|a| a.len()).sum();
        let mut neighbors = Vec::with_capacity(total);
        for (u, list) in adjacency.iter().enumerate() {
            debug_assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "adjacency list of {u} must be strictly sorted"
            );
            debug_assert!(!list.contains(&(u as VertexId)), "self loop on vertex {u}");
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        debug_assert_eq!(total % 2, 0, "undirected edge count must be even");
        CsrGraph {
            offsets,
            neighbors,
            num_edges: total / 2,
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of vertex `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Sorted neighbor list of vertex `u`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        let u = u as usize;
        &self.neighbors[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Whether the undirected edge `(u, v)` exists. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        // Probe the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over every vertex id.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// The degree sequence `d_0, ..., d_{n-1}` indexed by vertex id.
    pub fn degree_sequence(&self) -> Vec<usize> {
        (0..self.num_vertices() as VertexId)
            .map(|u| self.degree(u))
            .collect()
    }

    /// Returns the connected components as a vector mapping each vertex to a
    /// component id in `0..num_components`.
    pub fn connected_components(&self) -> Vec<usize> {
        let n = self.num_vertices();
        let mut comp = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut stack = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next;
            stack.push(start as VertexId);
            while let Some(u) = stack.pop() {
                for &v in self.neighbors(u) {
                    if comp[v as usize] == usize::MAX {
                        comp[v as usize] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as VertexId, (i + 1) as VertexId);
        }
        b.build()
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_sorted_adjacency(vec![]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn path_graph_shape() {
        let g = path_graph(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(3, 3));
    }

    #[test]
    fn edges_enumerated_once_each() {
        let g = path_graph(6);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        for (u, v) in edges {
            assert!(u < v);
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn connected_components_of_two_paths() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        b.add_edge(4, 5);
        let g = b.build();
        let comp = g.connected_components();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_eq!(comp.iter().copied().max().unwrap(), 1);
    }

    #[test]
    fn degree_sequence_matches_degrees() {
        let g = path_graph(4);
        assert_eq!(g.degree_sequence(), vec![1, 2, 2, 1]);
    }
}
