//! Compressed sparse row (CSR) representation of an undirected data graph.
//!
//! The graph is stored as a single `offsets` array of length `n + 1` and a
//! `neighbors` array of length `2m` holding the sorted adjacency list of every
//! vertex. Neighbor lists are sorted by vertex id, which gives `O(log d)` edge
//! probes via binary search and cache-friendly sequential scans during the
//! path-extension joins of the PS and DB algorithms.

use crate::vertex::VertexId;

/// An immutable undirected graph in CSR form.
///
/// Self-loops and parallel edges are removed at construction time (see
/// [`crate::builder::GraphBuilder`]); the structure stores each undirected
/// edge twice, once per endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
    num_edges: usize,
}

impl CsrGraph {
    /// Builds a graph directly from per-vertex sorted adjacency lists.
    ///
    /// This is the low-level constructor used by [`crate::builder::GraphBuilder`];
    /// callers must guarantee that the lists are sorted, deduplicated,
    /// self-loop free and symmetric. Debug builds assert these invariants.
    pub fn from_sorted_adjacency(adjacency: Vec<Vec<VertexId>>) -> Self {
        let n = adjacency.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let total: usize = adjacency.iter().map(|a| a.len()).sum();
        let mut neighbors = Vec::with_capacity(total);
        for (u, list) in adjacency.iter().enumerate() {
            debug_assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "adjacency list of {u} must be strictly sorted"
            );
            debug_assert!(!list.contains(&(u as VertexId)), "self loop on vertex {u}");
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        debug_assert_eq!(total % 2, 0, "undirected edge count must be even");
        CsrGraph {
            offsets,
            neighbors,
            num_edges: total / 2,
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of vertex `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Sorted neighbor list of vertex `u`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        let u = u as usize;
        &self.neighbors[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Whether the undirected edge `(u, v)` exists. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        // Probe the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over every vertex id.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// The degree sequence `d_0, ..., d_{n-1}` indexed by vertex id.
    pub fn degree_sequence(&self) -> Vec<usize> {
        (0..self.num_vertices() as VertexId)
            .map(|u| self.degree(u))
            .collect()
    }

    /// A 64-bit structural fingerprint of the graph: an FNV-1a fold of the
    /// vertex count and the full CSR adjacency structure.
    ///
    /// Two graphs have equal fingerprints exactly when they are equal as
    /// labelled graphs (up to the astronomically unlikely hash collision);
    /// the fingerprint is what result caches use to ask "is this the graph I
    /// computed that answer on" without retaining the graph itself. The scan
    /// is `O(n + m)`; callers that need it repeatedly should compute it once
    /// and store it.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut fold = |word: u64| {
            for byte in word.to_le_bytes() {
                h = (h ^ byte as u64).wrapping_mul(PRIME);
            }
        };
        fold(self.num_vertices() as u64);
        // The offsets array pins every adjacency list to its owning vertex,
        // so hashing offsets + neighbors distinguishes e.g. `0-1 2-3` from
        // `0-2 1-3` even though both flatten to the same neighbor multiset.
        for &offset in &self.offsets {
            fold(offset as u64);
        }
        for &v in &self.neighbors {
            fold(v as u64);
        }
        h
    }

    /// Returns the connected components as a vector mapping each vertex to a
    /// component id in `0..num_components`.
    pub fn connected_components(&self) -> Vec<usize> {
        let n = self.num_vertices();
        let mut comp = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut stack = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next;
            stack.push(start as VertexId);
            while let Some(u) = stack.pop() {
                for &v in self.neighbors(u) {
                    if comp[v as usize] == usize::MAX {
                        comp[v as usize] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as VertexId, (i + 1) as VertexId);
        }
        b.build()
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_sorted_adjacency(vec![]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn path_graph_shape() {
        let g = path_graph(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(3, 3));
    }

    #[test]
    fn edges_enumerated_once_each() {
        let g = path_graph(6);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        for (u, v) in edges {
            assert!(u < v);
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn connected_components_of_two_paths() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        b.add_edge(4, 5);
        let g = b.build();
        let comp = g.connected_components();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_eq!(comp.iter().copied().max().unwrap(), 1);
    }

    #[test]
    fn degree_sequence_matches_degrees() {
        let g = path_graph(4);
        assert_eq!(g.degree_sequence(), vec![1, 2, 2, 1]);
    }

    #[test]
    fn fingerprint_is_stable_and_structure_sensitive() {
        let a = path_graph(5);
        let b = path_graph(5);
        assert_eq!(a.fingerprint(), b.fingerprint());

        // Same vertex and edge counts, different edge set.
        let mut alt = GraphBuilder::new(5);
        alt.extend_edges([(0, 1), (1, 2), (2, 3), (2, 4)]);
        assert_ne!(a.fingerprint(), alt.build().fingerprint());

        // Same edges, one extra isolated vertex.
        let mut padded = GraphBuilder::new(6);
        padded.extend_edges([(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_ne!(a.fingerprint(), padded.build().fingerprint());
    }

    #[test]
    fn fingerprint_separates_matchings_with_equal_neighbor_multisets() {
        // 0-1 2-3 and 0-2 1-3 flatten to the same sorted neighbor arrays
        // unless the per-vertex offsets participate in the hash.
        let mut m1 = GraphBuilder::new(4);
        m1.extend_edges([(0, 1), (2, 3)]);
        let mut m2 = GraphBuilder::new(4);
        m2.extend_edges([(0, 2), (1, 3)]);
        assert_ne!(m1.build().fingerprint(), m2.build().fingerprint());
    }
}
