//! Plain edge-list IO.
//!
//! The SNAP graphs used by the paper ship as whitespace-separated edge lists
//! with optional `#` comment lines. These readers/writers let users of this
//! library run the algorithms on their own downloads of those datasets; the
//! bundled experiments use the synthetic analogs from `sgc-gen` instead.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::vertex::VertexId;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced while parsing an edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A line that is neither a comment nor a `u v` pair.
    Parse { line_number: usize, line: String },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "io error: {e}"),
            EdgeListError::Parse { line_number, line } => {
                write!(f, "cannot parse edge on line {line_number}: {line:?}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {}

impl From<io::Error> for EdgeListError {
    fn from(e: io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Reads an undirected edge list (`u v` per line, `#` comments allowed) from a
/// reader. Vertex ids may be arbitrary `u64`s; they are remapped to dense ids
/// in first-seen order.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, EdgeListError> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new(0);
    let mut remap: std::collections::HashMap<u64, VertexId> = std::collections::HashMap::new();
    let intern = |raw: u64, remap: &mut std::collections::HashMap<u64, VertexId>| -> VertexId {
        let next = remap.len() as VertexId;
        *remap.entry(raw).or_insert(next)
    };
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |s: Option<&str>| s.and_then(|t| t.parse::<u64>().ok());
        match (parse(parts.next()), parse(parts.next())) {
            (Some(a), Some(b)) => {
                let u = intern(a, &mut remap);
                let v = intern(b, &mut remap);
                builder.add_edge(u, v);
            }
            _ => {
                return Err(EdgeListError::Parse {
                    line_number: idx + 1,
                    line: line.clone(),
                })
            }
        }
    }
    Ok(builder.build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, EdgeListError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Writes a graph as an edge list (`u v` per line, each undirected edge once).
pub fn write_edge_list<W: Write>(graph: &CsrGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# undirected edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes a graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn parses_comments_and_edges() {
        let text = "# a comment\n0 1\n1 2\n\n% another comment\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn remaps_sparse_ids() {
        let text = "1000000 5\n5 70\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_garbage_lines() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            EdgeListError::Parse { line_number, .. } => assert_eq!(line_number, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn parse_errors_report_one_based_line_numbers_counting_skipped_lines() {
        // The bad line is the 6th physical line: comments and blank lines
        // are skipped as content but still advance the reported position,
        // so an editor jump to `line_number` lands on the offending line.
        let text = "# header\n\n0 1\n% more comments\n1 2\n2 oops\n";
        match read_edge_list(text.as_bytes()).unwrap_err() {
            EdgeListError::Parse { line_number, line } => {
                assert_eq!(line_number, 6);
                assert_eq!(line, "2 oops");
            }
            other => panic!("expected parse error, got {other}"),
        }

        // A line with a single token is malformed too (no second endpoint).
        match read_edge_list("0 1\n17\n".as_bytes()).unwrap_err() {
            EdgeListError::Parse { line_number, line } => {
                assert_eq!(line_number, 2);
                assert_eq!(line, "17");
            }
            other => panic!("expected parse error, got {other}"),
        }

        // An error on the very first line reports 1, not 0.
        match read_edge_list("x y\n".as_bytes()).unwrap_err() {
            EdgeListError::Parse { line_number, .. } => assert_eq!(line_number, 1),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn roundtrip_preserves_the_exact_edge_set() {
        let mut b = GraphBuilder::new(7);
        b.extend_edges([
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 4),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
        ]);
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        // The writer emits edges sorted by first endpoint, and in this graph
        // every vertex first appears in id order, so the reader's first-seen
        // remapping is the identity and the graphs are equal as labelled
        // graphs — fingerprints included.
        let edges: Vec<_> = g.edges().collect();
        let edges2: Vec<_> = g2.edges().collect();
        assert_eq!(edges, edges2);
        assert_eq!(g.fingerprint(), g2.fingerprint());
    }

    #[test]
    fn roundtrip_write_then_read() {
        let mut b = GraphBuilder::new(6);
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
    }
}
