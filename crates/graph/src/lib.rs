//! # sgc-graph — data-graph substrate
//!
//! The data-graph layer used by the color-coding subgraph counting stack.
//! It provides:
//!
//! * [`CsrGraph`] — an immutable, undirected graph in compressed sparse row
//!   form with O(1) degree queries and O(log d) edge probes,
//! * [`GraphBuilder`] — deduplicating edge-list builder,
//! * [`DegreeOrder`] — the total order on vertices (degree, then id) used by
//!   the paper's Degree Based (DB) algorithm (the MINBUCKET generalisation),
//! * [`Coloring`] — random k-colorings of the vertex set used by color coding,
//! * [`BlockPartition`] — the simulated 1D block distribution of vertices over
//!   "ranks" reproducing the paper's distributed-memory ownership model,
//! * [`DegreeStats`] — the degree-distribution statistics reported in Table 1,
//! * [`io`] — plain edge-list readers/writers so external graphs can be used.
//!
//! The crate is dependency-light (only `rand`) and forms the bottom of the
//! workspace: every other crate builds on these types.

pub mod builder;
pub mod coloring;
pub mod csr;
pub mod io;
pub mod order;
pub mod partition;
pub mod snapshot;
pub mod stats;
pub mod vertex;

pub use builder::GraphBuilder;
pub use coloring::Coloring;
pub use csr::CsrGraph;
pub use order::DegreeOrder;
pub use partition::BlockPartition;
pub use snapshot::{DeltaError, EdgeDelta, SegmentedSnapshot};
pub use stats::DegreeStats;
pub use vertex::VertexId;
