//! The degree-based total order on data vertices.
//!
//! The DB algorithm of the paper arranges data vertices "in the increasing
//! order of their degree; if two vertices have the same degree, the tie is
//! broken arbitrarily, say by placing the vertex having the least id first"
//! (Section 5.1). A vertex `u` is *higher* than `v` (written `u ≻ v`) when it
//! appears later in that order, i.e. when `(deg(u), u) > (deg(v), v)`.
//!
//! [`DegreeOrder`] precomputes the rank of every vertex in this order so that
//! the `u ≻ w` checks inside the hot join loops are a single array lookup and
//! integer comparison.

use crate::csr::CsrGraph;
use crate::vertex::VertexId;

/// Precomputed degree-based total order (the MINBUCKET order) on the vertices
/// of a data graph.
#[derive(Clone, Debug)]
pub struct DegreeOrder {
    /// `rank[u]` is the position of `u` in the increasing (degree, id) order.
    rank: Vec<u32>,
}

impl DegreeOrder {
    /// Builds the order for a graph.
    pub fn new(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        let mut by_order: Vec<VertexId> = (0..n as VertexId).collect();
        by_order.sort_unstable_by_key(|&u| (graph.degree(u), u));
        let mut rank = vec![0u32; n];
        for (pos, &u) in by_order.iter().enumerate() {
            rank[u as usize] = pos as u32;
        }
        DegreeOrder { rank }
    }

    /// Builds an order from an arbitrary key per vertex (ties broken by id).
    /// Used in tests and by the theory crate's id-ordered baseline.
    pub fn from_keys(keys: &[usize]) -> Self {
        let n = keys.len();
        let mut by_order: Vec<VertexId> = (0..n as VertexId).collect();
        by_order.sort_unstable_by_key(|&u| (keys[u as usize], u));
        let mut rank = vec![0u32; n];
        for (pos, &u) in by_order.iter().enumerate() {
            rank[u as usize] = pos as u32;
        }
        DegreeOrder { rank }
    }

    /// Number of vertices covered by the order.
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// Whether the order is empty.
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }

    /// Rank of vertex `u` in the increasing (degree, id) order.
    #[inline]
    pub fn rank(&self, u: VertexId) -> u32 {
        self.rank[u as usize]
    }

    /// `u ≻ v`: vertex `u` is strictly higher than `v` in the order.
    #[inline]
    pub fn higher(&self, u: VertexId, v: VertexId) -> bool {
        self.rank[u as usize] > self.rank[v as usize]
    }

    /// The highest vertex among a non-empty slice, or `None` for an empty one.
    pub fn highest_of(&self, vertices: &[VertexId]) -> Option<VertexId> {
        vertices.iter().copied().max_by_key(|&u| self.rank(u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Star graph: center 0 has degree 4, leaves have degree 1.
    fn star() -> CsrGraph {
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v);
        }
        b.build()
    }

    #[test]
    fn center_of_star_is_highest() {
        let g = star();
        let ord = DegreeOrder::new(&g);
        for v in 1..5 {
            assert!(ord.higher(0, v), "center must be higher than leaf {v}");
            assert!(!ord.higher(v, 0));
        }
    }

    #[test]
    fn ties_broken_by_id() {
        let g = star();
        let ord = DegreeOrder::new(&g);
        // Leaves 1..5 all have degree 1; lower id sorts first, so higher id is "higher".
        assert!(ord.higher(4, 1));
        assert!(ord.higher(2, 1));
        assert!(!ord.higher(1, 2));
    }

    #[test]
    fn order_is_total_and_strict() {
        let g = star();
        let ord = DegreeOrder::new(&g);
        for u in 0..5u32 {
            assert!(!ord.higher(u, u));
            for v in 0..5u32 {
                if u != v {
                    assert!(ord.higher(u, v) ^ ord.higher(v, u));
                }
            }
        }
    }

    #[test]
    fn highest_of_picks_max_rank() {
        let g = star();
        let ord = DegreeOrder::new(&g);
        assert_eq!(ord.highest_of(&[1, 2, 3]), Some(3));
        assert_eq!(ord.highest_of(&[3, 0, 1]), Some(0));
        assert_eq!(ord.highest_of(&[]), None);
    }

    #[test]
    fn from_keys_orders_by_key_then_id() {
        let ord = DegreeOrder::from_keys(&[5, 1, 5, 0]);
        assert!(ord.higher(0, 1));
        assert!(ord.higher(2, 0)); // same key, higher id
        assert!(ord.higher(1, 3));
    }
}
