//! Simulated 1D block distribution of vertices over processor ranks.
//!
//! The paper's engine distributes the data graph with a "1D decomposition,
//! wherein the vertices are equally distributed among the processors using
//! block distribution, and each vertex is owned by some processor"
//! (Section 7). Projection-table entries with key `(u, v, α)` are stored at
//! the owner of `v`, and load imbalance is measured as the number of
//! projection operations performed per rank (Figure 11).
//!
//! In this reproduction the ranks are *simulated*: the engine executes on a
//! shared-memory machine (rayon), but work is still attributed to the rank
//! that would own it in the distributed setting so that the paper's load
//! metrics can be reproduced exactly.

use crate::vertex::VertexId;

/// A block (contiguous-range) partition of `num_vertices` vertices into
/// `num_ranks` equally sized parts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockPartition {
    num_vertices: usize,
    num_ranks: usize,
    /// ceil(num_vertices / num_ranks); rank of v is v / block_size.
    block_size: usize,
}

impl BlockPartition {
    /// Creates a partition of `num_vertices` vertices into `num_ranks` blocks.
    ///
    /// # Panics
    /// Panics if `num_ranks` is zero.
    pub fn new(num_vertices: usize, num_ranks: usize) -> Self {
        assert!(num_ranks > 0, "at least one rank required");
        let block_size = num_vertices.div_ceil(num_ranks).max(1);
        BlockPartition {
            num_vertices,
            num_ranks,
            block_size,
        }
    }

    /// Number of ranks (processors).
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// Number of vertices being partitioned.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The rank owning vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        ((v as usize) / self.block_size).min(self.num_ranks - 1)
    }

    /// The contiguous vertex range owned by `rank`.
    pub fn owned_range(&self, rank: usize) -> std::ops::Range<VertexId> {
        let start = (rank * self.block_size).min(self.num_vertices);
        let end = ((rank + 1) * self.block_size).min(self.num_vertices);
        start as VertexId..end as VertexId
    }

    /// Number of vertices owned by `rank`.
    pub fn owned_count(&self, rank: usize) -> usize {
        let r = self.owned_range(rank);
        (r.end - r.start) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_vertex_has_exactly_one_owner() {
        let p = BlockPartition::new(103, 8);
        let mut counts = vec![0usize; p.num_ranks()];
        for v in 0..103u32 {
            counts[p.owner(v)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 103);
        // Owners must match the owned ranges.
        for (rank, &count) in counts.iter().enumerate() {
            assert_eq!(count, p.owned_count(rank));
        }
    }

    #[test]
    fn blocks_are_contiguous_and_balanced() {
        let p = BlockPartition::new(100, 4);
        assert_eq!(p.owned_range(0), 0..25);
        assert_eq!(p.owned_range(3), 75..100);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(99), 3);
    }

    #[test]
    fn more_ranks_than_vertices() {
        let p = BlockPartition::new(3, 8);
        for v in 0..3u32 {
            assert!(p.owner(v) < 8);
        }
        let total: usize = (0..8).map(|r| p.owned_count(r)).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn single_rank_owns_everything() {
        let p = BlockPartition::new(50, 1);
        for v in 0..50u32 {
            assert_eq!(p.owner(v), 0);
        }
        assert_eq!(p.owned_count(0), 50);
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = BlockPartition::new(10, 0);
    }
}
