//! Copy-on-write graph snapshots over CSR segments.
//!
//! A [`CsrGraph`] is immutable, but real graphs mutate. This module is the
//! substrate of the versioned graph store (`sgc-dyn`): the vertex set is cut
//! into contiguous segments, each holding a mini-CSR of its vertices'
//! adjacency lists behind an `Arc`, and applying an [`EdgeDelta`] rebuilds
//! **only the segments owning a changed edge's endpoints** — every untouched
//! segment is shared by reference with the parent snapshot. A chain of small
//! deltas over a large graph therefore costs memory proportional to what
//! changed, not to the graph.
//!
//! The one hard contract is **materialization equivalence**: for any chain
//! of deltas, [`SegmentedSnapshot::materialize`] produces a [`CsrGraph`]
//! byte-identical (same offsets, same neighbor order, same
//! [`fingerprint`](CsrGraph::fingerprint)) to a fresh
//! [`CsrGraph::from_sorted_adjacency`] build of the final edge list —
//! adjacency lists stay sorted under insert and delete, so the CSR layout
//! is a pure function of the edge set.

use crate::csr::CsrGraph;
use crate::vertex::VertexId;
use std::ops::Range;
use std::sync::Arc;

/// Default number of vertices per snapshot segment.
///
/// Small enough that a single changed edge rebuilds a sliver of a large
/// graph, large enough that the per-segment `Arc` overhead stays noise.
pub const DEFAULT_SEGMENT_VERTICES: usize = 1024;

/// A batch of edge insertions and deletions, canonicalized: every edge
/// normalized to `u < v`, each list sorted and duplicate-free, and the two
/// lists disjoint.
///
/// Deltas are **edge-only**: the vertex set is fixed at store creation.
/// That restriction is what makes incremental recounting sound — a trial's
/// random coloring depends only on `(num_vertices, colors, seed)`, so every
/// version of the graph shares the same per-trial colorings.
///
/// ```
/// use sgc_graph::snapshot::EdgeDelta;
///
/// let delta = EdgeDelta::new(vec![(3, 1), (0, 2)], vec![(5, 4)]).unwrap();
/// // Canonical form: u < v, sorted.
/// assert_eq!(delta.inserts(), &[(0, 2), (1, 3)]);
/// assert_eq!(delta.deletes(), &[(4, 5)]);
/// assert!(EdgeDelta::new(vec![(1, 1)], vec![]).is_err()); // self loop
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeDelta {
    inserts: Vec<(VertexId, VertexId)>,
    deletes: Vec<(VertexId, VertexId)>,
}

/// Why an [`EdgeDelta`] could not be constructed or applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// An edge connects a vertex to itself.
    SelfLoop {
        /// The offending vertex.
        vertex: VertexId,
    },
    /// The same edge appears twice in one list.
    DuplicateEdge {
        /// The duplicated edge (canonical `u < v`).
        edge: (VertexId, VertexId),
    },
    /// The same edge appears in both the insert and the delete list.
    InsertAndDelete {
        /// The conflicting edge (canonical `u < v`).
        edge: (VertexId, VertexId),
    },
    /// An endpoint is outside the graph's fixed vertex set.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// The graph's vertex count.
        num_vertices: usize,
    },
    /// An inserted edge already exists in the snapshot.
    InsertExisting {
        /// The offending edge (canonical `u < v`).
        edge: (VertexId, VertexId),
    },
    /// A deleted edge does not exist in the snapshot.
    DeleteMissing {
        /// The offending edge (canonical `u < v`).
        edge: (VertexId, VertexId),
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::SelfLoop { vertex } => write!(f, "self loop at vertex {vertex}"),
            DeltaError::DuplicateEdge { edge } => {
                write!(f, "edge {}-{} appears twice in one list", edge.0, edge.1)
            }
            DeltaError::InsertAndDelete { edge } => {
                write!(f, "edge {}-{} is both inserted and deleted", edge.0, edge.1)
            }
            DeltaError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} is outside the graph's fixed vertex set (0..{num_vertices})"
            ),
            DeltaError::InsertExisting { edge } => {
                write!(f, "inserted edge {}-{} already exists", edge.0, edge.1)
            }
            DeltaError::DeleteMissing { edge } => {
                write!(f, "deleted edge {}-{} does not exist", edge.0, edge.1)
            }
        }
    }
}

impl std::error::Error for DeltaError {}

fn canonicalize(edges: Vec<(VertexId, VertexId)>) -> Result<Vec<(VertexId, VertexId)>, DeltaError> {
    let mut out: Vec<(VertexId, VertexId)> = edges
        .into_iter()
        .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
        .collect();
    for &(u, v) in &out {
        if u == v {
            return Err(DeltaError::SelfLoop { vertex: u });
        }
    }
    out.sort_unstable();
    for pair in out.windows(2) {
        if pair[0] == pair[1] {
            return Err(DeltaError::DuplicateEdge { edge: pair[0] });
        }
    }
    Ok(out)
}

impl EdgeDelta {
    /// Builds a canonical delta from raw insert and delete edge lists.
    ///
    /// # Errors
    /// [`DeltaError::SelfLoop`], [`DeltaError::DuplicateEdge`] or
    /// [`DeltaError::InsertAndDelete`] for malformed input. Range and
    /// existence checks happen at [`SegmentedSnapshot::apply`] time, where
    /// there is a graph to check against.
    pub fn new(
        inserts: Vec<(VertexId, VertexId)>,
        deletes: Vec<(VertexId, VertexId)>,
    ) -> Result<Self, DeltaError> {
        let inserts = canonicalize(inserts)?;
        let deletes = canonicalize(deletes)?;
        // Both lists are sorted: a linear merge finds any overlap.
        let (mut i, mut d) = (0usize, 0usize);
        while i < inserts.len() && d < deletes.len() {
            match inserts[i].cmp(&deletes[d]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => d += 1,
                std::cmp::Ordering::Equal => {
                    return Err(DeltaError::InsertAndDelete { edge: inserts[i] })
                }
            }
        }
        Ok(EdgeDelta { inserts, deletes })
    }

    /// The canonical (sorted, `u < v`) insert list.
    pub fn inserts(&self) -> &[(VertexId, VertexId)] {
        &self.inserts
    }

    /// The canonical (sorted, `u < v`) delete list.
    pub fn deletes(&self) -> &[(VertexId, VertexId)] {
        &self.deletes
    }

    /// Total number of changed edges.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Every changed edge (inserts then deletes), canonical order.
    pub fn changed_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.inserts.iter().chain(self.deletes.iter()).copied()
    }

    /// Every endpoint of a changed edge (with repeats).
    pub fn touched_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.changed_edges().flat_map(|(u, v)| [u, v])
    }

    /// A 64-bit FNV-1a digest of the canonical delta content.
    ///
    /// XORed with the parent version id, this forms the child's version id
    /// in the `sgc-dyn` version chain; two deltas with the same canonical
    /// edge lists always digest identically.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut fold = |word: u64| {
            for byte in word.to_le_bytes() {
                h = (h ^ byte as u64).wrapping_mul(PRIME);
            }
        };
        fold(self.inserts.len() as u64);
        for &(u, v) in &self.inserts {
            fold(((u as u64) << 32) | v as u64);
        }
        fold(self.deletes.len() as u64);
        for &(u, v) in &self.deletes {
            fold(((u as u64) << 32) | v as u64);
        }
        h
    }
}

/// One contiguous vertex range's adjacency lists in mini-CSR form.
///
/// Segments are immutable and `Arc`-shared between the snapshots that did
/// not change them.
#[derive(Debug)]
pub struct CsrSegment {
    start: VertexId,
    offsets: Vec<u32>,
    neighbors: Vec<VertexId>,
}

impl CsrSegment {
    fn from_lists(start: VertexId, lists: Vec<Vec<VertexId>>) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0u32);
        let mut neighbors = Vec::new();
        for list in lists {
            neighbors.extend_from_slice(&list);
            offsets.push(neighbors.len() as u32);
        }
        CsrSegment {
            start,
            offsets,
            neighbors,
        }
    }

    /// The vertex range this segment owns.
    pub fn range(&self) -> Range<VertexId> {
        self.start..self.start + (self.offsets.len() - 1) as VertexId
    }

    /// Number of vertices in the segment.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The sorted neighbor list of vertex `v` (which must be in
    /// [`range`](CsrSegment::range)).
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = (v - self.start) as usize;
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// A copy-on-write snapshot of one graph version: `Arc`-shared CSR segments
/// over a fixed vertex set.
///
/// ```
/// use sgc_graph::snapshot::{EdgeDelta, SegmentedSnapshot};
/// use sgc_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(6);
/// b.extend_edges([(0, 1), (1, 2), (2, 0), (3, 4)]);
/// let base = b.build();
/// let snap = SegmentedSnapshot::from_graph(&base, 2);
///
/// let next = snap
///     .apply(&EdgeDelta::new(vec![(4, 5)], vec![(0, 1)]).unwrap())
///     .unwrap();
/// let graph = next.materialize();
/// assert!(graph.has_edge(4, 5));
/// assert!(!graph.has_edge(0, 1));
/// // The untouched middle segment (vertices 2..4) is shared by reference.
/// assert_eq!(next.segments_shared_with(&snap), 1);
/// ```
#[derive(Clone, Debug)]
pub struct SegmentedSnapshot {
    num_vertices: usize,
    num_edges: usize,
    segment_vertices: usize,
    segments: Vec<Arc<CsrSegment>>,
}

impl SegmentedSnapshot {
    /// Cuts `graph` into segments of `segment_vertices` vertices each
    /// (clamped to at least 1; the last segment may be shorter).
    pub fn from_graph(graph: &CsrGraph, segment_vertices: usize) -> Self {
        let segment_vertices = segment_vertices.max(1);
        let n = graph.num_vertices();
        let mut segments = Vec::with_capacity(n.div_ceil(segment_vertices).max(1));
        let mut start = 0usize;
        while start < n || (n == 0 && segments.is_empty()) {
            let end = (start + segment_vertices).min(n);
            let lists: Vec<Vec<VertexId>> = (start..end)
                .map(|v| graph.neighbors(v as VertexId).to_vec())
                .collect();
            segments.push(Arc::new(CsrSegment::from_lists(start as VertexId, lists)));
            start = end;
            if n == 0 {
                break;
            }
        }
        SegmentedSnapshot {
            num_vertices: n,
            num_edges: graph.num_edges(),
            segment_vertices,
            segments,
        }
    }

    /// [`from_graph`](SegmentedSnapshot::from_graph) with
    /// [`DEFAULT_SEGMENT_VERTICES`].
    pub fn new(graph: &CsrGraph) -> Self {
        SegmentedSnapshot::from_graph(graph, DEFAULT_SEGMENT_VERTICES)
    }

    /// Number of vertices (fixed across every version).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges in this version.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// How many segments this snapshot shares (by `Arc` identity) with
    /// `other` — the copy-on-write bookkeeping tests pin.
    pub fn segments_shared_with(&self, other: &SegmentedSnapshot) -> usize {
        self.segments
            .iter()
            .zip(&other.segments)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    fn segment_of(&self, v: VertexId) -> usize {
        v as usize / self.segment_vertices
    }

    /// The sorted neighbor list of `v` in this version.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.segments[self.segment_of(v)].neighbors(v)
    }

    /// Whether edge `u-v` exists in this version.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Whether `delta` applies to this version: every endpoint in range,
    /// every inserted edge absent, every deleted edge present.
    ///
    /// # Errors
    /// [`DeltaError::VertexOutOfRange`], [`DeltaError::InsertExisting`] or
    /// [`DeltaError::DeleteMissing`] for the first violation found.
    pub fn check(&self, delta: &EdgeDelta) -> Result<(), DeltaError> {
        for (u, v) in delta.changed_edges() {
            for w in [u, v] {
                if (w as usize) >= self.num_vertices {
                    return Err(DeltaError::VertexOutOfRange {
                        vertex: w,
                        num_vertices: self.num_vertices,
                    });
                }
            }
        }
        for &(u, v) in delta.inserts() {
            if self.has_edge(u, v) {
                return Err(DeltaError::InsertExisting { edge: (u, v) });
            }
        }
        for &(u, v) in delta.deletes() {
            if !self.has_edge(u, v) {
                return Err(DeltaError::DeleteMissing { edge: (u, v) });
            }
        }
        Ok(())
    }

    /// Applies a canonical [`EdgeDelta`], producing the child snapshot.
    /// Only segments owning an endpoint of a changed edge are rebuilt; all
    /// others are `Arc`-shared with `self`.
    ///
    /// # Errors
    /// [`DeltaError::VertexOutOfRange`], [`DeltaError::InsertExisting`] or
    /// [`DeltaError::DeleteMissing`] when the delta does not fit this
    /// version; `self` is unchanged in every error case.
    pub fn apply(&self, delta: &EdgeDelta) -> Result<SegmentedSnapshot, DeltaError> {
        // Validate everything before touching any segment.
        self.check(delta)?;

        // Group the per-vertex list edits by owning segment.
        let mut dirty: Vec<Vec<(VertexId, VertexId, bool)>> = vec![Vec::new(); self.segments.len()];
        let mut mark = |v: VertexId, other: VertexId, insert: bool| {
            dirty[self.segment_of(v)].push((v, other, insert));
        };
        for &(u, v) in delta.inserts() {
            mark(u, v, true);
            mark(v, u, true);
        }
        for &(u, v) in delta.deletes() {
            mark(u, v, false);
            mark(v, u, false);
        }

        let segments = self
            .segments
            .iter()
            .enumerate()
            .map(|(i, segment)| {
                if dirty[i].is_empty() {
                    return Arc::clone(segment);
                }
                let range = segment.range();
                let mut lists: Vec<Vec<VertexId>> = range
                    .clone()
                    .map(|v| segment.neighbors(v).to_vec())
                    .collect();
                for &(v, other, insert) in &dirty[i] {
                    let list = &mut lists[(v - range.start) as usize];
                    match (list.binary_search(&other), insert) {
                        (Err(pos), true) => list.insert(pos, other),
                        (Ok(pos), false) => {
                            list.remove(pos);
                        }
                        // Existence was validated above.
                        _ => unreachable!("delta validated against this snapshot"),
                    }
                }
                Arc::new(CsrSegment::from_lists(range.start, lists))
            })
            .collect();
        Ok(SegmentedSnapshot {
            num_vertices: self.num_vertices,
            num_edges: self.num_edges + delta.inserts().len() - delta.deletes().len(),
            segment_vertices: self.segment_vertices,
            segments,
        })
    }

    /// Materializes this version as a contiguous [`CsrGraph`].
    ///
    /// Bit-identical (offsets, neighbor order, fingerprint) to a fresh
    /// [`CsrGraph::from_sorted_adjacency`] build of the same edge list:
    /// segment lists stay sorted under every delta, so the flattening is
    /// canonical.
    pub fn materialize(&self) -> CsrGraph {
        let mut adjacency: Vec<Vec<VertexId>> = Vec::with_capacity(self.num_vertices);
        for segment in &self.segments {
            for v in segment.range() {
                adjacency.push(segment.neighbors(v).to_vec());
            }
        }
        CsrGraph::from_sorted_adjacency(adjacency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn line_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_edge(v as VertexId, v as VertexId + 1);
        }
        b.build()
    }

    #[test]
    fn delta_canonicalizes_and_rejects_malformed_input() {
        let delta = EdgeDelta::new(vec![(5, 2), (1, 0)], vec![(9, 3)]).unwrap();
        assert_eq!(delta.inserts(), &[(0, 1), (2, 5)]);
        assert_eq!(delta.deletes(), &[(3, 9)]);
        assert_eq!(delta.len(), 3);
        assert!(!delta.is_empty());
        assert_eq!(
            EdgeDelta::new(vec![(2, 2)], vec![]),
            Err(DeltaError::SelfLoop { vertex: 2 })
        );
        assert_eq!(
            EdgeDelta::new(vec![(1, 2), (2, 1)], vec![]),
            Err(DeltaError::DuplicateEdge { edge: (1, 2) })
        );
        assert_eq!(
            EdgeDelta::new(vec![(1, 2)], vec![(2, 1)]),
            Err(DeltaError::InsertAndDelete { edge: (1, 2) })
        );
    }

    #[test]
    fn digest_depends_on_canonical_content_only() {
        let a = EdgeDelta::new(vec![(5, 2), (1, 0)], vec![(9, 3)]).unwrap();
        let b = EdgeDelta::new(vec![(0, 1), (2, 5)], vec![(3, 9)]).unwrap();
        assert_eq!(a.digest(), b.digest());
        let c = EdgeDelta::new(vec![(0, 1), (2, 5), (3, 9)], vec![]).unwrap();
        assert_ne!(a.digest(), c.digest());
        // Moving an edge between lists changes the digest even though the
        // flattened edge multiset matches.
        let d = EdgeDelta::new(vec![(3, 9)], vec![(0, 1)]).unwrap();
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn apply_validates_against_the_snapshot() {
        let snap = SegmentedSnapshot::from_graph(&line_graph(10), 4);
        assert_eq!(
            snap.apply(&EdgeDelta::new(vec![(0, 10)], vec![]).unwrap())
                .unwrap_err(),
            DeltaError::VertexOutOfRange {
                vertex: 10,
                num_vertices: 10
            }
        );
        assert_eq!(
            snap.apply(&EdgeDelta::new(vec![(0, 1)], vec![]).unwrap())
                .unwrap_err(),
            DeltaError::InsertExisting { edge: (0, 1) }
        );
        assert_eq!(
            snap.apply(&EdgeDelta::new(vec![], vec![(0, 2)]).unwrap())
                .unwrap_err(),
            DeltaError::DeleteMissing { edge: (0, 2) }
        );
    }

    #[test]
    fn apply_rebuilds_only_touched_segments() {
        let graph = line_graph(16);
        let snap = SegmentedSnapshot::from_graph(&graph, 4);
        assert_eq!(snap.num_segments(), 4);
        // Edge 1-2 touches only segment 0 (vertices 0..4).
        let next = snap
            .apply(&EdgeDelta::new(vec![], vec![(1, 2)]).unwrap())
            .unwrap();
        assert_eq!(next.segments_shared_with(&snap), 3);
        assert_eq!(next.num_edges(), graph.num_edges() - 1);
        // Edge 3-12 spans segments 0 and 3.
        let far = snap
            .apply(&EdgeDelta::new(vec![(3, 12)], vec![]).unwrap())
            .unwrap();
        assert_eq!(far.segments_shared_with(&snap), 2);
        assert!(far.has_edge(3, 12));
        assert!(far.has_edge(12, 3));
    }

    #[test]
    fn materialize_matches_a_fresh_build_bit_for_bit() {
        let graph = line_graph(20);
        let snap = SegmentedSnapshot::from_graph(&graph, 6);
        // Unchanged: materialization reproduces the source graph exactly.
        assert_eq!(snap.materialize().fingerprint(), graph.fingerprint());

        // A chain of deltas vs a fresh build of the final edge list.
        let d1 = EdgeDelta::new(vec![(0, 5), (7, 19)], vec![(3, 4)]).unwrap();
        let d2 = EdgeDelta::new(vec![(3, 4)], vec![(0, 5), (10, 11)]).unwrap();
        let v1 = snap.apply(&d1).unwrap();
        let v2 = v1.apply(&d2).unwrap();
        let materialized = v2.materialize();

        let mut b = GraphBuilder::new(20);
        for (u, v) in graph.edges() {
            if ![(3, 4), (0, 5), (10, 11)].contains(&(u, v)) {
                b.add_edge(u, v);
            }
        }
        b.add_edge(7, 19);
        b.add_edge(3, 4);
        let fresh = b.build();
        assert_eq!(materialized.fingerprint(), fresh.fingerprint());
        assert_eq!(materialized.num_edges(), fresh.num_edges());
        // And the parent version is untouched (COW, not mutation).
        assert!(v1.has_edge(0, 5));
        assert!(!v2.has_edge(0, 5));
    }

    #[test]
    fn empty_and_tiny_graphs_survive_segmentation() {
        let empty = GraphBuilder::new(0).build();
        let snap = SegmentedSnapshot::new(&empty);
        assert_eq!(snap.num_vertices(), 0);
        assert_eq!(snap.materialize().num_vertices(), 0);

        let one = GraphBuilder::new(1).build();
        let snap = SegmentedSnapshot::from_graph(&one, 8);
        assert_eq!(snap.num_segments(), 1);
        assert_eq!(snap.materialize().fingerprint(), one.fingerprint());
    }
}
