//! Degree-distribution statistics (the columns of the paper's Table 1).
//!
//! Table 1 characterises each benchmark graph by its vertex count, edge
//! count, average degree and maximum degree; Section 8.2 relates runtime to
//! the *skew* of the degree distribution. [`DegreeStats`] computes those
//! quantities plus a few extra skew indicators used by the experiment
//! binaries (power-law-style moments and the degree histogram in powers of
//! two, matching the truncated-power-law definition of Section 9.2).

use crate::csr::CsrGraph;

/// Summary statistics of a graph's degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices `n`.
    pub num_vertices: usize,
    /// Number of undirected edges `m`.
    pub num_edges: usize,
    /// Average degree `2m / n` (0 for the empty graph).
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Second moment of the degree sequence, `Σ d_u²` — the quantity driving
    /// the paper's E[Y(q)] lower bound (Lemma 9.5).
    pub sum_degree_squared: f64,
    /// Histogram of degrees bucketed by powers of two: bucket `j` counts
    /// vertices with degree in `[2^j, 2^{j+1})`; degree-0 vertices are
    /// counted in bucket 0.
    pub log_histogram: Vec<usize>,
}

impl DegreeStats {
    /// Computes statistics for a graph.
    pub fn compute(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        let m = graph.num_edges();
        let mut max_degree = 0usize;
        let mut sum_sq = 0.0f64;
        let mut log_histogram: Vec<usize> = Vec::new();
        for u in graph.vertices() {
            let d = graph.degree(u);
            max_degree = max_degree.max(d);
            sum_sq += (d as f64) * (d as f64);
            let bucket = if d <= 1 {
                0
            } else {
                (usize::BITS - 1 - d.leading_zeros()) as usize
            };
            if bucket >= log_histogram.len() {
                log_histogram.resize(bucket + 1, 0);
            }
            log_histogram[bucket] += 1;
        }
        let avg_degree = if n == 0 {
            0.0
        } else {
            2.0 * m as f64 / n as f64
        };
        DegreeStats {
            num_vertices: n,
            num_edges: m,
            avg_degree,
            max_degree,
            sum_degree_squared: sum_sq,
            log_histogram,
        }
    }

    /// A simple skew indicator: the ratio of the maximum degree to the
    /// average degree. Road-like graphs have skew close to 1; social graphs
    /// have skew in the hundreds (compare Table 1).
    pub fn skew(&self) -> f64 {
        if self.avg_degree == 0.0 {
            0.0
        } else {
            self.max_degree as f64 / self.avg_degree
        }
    }

    /// Formats the row of Table 1 this graph would occupy.
    pub fn table_row(&self, name: &str, domain: &str) -> String {
        format!(
            "{name:<14} {domain:<10} {:>9} {:>10} {:>8.1} {:>8}",
            self.num_vertices, self.num_edges, self.avg_degree, self.max_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn star(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 1..n as u32 {
            b.add_edge(0, v);
        }
        b.build()
    }

    #[test]
    fn star_stats() {
        let s = DegreeStats::compute(&star(11));
        assert_eq!(s.num_vertices, 11);
        assert_eq!(s.num_edges, 10);
        assert_eq!(s.max_degree, 10);
        assert!((s.avg_degree - 20.0 / 11.0).abs() < 1e-12);
        // center contributes 100, leaves contribute 10 * 1
        assert!((s.sum_degree_squared - 110.0).abs() < 1e-12);
        assert!(s.skew() > 5.0);
    }

    #[test]
    fn cycle_has_no_skew() {
        let mut b = GraphBuilder::new(10);
        for i in 0..10u32 {
            b.add_edge(i, (i + 1) % 10);
        }
        let s = DegreeStats::compute(&b.build());
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
        assert!((s.skew() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_buckets_degrees() {
        let s = DegreeStats::compute(&star(9));
        // leaves: degree 1 -> bucket 0 (8 of them); center: degree 8 -> bucket 3.
        assert_eq!(s.log_histogram[0], 8);
        assert_eq!(s.log_histogram[3], 1);
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new(0).build();
        let s = DegreeStats::compute(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.skew(), 0.0);
    }

    #[test]
    fn table_row_contains_counts() {
        let s = DegreeStats::compute(&star(5));
        let row = s.table_row("star5", "synthetic");
        assert!(row.contains("star5"));
        assert!(row.contains('5'));
        assert!(row.contains('4'));
    }
}
