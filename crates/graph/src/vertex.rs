//! Vertex identifiers.
//!
//! Data graphs in this workspace are indexed by dense `u32` vertex ids
//! (`0..n`). The paper's graphs have at most a few million vertices, so `u32`
//! halves the memory footprint of adjacency arrays and table keys compared to
//! `usize`, which matters for the projection tables that dominate memory use.

/// Dense vertex identifier of a data graph (`0..n`).
pub type VertexId = u32;

/// Sentinel value meaning "no vertex"; used for unused key slots in
/// projection-table keys with optional boundary fields.
pub const NO_VERTEX: VertexId = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_is_not_a_plausible_vertex() {
        // Graphs are bounded well below u32::MAX vertices in this workspace.
        assert_eq!(NO_VERTEX, u32::MAX);
    }
}
