//! The blocking client: a connection handle, a count builder, and a
//! streaming iterator over estimate frames.
//!
//! ```no_run
//! use sgc_net::{Client, StreamEvent};
//!
//! let mut client = Client::connect("127.0.0.1:7471").unwrap();
//! let mut stream = client.count("cycle(5)").budget(256).stream().unwrap();
//! for event in &mut stream {
//!     match event.unwrap() {
//!         StreamEvent::Chunk(chunk) => {
//!             eprintln!(
//!                 "{}/{} trials, ±{:.1}%",
//!                 chunk.trials_run,
//!                 chunk.budget,
//!                 100.0 * chunk.relative_half_width
//!             );
//!         }
//!         StreamEvent::Final(output) => {
//!             println!("count ≈ {}", output.estimate.estimated_subgraphs);
//!         }
//!     }
//! }
//! ```

use crate::proto::{
    ChunkFrame, CountSpec, DeltaSpec, ErrorFrame, JobId, Request, Response, StatsFrame, WatchFrame,
    WireOutput,
};
use crate::wire::{self, FrameError, WireError, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION};
use sgc_core::Algorithm;
use sgc_service::Precision;
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Ways a client call can fail.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// A frame could not be read (truncated, oversized, …).
    Frame(FrameError),
    /// A frame was read but its payload did not decode.
    Wire(WireError),
    /// The `hello` handshake failed (version mismatch, or the peer is not
    /// an sgc server).
    Handshake(String),
    /// The server sent a response that makes no sense in this state.
    Unexpected(String),
    /// The server answered with a typed error frame. Check
    /// [`ErrorFrame::kind`] — [`is_retryable`](crate::ErrorKind::is_retryable)
    /// identifies admission-control rejections worth resubmitting.
    Remote(ErrorFrame),
    /// The connection closed before the expected response arrived.
    ConnectionClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Wire(e) => write!(f, "malformed response payload: {e}"),
            ClientError::Handshake(msg) => write!(f, "handshake failed: {msg}"),
            ClientError::Unexpected(msg) => write!(f, "unexpected response: {msg}"),
            ClientError::Remote(frame) => write!(f, "server error: {frame}"),
            ClientError::ConnectionClosed => write!(f, "connection closed by the server"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to an sgc server.
///
/// One request runs at a time (`count` streams to completion before the
/// next verb); job ids are assigned internally. Dropping the client closes
/// the connection without a goodbye — call [`bye`](Client::bye) for a clean
/// shutdown handshake.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    max_frame_len: usize,
    next_id: JobId,
}

impl Client {
    /// Connects and performs the `hello` handshake.
    ///
    /// # Errors
    /// Socket errors, or [`ClientError::Handshake`] when the peer does not
    /// speak this protocol version.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            next_id: 1,
        };
        client.send(&Request::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match client.read_response()? {
            Response::HelloOk { version } if version == PROTOCOL_VERSION => Ok(client),
            Response::HelloOk { version } => Err(ClientError::Handshake(format!(
                "server speaks protocol version {version}, this client {PROTOCOL_VERSION}"
            ))),
            Response::Error(frame) => Err(ClientError::Handshake(frame.to_string())),
            other => Err(ClientError::Unexpected(format!(
                "expected hello-ok, got tag 0x{:02x}",
                other.tag()
            ))),
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let payload = request.encode();
        wire::write_frame(
            &mut self.writer,
            request.tag(),
            &payload,
            self.max_frame_len,
        )?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        match wire::read_frame(&mut self.reader, self.max_frame_len)? {
            Some(raw) => Ok(Response::decode(raw.tag, &raw.payload)?),
            None => Err(ClientError::ConnectionClosed),
        }
    }

    /// Starts building a count request for `pattern` (the textual pattern
    /// grammar of `sgc_query::parse`); finish with
    /// [`stream`](CountBuilder::stream) or [`run`](CountBuilder::run).
    pub fn count<'a>(&'a mut self, pattern: &str) -> CountBuilder<'a> {
        CountBuilder {
            client: self,
            pattern: pattern.to_string(),
            algorithm: Algorithm::DegreeBased,
            seed: 0x5eed,
            budget: 64,
            precision: None,
            trace: None,
        }
    }

    /// Runs several counts as one atomically-admitted batch and blocks
    /// until every member completes, returning per-member outcomes in
    /// submission order. Streamed chunk frames are drained silently; use
    /// solo [`count`](Client::count) streams to observe them.
    ///
    /// # Errors
    /// Transport-level failures. Per-member failures (parse errors,
    /// `queue-full`, …) are the inner `Err`s.
    pub fn batch(
        &mut self,
        requests: Vec<BatchRequest>,
    ) -> Result<Vec<Result<WireOutput, ErrorFrame>>, ClientError> {
        let specs: Vec<CountSpec> = requests
            .into_iter()
            .map(|request| {
                let id = self.next_id;
                self.next_id += 1;
                CountSpec {
                    id,
                    pattern: request.pattern,
                    algorithm: request.algorithm,
                    seed: request.seed,
                    budget: request.budget,
                    precision: request.precision,
                    trace: request.trace,
                }
            })
            .collect();
        let ids: Vec<JobId> = specs.iter().map(|spec| spec.id).collect();
        self.send(&Request::Batch(specs))?;
        let mut outcomes: std::collections::HashMap<JobId, Result<WireOutput, ErrorFrame>> =
            std::collections::HashMap::new();
        while outcomes.len() < ids.len() {
            match self.read_response()? {
                Response::Chunk(_) => {}
                Response::Final { id, output } if ids.contains(&id) => {
                    outcomes.insert(id, Ok(output));
                }
                Response::Error(frame) if ids.contains(&frame.id) => {
                    outcomes.insert(frame.id, Err(frame));
                }
                Response::Error(frame) => return Err(ClientError::Remote(frame)),
                other => {
                    return Err(ClientError::Unexpected(format!(
                        "mid-batch frame with tag 0x{:02x}",
                        other.tag()
                    )))
                }
            }
        }
        Ok(ids
            .into_iter()
            .map(|id| outcomes.remove(&id).expect("every id resolved"))
            .collect())
    }

    /// Asks the server to plan `pattern` and returns the rendered report.
    ///
    /// # Errors
    /// [`ClientError::Remote`] with a spanned `parse` frame for malformed
    /// patterns.
    pub fn explain(&mut self, pattern: &str) -> Result<String, ClientError> {
        self.send(&Request::Explain {
            pattern: pattern.to_string(),
        })?;
        match self.read_response()? {
            Response::ExplainOk { report } => Ok(report),
            Response::Error(frame) => Err(ClientError::Remote(frame)),
            other => Err(ClientError::Unexpected(format!(
                "expected explain-ok, got tag 0x{:02x}",
                other.tag()
            ))),
        }
    }

    /// Fetches the service metrics and server counters.
    pub fn stats(&mut self) -> Result<StatsFrame, ClientError> {
        self.send(&Request::Stats)?;
        match self.read_response()? {
            Response::StatsOk(frame) => Ok(frame),
            Response::Error(frame) => Err(ClientError::Remote(frame)),
            other => Err(ClientError::Unexpected(format!(
                "expected stats-ok, got tag 0x{:02x}",
                other.tag()
            ))),
        }
    }

    /// Fetches the server's full metrics exposition: sorted `name value`
    /// lines covering stage histograms, engine/kernel/shard counters,
    /// service gauges, and the network layer's own counters.
    ///
    /// # Errors
    /// Transport failures, or [`ClientError::Remote`] error frames.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send(&Request::Metrics)?;
        match self.read_response()? {
            Response::MetricsOk { exposition } => Ok(exposition),
            Response::Error(frame) => Err(ClientError::Remote(frame)),
            other => Err(ClientError::Unexpected(format!(
                "expected metrics-ok, got tag 0x{:02x}",
                other.tag()
            ))),
        }
    }

    /// Fetches the server's slow-query trace log, rendered slowest job
    /// first.
    ///
    /// # Errors
    /// Transport failures, or [`ClientError::Remote`] error frames.
    pub fn trace_log(&mut self) -> Result<String, ClientError> {
        self.send(&Request::Trace)?;
        match self.read_response()? {
            Response::TraceOk { report } => Ok(report),
            Response::Error(frame) => Err(ClientError::Remote(frame)),
            other => Err(ClientError::Unexpected(format!(
                "expected trace-ok, got tag 0x{:02x}",
                other.tag()
            ))),
        }
    }

    /// Applies one batch of edge inserts and deletes to the server's graph,
    /// returning the new version id. Every live watch subscription on the
    /// server re-emits its estimate for the new version before this call's
    /// `delta-ok` acknowledgement is written.
    ///
    /// Use a dedicated connection for mutations when this client also holds
    /// a [`watch`](CountBuilder::watch) stream — the stream owns the
    /// connection's incoming frames while it is being iterated.
    ///
    /// # Errors
    /// [`ClientError::Remote`] with a `delta` frame when the batch is
    /// rejected (self-loop, duplicate edge, vertex out of range, inserting
    /// an existing edge, deleting a missing one), plus transport failures.
    pub fn apply_delta(
        &mut self,
        inserts: &[(u32, u32)],
        deletes: &[(u32, u32)],
    ) -> Result<u64, ClientError> {
        self.send(&Request::Delta(DeltaSpec {
            inserts: inserts.to_vec(),
            deletes: deletes.to_vec(),
        }))?;
        match self.read_response()? {
            Response::DeltaOk { version } => Ok(version),
            Response::Error(frame) => Err(ClientError::Remote(frame)),
            other => Err(ClientError::Unexpected(format!(
                "expected delta-ok, got tag 0x{:02x}",
                other.tag()
            ))),
        }
    }

    /// Clean goodbye: the server acknowledges and closes the connection.
    /// The client is consumed — the socket is useless afterwards.
    ///
    /// # Errors
    /// Transport failures while saying goodbye.
    pub fn bye(mut self) -> Result<(), ClientError> {
        self.send(&Request::Bye)?;
        match self.read_response()? {
            Response::ByeOk => Ok(()),
            Response::Error(frame) => Err(ClientError::Remote(frame)),
            other => Err(ClientError::Unexpected(format!(
                "expected bye-ok, got tag 0x{:02x}",
                other.tag()
            ))),
        }
    }
}

/// Parameters of one member of a [`Client::batch`] call.
#[derive(Clone, Debug)]
pub struct BatchRequest {
    /// The pattern text.
    pub pattern: String,
    /// Cycle-solving algorithm.
    pub algorithm: Algorithm,
    /// Base RNG seed.
    pub seed: u64,
    /// Trial budget.
    pub budget: u64,
    /// Optional early-stop target.
    pub precision: Option<Precision>,
    /// Optional trace ID to stamp the job with in the server's slow-query
    /// log; the server mints one when absent.
    pub trace: Option<u64>,
}

impl BatchRequest {
    /// A member with the service's default parameters.
    pub fn new(pattern: impl Into<String>) -> Self {
        BatchRequest {
            pattern: pattern.into(),
            algorithm: Algorithm::DegreeBased,
            seed: 0x5eed,
            budget: 64,
            precision: None,
            trace: None,
        }
    }

    /// Sets the base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the trial budget.
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the early-stop precision target.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Selects the cycle-solving algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Stamps the job with a caller-chosen trace ID.
    pub fn trace(mut self, trace_id: u64) -> Self {
        self.trace = Some(trace_id);
        self
    }
}

/// A count request under construction; defaults mirror
/// [`sgc_service::CountJob`].
pub struct CountBuilder<'a> {
    client: &'a mut Client,
    pattern: String,
    algorithm: Algorithm,
    seed: u64,
    budget: u64,
    precision: Option<Precision>,
    trace: Option<u64>,
}

impl<'a> CountBuilder<'a> {
    /// Selects the cycle-solving algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the trial budget.
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the early-stop precision target.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Stamps the job with a caller-chosen trace ID for the server's
    /// slow-query log; the server mints one when not set.
    pub fn trace(mut self, trace_id: u64) -> Self {
        self.trace = Some(trace_id);
        self
    }

    /// Sends the request and returns the estimate stream.
    ///
    /// # Errors
    /// Transport failures while sending; server-side rejections arrive as
    /// the stream's first (and only) item.
    pub fn stream(self) -> Result<CountStream<'a>, ClientError> {
        let id = self.client.next_id;
        self.client.next_id += 1;
        let spec = CountSpec {
            id,
            pattern: self.pattern,
            algorithm: self.algorithm,
            seed: self.seed,
            budget: self.budget,
            precision: self.precision,
            trace: self.trace,
        };
        self.client.send(&Request::Count(spec))?;
        Ok(CountStream {
            client: self.client,
            id,
            done: false,
        })
    }

    /// Subscribes to live re-estimation: the server runs the job once at
    /// the current graph version (the stream's first item, emitted
    /// immediately) and again at every version a later `delta` creates,
    /// streaming one version-tagged [`WatchFrame`] per run. The stream
    /// blocks between versions; call [`WatchStream::cancel`] (or drop the
    /// connection) to unsubscribe.
    ///
    /// Apply deltas from a *different* connection — this one's incoming
    /// frames belong to the watch stream while it is live.
    ///
    /// ```no_run
    /// use sgc_net::Client;
    ///
    /// let mut client = Client::connect("127.0.0.1:7471").unwrap();
    /// let mut watch = client.count("triangle").budget(64).watch().unwrap();
    /// for frame in &mut watch {
    ///     let frame = frame.unwrap();
    ///     println!(
    ///         "v{:016x}: count ≈ {}",
    ///         frame.version, frame.estimated_subgraphs
    ///     );
    /// }
    /// ```
    ///
    /// # Errors
    /// Transport failures while subscribing; server-side rejections arrive
    /// as the stream's first (and only) item.
    pub fn watch(self) -> Result<WatchStream<'a>, ClientError> {
        let id = self.client.next_id;
        self.client.next_id += 1;
        let spec = CountSpec {
            id,
            pattern: self.pattern,
            algorithm: self.algorithm,
            seed: self.seed,
            budget: self.budget,
            precision: self.precision,
            trace: self.trace,
        };
        self.client.send(&Request::Watch(spec))?;
        Ok(WatchStream {
            client: self.client,
            id,
            done: false,
        })
    }

    /// Sends the request and blocks to the final output, discarding the
    /// streamed chunks.
    ///
    /// # Errors
    /// Everything [`stream`](CountBuilder::stream) and the stream itself
    /// can report, including [`ClientError::Remote`] for typed server
    /// errors.
    pub fn run(self) -> Result<WireOutput, ClientError> {
        let mut stream = self.stream()?;
        let mut last = None;
        for event in &mut stream {
            if let StreamEvent::Final(output) = event? {
                last = Some(output);
            }
        }
        last.ok_or(ClientError::ConnectionClosed)
    }
}

/// One item of a [`CountStream`].
#[derive(Clone, Debug, PartialEq)]
pub enum StreamEvent {
    /// An in-progress anytime estimate (one per completed trial chunk).
    Chunk(ChunkFrame),
    /// The final result; the stream ends after yielding it.
    Final(WireOutput),
}

/// A blocking iterator over the estimate frames of one count job: zero or
/// more [`StreamEvent::Chunk`]s, then exactly one [`StreamEvent::Final`]
/// (or one `Err` — a typed server rejection or a transport failure), then
/// `None`.
pub struct CountStream<'a> {
    client: &'a mut Client,
    id: JobId,
    done: bool,
}

impl CountStream<'_> {
    /// The server-visible id of this job.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Requests cancellation of the job: the server stops it at the next
    /// chunk boundary, after which the stream yields its terminal frame —
    /// a `Final` with `StopReason::Cancelled` (and the partial estimate)
    /// when at least one chunk had run, a `cancelled` error otherwise.
    /// Keep consuming the iterator after cancelling.
    ///
    /// # Errors
    /// Transport failures while sending the cancel frame.
    pub fn cancel(&mut self) -> Result<(), ClientError> {
        self.client.send(&Request::Cancel(self.id))
    }
}

/// A blocking iterator over the version-tagged estimate frames of one watch
/// subscription: one [`WatchFrame`] per graph version, starting with the
/// version current at subscription time. Ends after [`cancel`]
/// (acknowledged by the server) or a terminal error.
///
/// [`cancel`]: WatchStream::cancel
pub struct WatchStream<'a> {
    client: &'a mut Client,
    id: JobId,
    done: bool,
}

impl WatchStream<'_> {
    /// The server-visible id of this subscription.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Unsubscribes: the server stops re-emitting and acknowledges, after
    /// which the iterator yields `None`. Keep consuming the iterator after
    /// cancelling — frames already in flight still arrive.
    ///
    /// # Errors
    /// Transport failures while sending the cancel frame.
    pub fn cancel(&mut self) -> Result<(), ClientError> {
        self.client.send(&Request::Cancel(self.id))
    }
}

impl Iterator for WatchStream<'_> {
    type Item = Result<WatchFrame, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let response = match self.client.read_response() {
                Ok(response) => response,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            match response {
                Response::WatchChunk(frame) if frame.id == self.id => return Some(Ok(frame)),
                Response::Error(frame) if frame.id == self.id || frame.id == 0 => {
                    self.done = true;
                    return Some(Err(ClientError::Remote(frame)));
                }
                // The server acknowledged our cancel: the subscription is
                // gone, the stream is over.
                Response::CancelOk { id, .. } if id == self.id => {
                    self.done = true;
                    return None;
                }
                // Frames for other jobs on this connection: not ours, skip.
                Response::WatchChunk(_)
                | Response::Chunk(_)
                | Response::Final { .. }
                | Response::Error(_)
                | Response::CancelOk { .. } => {}
                other => {
                    self.done = true;
                    return Some(Err(ClientError::Unexpected(format!(
                        "mid-watch frame with tag 0x{:02x}",
                        other.tag()
                    ))));
                }
            }
        }
    }
}

impl Iterator for CountStream<'_> {
    type Item = Result<StreamEvent, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let response = match self.client.read_response() {
                Ok(response) => response,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            match response {
                Response::Chunk(chunk) if chunk.id == self.id => {
                    return Some(Ok(StreamEvent::Chunk(chunk)))
                }
                Response::Final { id, output } if id == self.id => {
                    self.done = true;
                    return Some(Ok(StreamEvent::Final(output)));
                }
                Response::Error(frame) if frame.id == self.id || frame.id == 0 => {
                    self.done = true;
                    return Some(Err(ClientError::Remote(frame)));
                }
                // Acknowledgement of our cancel; the terminal frame is
                // still coming.
                Response::CancelOk { id, .. } if id == self.id => {}
                // Frames for other (older, already-failed) jobs on this
                // connection: not ours, skip.
                Response::Chunk(_) | Response::Final { .. } | Response::Error(_) => {}
                other => {
                    self.done = true;
                    return Some(Err(ClientError::Unexpected(format!(
                        "mid-stream frame with tag 0x{:02x}",
                        other.tag()
                    ))));
                }
            }
        }
    }
}
