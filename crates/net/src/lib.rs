//! # sgc-net — the TCP front door of the counting service
//!
//! A std-only network layer over [`sgc_service::Service`]: clients connect
//! over TCP, submit textual pattern queries, and receive **streaming
//! anytime results** — one estimate frame per completed chunk of trials,
//! tightening as the confidence interval narrows, terminated by a final
//! result frame. The protocol speaks length-prefixed binary frames with a
//! hand-rolled codec (no runtime, no serde: the deployment image has
//! neither), and its one hard invariant is **bit-identity**: the estimate
//! a client decodes is bit-for-bit the estimate
//! [`Service::run`](sgc_service::Service::run) returns for the same job
//! parameters — floats travel as IEEE-754 bit patterns, per-trial counts
//! verbatim.
//!
//! * [`wire`] — frames (`[u32 len][u8 tag][payload]`) and bounds-checked
//!   primitive encode/decode; malformed input is a typed error, never a
//!   panic or a hang,
//! * [`proto`] — the verb vocabulary: `hello`, `count` (streams), `batch`,
//!   `cancel`, `explain`, `stats`, `metrics`, `trace`, `delta` (mutate the
//!   graph, get the new version id), `watch` (a live subscription
//!   re-emitting a version-tagged estimate whenever a delta lands), `bye`,
//!   and the response/error taxonomy
//!   ([`ErrorKind::QueueFull`] is the one *retryable* error — admission
//!   control on the wire),
//! * [`server`] — [`Server`]: thread-per-connection accept loop, chunk
//!   frames written by the service workers through progress watchers
//!   (strictly before the final frame), cooperative cancel at chunk
//!   boundaries, clean shutdown,
//! * [`client`] — [`Client`]: a blocking connection with a streaming
//!   iterator of estimate events.
//!
//! ```no_run
//! use sgc_graph::GraphBuilder;
//! use sgc_net::{Client, Server, ServerConfig, StreamEvent};
//! use std::sync::Arc;
//!
//! let mut b = GraphBuilder::new(6);
//! b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
//! let mut server = Server::bind(
//!     "127.0.0.1:0",
//!     Arc::new(b.build()),
//!     ServerConfig::default(),
//! )
//! .unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let stream = client.count("triangle").seed(7).budget(64).stream().unwrap();
//! for event in stream {
//!     if let StreamEvent::Final(output) = event.unwrap() {
//!         println!("triangles ≈ {}", output.estimate.estimated_subgraphs);
//!     }
//! }
//! client.bye().unwrap();
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
pub mod wire;

pub use client::{
    BatchRequest, Client, ClientError, CountBuilder, CountStream, StreamEvent, WatchStream,
};
pub use proto::{
    ChunkFrame, CountSpec, DeltaSpec, ErrorFrame, ErrorKind, JobId, Request, Response, ServerStats,
    StatsFrame, WatchFrame, WireEstimate, WireOutput,
};
pub use server::{Server, ServerConfig};
pub use wire::{FrameError, WireError, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION};
