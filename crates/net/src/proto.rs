//! The message layer: typed requests and responses over [`crate::wire`]
//! frames.
//!
//! Tag assignments (requests `0x01..`, responses `0x81..`):
//!
//! | tag    | message    | payload                                         |
//! |--------|------------|-------------------------------------------------|
//! | `0x01` | Hello      | protocol version (`u32`)                        |
//! | `0x02` | Count      | [`CountSpec`]                                   |
//! | `0x03` | Batch      | `u32` count, then that many [`CountSpec`]s      |
//! | `0x04` | Cancel     | job id (`u64`)                                  |
//! | `0x05` | Explain    | pattern text (`str`)                            |
//! | `0x06` | Stats      | —                                               |
//! | `0x07` | Bye        | —                                               |
//! | `0x08` | Metrics    | —                                               |
//! | `0x09` | Trace      | —                                               |
//! | `0x0A` | Delta      | [`DeltaSpec`] (edge inserts + deletes)          |
//! | `0x0B` | Watch      | [`CountSpec`] (re-run at every new version)     |
//! | `0x81` | HelloOk    | server protocol version (`u32`)                 |
//! | `0x82` | Chunk      | [`ChunkFrame`]                                  |
//! | `0x83` | Final      | job id, [`WireOutput`]                          |
//! | `0x84` | Error      | [`ErrorFrame`]                                  |
//! | `0x85` | ExplainOk  | rendered plan report (`str`)                    |
//! | `0x86` | StatsOk    | [`StatsFrame`]                                  |
//! | `0x87` | CancelOk   | job id, `was_active` (`bool`)                   |
//! | `0x88` | ByeOk      | —                                               |
//! | `0x89` | MetricsOk  | registry exposition (`str`)                     |
//! | `0x8A` | TraceOk    | slow-query log rendering (`str`)                |
//! | `0x8B` | DeltaOk    | new head version id (`u64`)                     |
//! | `0x8C` | WatchChunk | [`WatchFrame`] (version-tagged estimate chunk)  |
//!
//! Estimates cross the wire as [`WireEstimate`]: every `f64` travels as its
//! IEEE-754 bit pattern and the per-trial counts travel verbatim, so the
//! decoded estimate is **bit-identical** to the one the service computed —
//! the invariant the loopback tests pin down.

use crate::wire::{self, Reader, WireError};
use sgc_core::{Algorithm, Estimate};
use sgc_service::{Precision, ServiceMetrics, StopReason};

/// Job ids are caller-assigned `u64`s, unique per connection; `0` in an
/// [`ErrorFrame`] means "about the connection, not any job".
pub type JobId = u64;

/// Encoded bytes of the smallest possible [`CountSpec`]: id (8) + empty
/// pattern's length prefix (4) + algorithm (1) + seed (8) + budget (8) +
/// precision flag (1) + trace flag (1). Bounds how many members a batch
/// payload of a given size can plausibly declare.
const MIN_COUNT_SPEC_BYTES: usize = 31;

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Handshake: the client's protocol version, sent first on every
    /// connection.
    Hello {
        /// The client's [`wire::PROTOCOL_VERSION`].
        version: u32,
    },
    /// Start a counting job; the server streams [`Response::Chunk`] frames
    /// as trials complete, then exactly one [`Response::Final`] or
    /// [`Response::Error`] with the same id.
    Count(CountSpec),
    /// Submit several jobs as one batch (atomic admission); each member
    /// streams and completes independently under its own id.
    Batch(Vec<CountSpec>),
    /// Cancel the active job with this id at its next chunk boundary.
    Cancel(JobId),
    /// Plan a pattern without running it; answered with
    /// [`Response::ExplainOk`].
    Explain {
        /// The pattern text, in the grammar of `sgc_query::parse`.
        pattern: String,
    },
    /// Fetch service metrics and server counters.
    Stats,
    /// Clean goodbye: the server answers [`Response::ByeOk`] and closes.
    Bye,
    /// Fetch the full `sgc-obs` metrics exposition (every histogram,
    /// counter and gauge the process accumulated); answered with
    /// [`Response::MetricsOk`].
    Metrics,
    /// Fetch the slow-query trace log; answered with
    /// [`Response::TraceOk`].
    Trace,
    /// Apply an edge delta to the server's head graph version; answered
    /// with [`Response::DeltaOk`] carrying the new version id, after every
    /// live watch re-emitted. Rejected deltas answer a `delta` error and
    /// leave the graph unchanged.
    Delta(DeltaSpec),
    /// Subscribe to a live count: the server answers one
    /// [`Response::WatchChunk`] at the current head immediately, then a
    /// fresh version-tagged chunk every time a delta lands. `Cancel` with
    /// the same id unsubscribes.
    Watch(CountSpec),
}

/// An edge delta in wire form: vertex-id pairs to insert and to delete.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaSpec {
    /// Edges to insert (must not already exist).
    pub inserts: Vec<(u32, u32)>,
    /// Edges to delete (must exist).
    pub deletes: Vec<(u32, u32)>,
}

/// Everything a `count` request carries: the textual pattern plus the
/// parameters of a [`sgc_service::CountJob`].
#[derive(Clone, Debug, PartialEq)]
pub struct CountSpec {
    /// Caller-assigned id, echoed on every response frame for this job.
    pub id: JobId,
    /// The pattern text, in the grammar of `sgc_query::parse`.
    pub pattern: String,
    /// Cycle-solving algorithm.
    pub algorithm: Algorithm,
    /// Base RNG seed (trial `i` colors with `seed + i`).
    pub seed: u64,
    /// Maximum number of trials.
    pub budget: u64,
    /// Optional early-stop target.
    pub precision: Option<Precision>,
    /// Optional client-supplied trace ID, propagated into the service's
    /// slow-query log; `None` lets the server mint one at submission.
    /// Never part of the job's cache identity.
    pub trace: Option<u64>,
}

impl Request {
    /// The frame tag of this request.
    pub fn tag(&self) -> u8 {
        match self {
            Request::Hello { .. } => 0x01,
            Request::Count(_) => 0x02,
            Request::Batch(_) => 0x03,
            Request::Cancel(_) => 0x04,
            Request::Explain { .. } => 0x05,
            Request::Stats => 0x06,
            Request::Bye => 0x07,
            Request::Metrics => 0x08,
            Request::Trace => 0x09,
            Request::Delta(_) => 0x0A,
            Request::Watch(_) => 0x0B,
        }
    }

    /// Encodes the payload (everything after the tag byte).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Hello { version } => wire::put_u32(&mut buf, *version),
            Request::Count(spec) => encode_count_spec(&mut buf, spec),
            Request::Batch(specs) => {
                wire::put_u32(&mut buf, specs.len() as u32);
                for spec in specs {
                    encode_count_spec(&mut buf, spec);
                }
            }
            Request::Cancel(id) => wire::put_u64(&mut buf, *id),
            Request::Explain { pattern } => wire::put_str(&mut buf, pattern),
            Request::Stats | Request::Bye | Request::Metrics | Request::Trace => {}
            Request::Delta(delta) => {
                encode_edges(&mut buf, &delta.inserts);
                encode_edges(&mut buf, &delta.deletes);
            }
            Request::Watch(spec) => encode_count_spec(&mut buf, spec),
        }
        buf
    }

    /// Decodes a request from its frame tag and payload.
    ///
    /// # Errors
    /// A typed [`WireError`] for unknown tags and malformed payloads; never
    /// panics.
    pub fn decode(tag: u8, payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        let request = match tag {
            0x01 => Request::Hello { version: r.u32()? },
            0x02 => Request::Count(decode_count_spec(&mut r)?),
            0x03 => {
                let count = r.u32()? as usize;
                // Each member needs at least its fixed-width fields on the
                // wire, so the remaining payload bounds the plausible count;
                // reject anything above it before reserving — a `CountSpec`
                // is far larger in memory than on the wire, and an honest
                // length check alone would let one hostile frame reserve
                // gigabytes.
                let max = r.remaining() / MIN_COUNT_SPEC_BYTES;
                if count > max {
                    return Err(WireError::LengthOverflow {
                        declared: count,
                        max,
                    });
                }
                let mut specs = Vec::with_capacity(count);
                for _ in 0..count {
                    specs.push(decode_count_spec(&mut r)?);
                }
                Request::Batch(specs)
            }
            0x04 => Request::Cancel(r.u64()?),
            0x05 => Request::Explain { pattern: r.str()? },
            0x06 => Request::Stats,
            0x07 => Request::Bye,
            0x08 => Request::Metrics,
            0x09 => Request::Trace,
            0x0A => Request::Delta(DeltaSpec {
                inserts: decode_edges(&mut r)?,
                deletes: decode_edges(&mut r)?,
            }),
            0x0B => Request::Watch(decode_count_spec(&mut r)?),
            tag => return Err(WireError::BadTag { tag }),
        };
        r.finish()?;
        Ok(request)
    }
}

fn encode_edges(buf: &mut Vec<u8>, edges: &[(u32, u32)]) {
    wire::put_u32(buf, edges.len() as u32);
    for &(u, v) in edges {
        wire::put_u32(buf, u);
        wire::put_u32(buf, v);
    }
}

fn decode_edges(r: &mut Reader<'_>) -> Result<Vec<(u32, u32)>, WireError> {
    let count = r.u32()? as usize;
    // Each edge is 8 bytes on the wire; the remaining payload bounds the
    // plausible count, so a hostile length cannot reserve gigabytes.
    let max = r.remaining() / 8;
    if count > max {
        return Err(WireError::LengthOverflow {
            declared: count,
            max,
        });
    }
    let mut edges = Vec::with_capacity(count);
    for _ in 0..count {
        edges.push((r.u32()?, r.u32()?));
    }
    Ok(edges)
}

fn encode_count_spec(buf: &mut Vec<u8>, spec: &CountSpec) {
    wire::put_u64(buf, spec.id);
    wire::put_str(buf, &spec.pattern);
    wire::put_u8(buf, encode_algorithm(spec.algorithm));
    wire::put_u64(buf, spec.seed);
    wire::put_u64(buf, spec.budget);
    match spec.precision {
        None => wire::put_u8(buf, 0),
        Some(p) => {
            wire::put_u8(buf, 1);
            wire::put_f64(buf, p.target);
            wire::put_f64(buf, p.confidence);
        }
    }
    match spec.trace {
        None => wire::put_u8(buf, 0),
        Some(id) => {
            wire::put_u8(buf, 1);
            wire::put_u64(buf, id);
        }
    }
}

fn decode_count_spec(r: &mut Reader<'_>) -> Result<CountSpec, WireError> {
    let id = r.u64()?;
    let pattern = r.str()?;
    let algorithm = decode_algorithm(r.u8()?)?;
    let seed = r.u64()?;
    let budget = r.u64()?;
    let precision = match r.u8()? {
        0 => None,
        1 => Some(Precision {
            target: r.f64()?,
            confidence: r.f64()?,
        }),
        value => {
            return Err(WireError::BadEnum {
                what: "precision option",
                value,
            })
        }
    };
    let trace = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        value => {
            return Err(WireError::BadEnum {
                what: "trace option",
                value,
            })
        }
    };
    Ok(CountSpec {
        id,
        pattern,
        algorithm,
        seed,
        budget,
        precision,
        trace,
    })
}

fn encode_algorithm(a: Algorithm) -> u8 {
    match a {
        Algorithm::DegreeBased => 0,
        Algorithm::PathSplitting => 1,
    }
}

fn decode_algorithm(v: u8) -> Result<Algorithm, WireError> {
    match v {
        0 => Ok(Algorithm::DegreeBased),
        1 => Ok(Algorithm::PathSplitting),
        value => Err(WireError::BadEnum {
            what: "algorithm",
            value,
        }),
    }
}

fn encode_stop(s: StopReason) -> u8 {
    match s {
        StopReason::BudgetExhausted => 0,
        StopReason::PrecisionMet => 1,
        StopReason::Cancelled => 2,
    }
}

fn decode_stop(v: u8) -> Result<StopReason, WireError> {
    match v {
        0 => Ok(StopReason::BudgetExhausted),
        1 => Ok(StopReason::PrecisionMet),
        2 => Ok(StopReason::Cancelled),
        value => Err(WireError::BadEnum {
            what: "stop reason",
            value,
        }),
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// One server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake acknowledgement with the server's protocol version.
    HelloOk {
        /// The server's [`wire::PROTOCOL_VERSION`].
        version: u32,
    },
    /// An in-progress anytime estimate for a streaming job.
    Chunk(ChunkFrame),
    /// The final result of a job; exactly one per successful job, after all
    /// its chunks.
    Final {
        /// The job this result belongs to.
        id: JobId,
        /// The completed output.
        output: WireOutput,
    },
    /// A job-level (`id != 0`) or connection-level (`id == 0`) error.
    Error(ErrorFrame),
    /// The rendered plan report for an `explain` request.
    ExplainOk {
        /// `PlanReport`'s `Display` rendering.
        report: String,
    },
    /// Service metrics and server counters for a `stats` request.
    StatsOk(StatsFrame),
    /// Acknowledges a `cancel` request.
    CancelOk {
        /// The id the cancel named.
        id: JobId,
        /// Whether that id was an active job on this connection when the
        /// cancel arrived (`false` = already finished or never existed).
        was_active: bool,
    },
    /// Acknowledges `bye`; the server closes the connection after sending.
    ByeOk,
    /// The full `sgc-obs` metrics exposition for a `metrics` request.
    MetricsOk {
        /// Sorted `name value` lines from the registry.
        exposition: String,
    },
    /// The slow-query trace log for a `trace` request.
    TraceOk {
        /// The rendered trace ring, slowest job first.
        report: String,
    },
    /// Acknowledges a `delta` request: the delta applied and every live
    /// watch re-emitted at the new version.
    DeltaOk {
        /// The new head version id.
        version: u64,
    },
    /// One version-tagged estimate chunk of a `watch` subscription: sent
    /// once at registration (the current head) and once per applied delta.
    WatchChunk(WatchFrame),
}

/// One watch emission: a [`ChunkFrame`]-shaped estimate stamped with the
/// graph version it was computed at.
#[derive(Clone, Debug, PartialEq)]
pub struct WatchFrame {
    /// The watch subscription this emission belongs to.
    pub id: JobId,
    /// The graph version the estimate was computed at.
    pub version: u64,
    /// Trials executed for this emission.
    pub trials_run: u64,
    /// The watch job's trial budget.
    pub budget: u64,
    /// Estimated subgraph count at this version (bit pattern preserved).
    pub estimated_subgraphs: f64,
    /// Relative half-width of the confidence interval at this version.
    pub relative_half_width: f64,
}

/// One streamed progress update: the anytime estimate after a completed
/// chunk of trials.
#[derive(Clone, Debug, PartialEq)]
pub struct ChunkFrame {
    /// The job this update belongs to.
    pub id: JobId,
    /// Trials executed so far.
    pub trials_run: u64,
    /// The job's trial budget.
    pub budget: u64,
    /// Estimated subgraph count so far (bit pattern preserved).
    pub estimated_subgraphs: f64,
    /// Relative half-width of the 95% confidence interval so far.
    pub relative_half_width: f64,
}

/// A [`sgc_service::JobOutput`] in wire form.
#[derive(Clone, Debug, PartialEq)]
pub struct WireOutput {
    /// Trials executed.
    pub trials_run: u64,
    /// The submitted budget.
    pub budget: u64,
    /// Why the trial loop stopped.
    pub stop: StopReason,
    /// Whether the result came from the service's result cache.
    pub from_cache: bool,
    /// The full estimate, bit-identical to the service's.
    pub estimate: WireEstimate,
}

/// A [`sgc_core::Estimate`] in wire form: all nine fields, floats as bit
/// patterns, per-trial counts verbatim. `from_estimate` / `into_estimate`
/// round-trip bit-exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct WireEstimate {
    /// Colorful-match counts per trial.
    pub per_trial: Vec<u64>,
    /// Mean of `per_trial`.
    pub mean_colorful: f64,
    /// Inverse-hit-probability scale factor.
    pub scale: f64,
    /// Estimated (labelled) match count.
    pub estimated_matches: f64,
    /// Estimated subgraph count (matches / automorphisms).
    pub estimated_subgraphs: f64,
    /// Automorphism count of the query.
    pub automorphisms: u64,
    /// Sample variance of the per-trial counts.
    pub variance: f64,
    /// Coefficient of variation of the per-trial counts.
    pub coefficient_of_variation: f64,
    /// Wall-clock seconds the trials took (informational; not part of the
    /// bit-identity contract, but transported bit-exactly anyway).
    pub total_seconds: f64,
}

impl WireEstimate {
    /// Captures an engine estimate for the wire.
    pub fn from_estimate(e: &Estimate) -> Self {
        WireEstimate {
            per_trial: e.per_trial.clone(),
            mean_colorful: e.mean_colorful,
            scale: e.scale,
            estimated_matches: e.estimated_matches,
            estimated_subgraphs: e.estimated_subgraphs,
            automorphisms: e.automorphisms,
            variance: e.variance,
            coefficient_of_variation: e.coefficient_of_variation,
            total_seconds: e.total_seconds,
        }
    }

    /// Reconstructs the engine estimate, bit-identical to the original.
    pub fn into_estimate(self) -> Estimate {
        Estimate {
            per_trial: self.per_trial,
            mean_colorful: self.mean_colorful,
            scale: self.scale,
            estimated_matches: self.estimated_matches,
            estimated_subgraphs: self.estimated_subgraphs,
            automorphisms: self.automorphisms,
            variance: self.variance,
            coefficient_of_variation: self.coefficient_of_variation,
            total_seconds: self.total_seconds,
        }
    }
}

/// The error taxonomy of the wire protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The pattern failed to parse; the frame carries the span and the
    /// caret diagnostic.
    Parse,
    /// Admission control rejected the job: the work queue is full. The only
    /// *retryable* error — back off and resubmit.
    QueueFull,
    /// The service is shutting down.
    ShuttingDown,
    /// The precision target was invalid.
    InvalidPrecision,
    /// The counting engine rejected the job.
    Count,
    /// The job was cancelled before any trials completed.
    Cancelled,
    /// A `cancel` named an id that is not an active job (informational —
    /// the server answers [`Response::CancelOk`] with `was_active: false`
    /// instead of this in the normal case).
    UnknownJob,
    /// The frame itself was malformed (bad tag, truncated or oversized
    /// payload). Connection-level: the server closes after sending.
    BadFrame,
    /// The request was well-formed but invalid in context (e.g. a duplicate
    /// active job id, or a verb before `hello`).
    BadRequest,
    /// The server failed internally (worker lost).
    Internal,
    /// A `count-at` or version-pinned request named a graph version the
    /// server does not hold.
    UnknownVersion,
    /// A `delta` request was rejected by the snapshot layer (deleting an
    /// absent edge, inserting an existing one, a vertex out of range). The
    /// graph is unchanged.
    Delta,
}

impl ErrorKind {
    /// Whether the client may retry the identical request and expect it to
    /// succeed. Only admission-control rejections qualify.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ErrorKind::QueueFull)
    }

    fn encode(self) -> u8 {
        match self {
            ErrorKind::Parse => 0,
            ErrorKind::QueueFull => 1,
            ErrorKind::ShuttingDown => 2,
            ErrorKind::InvalidPrecision => 3,
            ErrorKind::Count => 4,
            ErrorKind::Cancelled => 5,
            ErrorKind::UnknownJob => 6,
            ErrorKind::BadFrame => 7,
            ErrorKind::BadRequest => 8,
            ErrorKind::Internal => 9,
            ErrorKind::UnknownVersion => 10,
            ErrorKind::Delta => 11,
        }
    }

    fn decode(v: u8) -> Result<ErrorKind, WireError> {
        Ok(match v {
            0 => ErrorKind::Parse,
            1 => ErrorKind::QueueFull,
            2 => ErrorKind::ShuttingDown,
            3 => ErrorKind::InvalidPrecision,
            4 => ErrorKind::Count,
            5 => ErrorKind::Cancelled,
            6 => ErrorKind::UnknownJob,
            7 => ErrorKind::BadFrame,
            8 => ErrorKind::BadRequest,
            9 => ErrorKind::Internal,
            10 => ErrorKind::UnknownVersion,
            11 => ErrorKind::Delta,
            value => {
                return Err(WireError::BadEnum {
                    what: "error kind",
                    value,
                })
            }
        })
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorKind::Parse => "parse",
            ErrorKind::QueueFull => "queue-full",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::InvalidPrecision => "invalid-precision",
            ErrorKind::Count => "count",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::UnknownJob => "unknown-job",
            ErrorKind::BadFrame => "bad-frame",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Internal => "internal",
            ErrorKind::UnknownVersion => "unknown-version",
            ErrorKind::Delta => "delta",
        };
        f.write_str(name)
    }
}

/// A typed error response.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorFrame {
    /// The job the error belongs to; `0` for connection-level errors.
    pub id: JobId,
    /// The error class — drives client retry behaviour.
    pub kind: ErrorKind,
    /// Human-readable one-line message.
    pub message: String,
    /// For [`ErrorKind::Parse`]: the byte span of the offending pattern
    /// text.
    pub span: Option<(u64, u64)>,
    /// For [`ErrorKind::Parse`]: the multi-line caret rendering produced by
    /// the parser's diagnostic machinery.
    pub diagnostic: Option<String>,
}

impl ErrorFrame {
    /// A plain error with neither span nor diagnostic.
    pub fn new(id: JobId, kind: ErrorKind, message: impl Into<String>) -> Self {
        ErrorFrame {
            id,
            kind,
            message: message.into(),
            span: None,
            diagnostic: None,
        }
    }

    /// A parse error carrying the parser's span and caret diagnostic.
    pub fn from_parse_error(id: JobId, e: &sgc_query::PatternParseError) -> Self {
        let span = e.span();
        ErrorFrame {
            id,
            kind: ErrorKind::Parse,
            message: e.message().to_string(),
            span: Some((span.start as u64, span.end as u64)),
            diagnostic: Some(e.diagnostic()),
        }
    }
}

/// The caret diagnostic when present, otherwise `kind: message`.
impl std::fmt::Display for ErrorFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.diagnostic {
            Some(diagnostic) => f.write_str(diagnostic),
            None => write!(f, "{}: {}", self.kind, self.message),
        }
    }
}

/// Server-side connection/frame counters, reported by the `stats` verb
/// alongside the service metrics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted since the server started.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_open: u64,
    /// Frames read from clients.
    pub frames_read: u64,
    /// Frames written to clients.
    pub frames_written: u64,
    /// Count streams opened (jobs started over the wire).
    pub streams_opened: u64,
    /// Count streams currently running.
    pub streams_active: u64,
    /// Cancels that hit an active job.
    pub jobs_cancelled: u64,
    /// Malformed frames / protocol violations observed.
    pub protocol_errors: u64,
}

/// The stable text form of the server counters: one `name value` per line,
/// fixed order, no trailing newline — the same contract as
/// [`ServiceMetrics`]'s `Display`.
impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "connections_accepted {}\n\
             connections_open     {}\n\
             frames_read          {}\n\
             frames_written       {}\n\
             streams_opened       {}\n\
             streams_active       {}\n\
             jobs_cancelled       {}\n\
             protocol_errors      {}",
            self.connections_accepted,
            self.connections_open,
            self.frames_read,
            self.frames_written,
            self.streams_opened,
            self.streams_active,
            self.jobs_cancelled,
            self.protocol_errors,
        )
    }
}

/// The `stats` response payload: a service metrics snapshot plus the
/// server's own counters.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsFrame {
    /// The counting service's metrics.
    pub service: ServiceMetrics,
    /// The network layer's counters.
    pub server: ServerStats,
    /// The registry exposition at snapshot time, so `stats` surfaces the
    /// kernel/shard/run counters that the two fixed structs above don't
    /// carry. Empty when observability is disabled.
    pub exposition: String,
}

impl Response {
    /// The frame tag of this response.
    pub fn tag(&self) -> u8 {
        match self {
            Response::HelloOk { .. } => 0x81,
            Response::Chunk(_) => 0x82,
            Response::Final { .. } => 0x83,
            Response::Error(_) => 0x84,
            Response::ExplainOk { .. } => 0x85,
            Response::StatsOk(_) => 0x86,
            Response::CancelOk { .. } => 0x87,
            Response::ByeOk => 0x88,
            Response::MetricsOk { .. } => 0x89,
            Response::TraceOk { .. } => 0x8A,
            Response::DeltaOk { .. } => 0x8B,
            Response::WatchChunk(_) => 0x8C,
        }
    }

    /// Encodes the payload (everything after the tag byte).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::HelloOk { version } => wire::put_u32(&mut buf, *version),
            Response::Chunk(c) => {
                wire::put_u64(&mut buf, c.id);
                wire::put_u64(&mut buf, c.trials_run);
                wire::put_u64(&mut buf, c.budget);
                wire::put_f64(&mut buf, c.estimated_subgraphs);
                wire::put_f64(&mut buf, c.relative_half_width);
            }
            Response::Final { id, output } => {
                wire::put_u64(&mut buf, *id);
                wire::put_u64(&mut buf, output.trials_run);
                wire::put_u64(&mut buf, output.budget);
                wire::put_u8(&mut buf, encode_stop(output.stop));
                wire::put_bool(&mut buf, output.from_cache);
                encode_estimate(&mut buf, &output.estimate);
            }
            Response::Error(e) => {
                wire::put_u64(&mut buf, e.id);
                wire::put_u8(&mut buf, e.kind.encode());
                wire::put_str(&mut buf, &e.message);
                match e.span {
                    None => wire::put_u8(&mut buf, 0),
                    Some((start, end)) => {
                        wire::put_u8(&mut buf, 1);
                        wire::put_u64(&mut buf, start);
                        wire::put_u64(&mut buf, end);
                    }
                }
                match &e.diagnostic {
                    None => wire::put_u8(&mut buf, 0),
                    Some(d) => {
                        wire::put_u8(&mut buf, 1);
                        wire::put_str(&mut buf, d);
                    }
                }
            }
            Response::ExplainOk { report } => wire::put_str(&mut buf, report),
            Response::StatsOk(s) => {
                let m = &s.service;
                wire::put_u64(&mut buf, m.jobs_submitted);
                wire::put_u64(&mut buf, m.batches_submitted);
                wire::put_u64(&mut buf, m.jobs_rejected);
                wire::put_u64(&mut buf, m.jobs_completed);
                wire::put_u64(&mut buf, m.queue_depth as u64);
                wire::put_u64(&mut buf, m.cache_hits);
                wire::put_u64(&mut buf, m.cache_misses);
                wire::put_u64(&mut buf, m.cached_results as u64);
                wire::put_u64(&mut buf, m.trials_executed);
                wire::put_u64(&mut buf, m.trials_saved);
                wire::put_u64(&mut buf, m.jobs_cancelled);
                wire::put_u64(&mut buf, m.cache_evictions);
                let srv = &s.server;
                wire::put_u64(&mut buf, srv.connections_accepted);
                wire::put_u64(&mut buf, srv.connections_open);
                wire::put_u64(&mut buf, srv.frames_read);
                wire::put_u64(&mut buf, srv.frames_written);
                wire::put_u64(&mut buf, srv.streams_opened);
                wire::put_u64(&mut buf, srv.streams_active);
                wire::put_u64(&mut buf, srv.jobs_cancelled);
                wire::put_u64(&mut buf, srv.protocol_errors);
                wire::put_str(&mut buf, &s.exposition);
            }
            Response::CancelOk { id, was_active } => {
                wire::put_u64(&mut buf, *id);
                wire::put_bool(&mut buf, *was_active);
            }
            Response::ByeOk => {}
            Response::MetricsOk { exposition } => wire::put_str(&mut buf, exposition),
            Response::TraceOk { report } => wire::put_str(&mut buf, report),
            Response::DeltaOk { version } => wire::put_u64(&mut buf, *version),
            Response::WatchChunk(w) => {
                wire::put_u64(&mut buf, w.id);
                wire::put_u64(&mut buf, w.version);
                wire::put_u64(&mut buf, w.trials_run);
                wire::put_u64(&mut buf, w.budget);
                wire::put_f64(&mut buf, w.estimated_subgraphs);
                wire::put_f64(&mut buf, w.relative_half_width);
            }
        }
        buf
    }

    /// Decodes a response from its frame tag and payload.
    ///
    /// # Errors
    /// A typed [`WireError`] for unknown tags and malformed payloads; never
    /// panics.
    pub fn decode(tag: u8, payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let response = match tag {
            0x81 => Response::HelloOk { version: r.u32()? },
            0x82 => Response::Chunk(ChunkFrame {
                id: r.u64()?,
                trials_run: r.u64()?,
                budget: r.u64()?,
                estimated_subgraphs: r.f64()?,
                relative_half_width: r.f64()?,
            }),
            0x83 => Response::Final {
                id: r.u64()?,
                output: WireOutput {
                    trials_run: r.u64()?,
                    budget: r.u64()?,
                    stop: decode_stop(r.u8()?)?,
                    from_cache: r.bool()?,
                    estimate: decode_estimate(&mut r)?,
                },
            },
            0x84 => Response::Error(ErrorFrame {
                id: r.u64()?,
                kind: ErrorKind::decode(r.u8()?)?,
                message: r.str()?,
                span: match r.u8()? {
                    0 => None,
                    1 => Some((r.u64()?, r.u64()?)),
                    value => {
                        return Err(WireError::BadEnum {
                            what: "span option",
                            value,
                        })
                    }
                },
                diagnostic: match r.u8()? {
                    0 => None,
                    1 => Some(r.str()?),
                    value => {
                        return Err(WireError::BadEnum {
                            what: "diagnostic option",
                            value,
                        })
                    }
                },
            }),
            0x85 => Response::ExplainOk { report: r.str()? },
            0x86 => Response::StatsOk(StatsFrame {
                service: ServiceMetrics {
                    jobs_submitted: r.u64()?,
                    batches_submitted: r.u64()?,
                    jobs_rejected: r.u64()?,
                    jobs_completed: r.u64()?,
                    queue_depth: r.u64()? as usize,
                    cache_hits: r.u64()?,
                    cache_misses: r.u64()?,
                    cached_results: r.u64()? as usize,
                    trials_executed: r.u64()?,
                    trials_saved: r.u64()?,
                    jobs_cancelled: r.u64()?,
                    cache_evictions: r.u64()?,
                },
                server: ServerStats {
                    connections_accepted: r.u64()?,
                    connections_open: r.u64()?,
                    frames_read: r.u64()?,
                    frames_written: r.u64()?,
                    streams_opened: r.u64()?,
                    streams_active: r.u64()?,
                    jobs_cancelled: r.u64()?,
                    protocol_errors: r.u64()?,
                },
                exposition: r.str()?,
            }),
            0x87 => Response::CancelOk {
                id: r.u64()?,
                was_active: r.bool()?,
            },
            0x88 => Response::ByeOk,
            0x89 => Response::MetricsOk {
                exposition: r.str()?,
            },
            0x8A => Response::TraceOk { report: r.str()? },
            0x8B => Response::DeltaOk { version: r.u64()? },
            0x8C => Response::WatchChunk(WatchFrame {
                id: r.u64()?,
                version: r.u64()?,
                trials_run: r.u64()?,
                budget: r.u64()?,
                estimated_subgraphs: r.f64()?,
                relative_half_width: r.f64()?,
            }),
            tag => return Err(WireError::BadTag { tag }),
        };
        r.finish()?;
        Ok(response)
    }
}

fn encode_estimate(buf: &mut Vec<u8>, e: &WireEstimate) {
    wire::put_u64s(buf, &e.per_trial);
    wire::put_f64(buf, e.mean_colorful);
    wire::put_f64(buf, e.scale);
    wire::put_f64(buf, e.estimated_matches);
    wire::put_f64(buf, e.estimated_subgraphs);
    wire::put_u64(buf, e.automorphisms);
    wire::put_f64(buf, e.variance);
    wire::put_f64(buf, e.coefficient_of_variation);
    wire::put_f64(buf, e.total_seconds);
}

fn decode_estimate(r: &mut Reader<'_>) -> Result<WireEstimate, WireError> {
    Ok(WireEstimate {
        per_trial: r.u64s()?,
        mean_colorful: r.f64()?,
        scale: r.f64()?,
        estimated_matches: r.f64()?,
        estimated_subgraphs: r.f64()?,
        automorphisms: r.u64()?,
        variance: r.f64()?,
        coefficient_of_variation: r.f64()?,
        total_seconds: r.f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let decoded = Request::decode(req.tag(), &req.encode()).unwrap();
        assert_eq!(decoded, req);
    }

    fn round_trip_response(resp: Response) {
        let decoded = Response::decode(resp.tag(), &resp.encode()).unwrap();
        assert_eq!(decoded, resp);
    }

    fn demo_spec(id: JobId) -> CountSpec {
        CountSpec {
            id,
            pattern: "cycle(5)".to_string(),
            algorithm: Algorithm::PathSplitting,
            seed: 0x5eed,
            budget: 64,
            precision: Some(Precision::within(0.1).at_confidence(0.99)),
            trace: Some(0xABCD),
        }
    }

    fn demo_estimate() -> WireEstimate {
        WireEstimate {
            per_trial: vec![3, 0, 7, 2],
            mean_colorful: 3.0,
            scale: 12.7,
            estimated_matches: 38.1,
            estimated_subgraphs: 6.35,
            automorphisms: 6,
            variance: 8.666,
            coefficient_of_variation: 0.98,
            total_seconds: 0.0123,
        }
    }

    #[test]
    fn every_request_round_trips() {
        round_trip_request(Request::Hello { version: 1 });
        round_trip_request(Request::Count(demo_spec(1)));
        round_trip_request(Request::Count(CountSpec {
            precision: None,
            trace: None,
            ..demo_spec(2)
        }));
        round_trip_request(Request::Batch(vec![demo_spec(1), demo_spec(2)]));
        round_trip_request(Request::Batch(Vec::new()));
        round_trip_request(Request::Cancel(42));
        round_trip_request(Request::Explain {
            pattern: "a-b, b-c".to_string(),
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Bye);
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Trace);
        round_trip_request(Request::Delta(DeltaSpec {
            inserts: vec![(0, 3), (17, 99)],
            deletes: vec![(1, 2)],
        }));
        round_trip_request(Request::Delta(DeltaSpec::default()));
        round_trip_request(Request::Watch(demo_spec(7)));
    }

    #[test]
    fn every_response_round_trips() {
        round_trip_response(Response::HelloOk { version: 1 });
        round_trip_response(Response::Chunk(ChunkFrame {
            id: 9,
            trials_run: 16,
            budget: 64,
            estimated_subgraphs: 123.456,
            relative_half_width: 0.25,
        }));
        round_trip_response(Response::Final {
            id: 9,
            output: WireOutput {
                trials_run: 64,
                budget: 64,
                stop: StopReason::BudgetExhausted,
                from_cache: true,
                estimate: demo_estimate(),
            },
        });
        round_trip_response(Response::Error(ErrorFrame {
            id: 0,
            kind: ErrorKind::Parse,
            message: "unexpected token".to_string(),
            span: Some((2, 3)),
            diagnostic: Some("a--b\n  ^".to_string()),
        }));
        round_trip_response(Response::Error(ErrorFrame::new(
            7,
            ErrorKind::QueueFull,
            "work queue is full",
        )));
        round_trip_response(Response::ExplainOk {
            report: "plan: 2 components".to_string(),
        });
        round_trip_response(Response::StatsOk(StatsFrame {
            service: ServiceMetrics {
                jobs_submitted: 10,
                batches_submitted: 2,
                jobs_rejected: 1,
                jobs_completed: 9,
                queue_depth: 3,
                cache_hits: 4,
                cache_misses: 5,
                cached_results: 5,
                trials_executed: 500,
                trials_saved: 100,
                jobs_cancelled: 1,
                cache_evictions: 2,
            },
            server: ServerStats {
                connections_accepted: 3,
                connections_open: 1,
                frames_read: 40,
                frames_written: 50,
                streams_opened: 10,
                streams_active: 2,
                jobs_cancelled: 1,
                protocol_errors: 0,
            },
            exposition: "engine_runs 12\nservice_jobs_completed 9".to_string(),
        }));
        round_trip_response(Response::CancelOk {
            id: 42,
            was_active: true,
        });
        round_trip_response(Response::ByeOk);
        round_trip_response(Response::MetricsOk {
            exposition: "span_coloring_count 3\nspan_coloring_p50_ns 1024".to_string(),
        });
        round_trip_response(Response::MetricsOk {
            exposition: String::new(),
        });
        round_trip_response(Response::TraceOk {
            report: "trace_id=1 label=5n5e/PS seed=7 outcome=precision_met".to_string(),
        });
        round_trip_response(Response::DeltaOk {
            version: 0xDEAD_BEEF_0123,
        });
        round_trip_response(Response::WatchChunk(WatchFrame {
            id: 7,
            version: 0xDEAD_BEEF_0123,
            trials_run: 32,
            budget: 64,
            estimated_subgraphs: 98.5,
            relative_half_width: 0.125,
        }));
    }

    #[test]
    fn delta_edge_lists_bound_their_declared_length() {
        // A delta promising more edges than bytes must be refused before
        // reserving.
        let mut buf = Vec::new();
        wire::put_u32(&mut buf, u32::MAX);
        assert!(matches!(
            Request::decode(0x0A, &buf),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn estimates_cross_the_wire_bit_identically() {
        // NaN and signed-zero bit patterns survive, which plain `==` on
        // floats cannot even express.
        let mut e = demo_estimate();
        e.variance = f64::NAN;
        e.scale = -0.0;
        let mut buf = Vec::new();
        encode_estimate(&mut buf, &e);
        let mut r = Reader::new(&buf);
        let back = decode_estimate(&mut r).unwrap();
        r.finish().unwrap();
        assert!(back.variance.is_nan());
        assert_eq!(back.scale.to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.per_trial, e.per_trial);
        assert_eq!(
            back.estimated_matches.to_bits(),
            e.estimated_matches.to_bits()
        );
        // And the Estimate conversion is lossless in both directions
        // (checked on the NaN-free estimate: derived `PartialEq` on floats
        // cannot compare NaNs — the bit-pattern asserts above cover those).
        let original = demo_estimate();
        let est = original.clone().into_estimate();
        assert_eq!(WireEstimate::from_estimate(&est), original);
    }

    #[test]
    fn parse_errors_carry_the_caret_diagnostic() {
        let parse_err = sgc_query::Pattern::parse("a--b").unwrap_err();
        let frame = ErrorFrame::from_parse_error(3, &parse_err);
        assert_eq!(frame.kind, ErrorKind::Parse);
        assert_eq!(frame.span, Some((2, 3)));
        let diagnostic = frame.diagnostic.clone().unwrap();
        assert!(diagnostic.contains('^'), "diagnostic: {diagnostic}");
        // Display renders the caret form; the round trip preserves it.
        assert_eq!(frame.to_string(), diagnostic);
        round_trip_response(Response::Error(frame));
    }

    #[test]
    fn unknown_tags_and_enums_are_typed_errors() {
        assert_eq!(
            Request::decode(0x7F, &[]),
            Err(WireError::BadTag { tag: 0x7F })
        );
        assert_eq!(
            Response::decode(0x01, &[]),
            Err(WireError::BadTag { tag: 0x01 })
        );
        // Bad algorithm discriminant inside a count spec.
        let mut buf = Vec::new();
        wire::put_u64(&mut buf, 1);
        wire::put_str(&mut buf, "triangle");
        wire::put_u8(&mut buf, 9); // not an algorithm
        assert!(matches!(
            Request::decode(0x02, &buf),
            Err(WireError::BadEnum {
                what: "algorithm",
                ..
            })
        ));
        // Trailing bytes after a complete message.
        let mut buf = Request::Cancel(1).encode();
        buf.push(0);
        assert_eq!(
            Request::decode(0x04, &buf),
            Err(WireError::TrailingBytes { remaining: 1 })
        );
        // A batch count promising more members than bytes.
        let mut buf = Vec::new();
        wire::put_u32(&mut buf, u32::MAX);
        assert!(matches!(
            Request::decode(0x03, &buf),
            Err(WireError::LengthOverflow { .. })
        ));
        // A batch count that fits the raw byte length but not the minimum
        // encoded spec size: 100 bytes cannot hold 50 members, so the
        // decoder must refuse before reserving 50 spec slots.
        let mut buf = Vec::new();
        wire::put_u32(&mut buf, 50);
        buf.extend_from_slice(&[0u8; 100]);
        assert_eq!(
            Request::decode(0x03, &buf),
            Err(WireError::LengthOverflow {
                declared: 50,
                max: 100 / MIN_COUNT_SPEC_BYTES,
            })
        );
        // The bound is tight: a batch whose encoding is exactly its members
        // still decodes.
        let specs = vec![CountSpec {
            id: 1,
            pattern: String::new(),
            algorithm: Algorithm::DegreeBased,
            seed: 0,
            budget: 1,
            precision: None,
            trace: None,
        }];
        let encoded = Request::Batch(specs.clone()).encode();
        assert_eq!(encoded.len(), 4 + MIN_COUNT_SPEC_BYTES);
        assert_eq!(Request::decode(0x03, &encoded), Ok(Request::Batch(specs)));
    }

    #[test]
    fn retryability_is_queue_full_only() {
        assert!(ErrorKind::QueueFull.is_retryable());
        for kind in [
            ErrorKind::Parse,
            ErrorKind::ShuttingDown,
            ErrorKind::InvalidPrecision,
            ErrorKind::Count,
            ErrorKind::Cancelled,
            ErrorKind::UnknownJob,
            ErrorKind::BadFrame,
            ErrorKind::BadRequest,
            ErrorKind::Internal,
            ErrorKind::UnknownVersion,
            ErrorKind::Delta,
        ] {
            assert!(!kind.is_retryable(), "{kind} must not be retryable");
        }
    }

    #[test]
    fn server_stats_display_is_line_oriented() {
        let stats = ServerStats {
            connections_accepted: 3,
            frames_read: 10,
            ..ServerStats::default()
        };
        let text = stats.to_string();
        assert!(text.lines().any(|l| l.starts_with("connections_accepted")));
        assert_eq!(text.lines().count(), 8);
        assert!(!text.ends_with('\n'));
    }
}
