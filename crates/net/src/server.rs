//! The server: a thread-per-connection TCP front door over a
//! [`Service`].
//!
//! Std-only by design — the deployment environment has no async runtime,
//! and the concurrency story the service already has (bounded queue, worker
//! pool, single-flight cache) does the heavy lifting; the network layer
//! only needs one cheap blocking thread per connection:
//!
//! * the **accept loop** runs on its own thread and hands each connection
//!   to a handler thread,
//! * each **connection handler** reads frames with a read timeout (so it
//!   can poll the shutdown flag while idle), decodes requests, and answers
//!   on a mutex-guarded write half — whole frames are written under the
//!   lock, so responses from concurrent jobs never interleave mid-frame.
//!   Writes carry a timeout too: chunk frames are written by shared
//!   service workers, and a client that stops reading must not wedge a
//!   worker forever. The first write failure (timeout included) marks the
//!   connection **dead** — its socket is shut down, its active jobs are
//!   cancelled, and every later write fails fast without touching the
//!   socket,
//! * each **count job** gets a small waiter thread that blocks on the
//!   service's [`JobHandle`] and writes the `Final` frame; the streamed
//!   `Chunk` frames are written by the service worker itself, through the
//!   progress watcher, strictly *before* the handle is fulfilled — which is
//!   what guarantees every chunk precedes its final on the wire.
//!
//! Counting work is never duplicated for the wire: requests flow through
//! [`Service::submit_with_progress`], so network jobs share the same
//! admission control, adaptive scheduling, and single-flight result cache
//! as in-process callers, and their outputs are bit-identical to
//! [`Service::run`] with the same parameters.

use crate::proto::{
    ChunkFrame, CountSpec, DeltaSpec, ErrorFrame, ErrorKind, JobId, Request, Response, ServerStats,
    StatsFrame, WatchFrame, WireEstimate, WireOutput,
};
use crate::wire::{self, FrameError, RawFrame, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION};
use sgc_graph::CsrGraph;
use sgc_service::{
    BatchJob, CancelToken, ChunkUpdate, CountJob, EdgeDelta, JobHandle, ProgressFn, Service,
    ServiceConfig, ServiceError, VersionId, WatchFn, WatchHandle,
};
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Construction-time configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Configuration of the embedded counting [`Service`].
    pub service: ServiceConfig,
    /// Per-connection read timeout: how often an idle connection handler
    /// wakes to poll the shutdown flag. Not a client deadline — an idle
    /// tick simply loops, and a stall *inside* a frame keeps waiting (the
    /// frame reader retries timeouts mid-frame, so a retransmission-length
    /// hiccup never kills a healthy connection).
    pub read_timeout: Duration,
    /// Per-connection write timeout. Response frames — including the chunk
    /// frames written by shared service worker threads — must land within
    /// this window; a client that stops reading until its TCP window fills
    /// is declared dead (its jobs are cancelled and the connection is
    /// closed) instead of blocking a worker indefinitely.
    pub write_timeout: Duration,
    /// Maximum accepted frame length (tag + payload bytes); oversized
    /// frames are rejected with a `bad-frame` error and the connection is
    /// closed.
    pub max_frame_len: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            service: ServiceConfig::default(),
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// Live server counters (atomics; snapshot with
/// [`ServerCounters::snapshot`]).
#[derive(Default)]
struct ServerCounters {
    connections_accepted: AtomicU64,
    connections_open: AtomicU64,
    frames_read: AtomicU64,
    frames_written: AtomicU64,
    streams_opened: AtomicU64,
    streams_active: AtomicU64,
    jobs_cancelled: AtomicU64,
    protocol_errors: AtomicU64,
}

impl ServerCounters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            frames_read: self.frames_read.load(Ordering::Relaxed),
            frames_written: self.frames_written.load(Ordering::Relaxed),
            streams_opened: self.streams_opened.load(Ordering::Relaxed),
            streams_active: self.streams_active.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// State shared by the accept loop, every connection handler, and
/// [`Server::shutdown`].
struct ServerShared {
    service: Service,
    read_timeout: Duration,
    write_timeout: Duration,
    max_frame_len: usize,
    shutdown: AtomicBool,
    counters: ServerCounters,
    /// Socket clones of every open connection, keyed by connection id, so
    /// shutdown can unblock handlers stuck in a read.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Handler threads to join on shutdown.
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    next_conn_id: AtomicU64,
}

/// A running TCP server; see the [module docs](self) for the architecture.
///
/// Dropping the server shuts it down: the listener stops accepting, open
/// connections are closed, in-flight jobs drain, and every thread is
/// joined.
pub struct Server {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port; see
    /// [`local_addr`](Server::local_addr)), builds a [`Service`] over
    /// `graph`, and starts accepting connections.
    ///
    /// # Errors
    /// The socket-level errors of [`TcpListener::bind`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        graph: Arc<CsrGraph>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            service: Service::with_config(graph, config.service),
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            max_frame_len: config.max_frame_len,
            shutdown: AtomicBool::new(false),
            counters: ServerCounters::default(),
            conns: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
            next_conn_id: AtomicU64::new(1),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("sgc-net-accept".to_string())
            .spawn(move || accept_loop(accept_shared, listener))
            .expect("failed to spawn accept thread");
        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the listener is bound to (the resolved ephemeral port
    /// when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The embedded counting service — the same instance the wire verbs
    /// use, so tests and co-located callers can submit jobs and read
    /// metrics directly.
    pub fn service(&self) -> &Service {
        &self.shared.service
    }

    /// A snapshot of the network-layer counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.counters.snapshot()
    }

    /// The full metrics exposition — the same sorted `name value` lines the
    /// `metrics` wire verb returns, covering stage histograms, engine and
    /// kernel counters, service gauges, and this server's `net_*` counters.
    pub fn exposition(&self) -> String {
        exposition(&self.shared)
    }

    /// The slow-query trace log — the same rendering the `trace` wire verb
    /// returns.
    pub fn trace_report(&self) -> String {
        self.shared.service.trace_report()
    }

    /// Stops the server: no new connections, open connections are closed
    /// immediately (streaming clients lose their sockets — terminal frames
    /// are not guaranteed on the wire, but every in-flight job still
    /// settles service-side), the service drains, and every thread is
    /// joined. Closing sockets *before* draining is what keeps shutdown
    /// deadlock-free: a worker blocked writing a chunk to a client that
    /// stopped reading is unblocked by the close instead of being joined
    /// against forever. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection; it checks
        // the flag before handling anything.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        // Close client sockets FIRST. This unblocks connection handlers
        // stuck in a read and — critically — any service worker blocked in
        // a streaming chunk write to a client that stopped reading; only
        // then is draining the service (which joins its workers) safe.
        {
            let conns = self.shared.conns.lock().unwrap_or_else(|p| p.into_inner());
            for stream in conns.values() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        // Drain the service: in-flight jobs complete (or fail with
        // ShuttingDown), so waiter threads observe terminal results.
        self.shared.service.shutdown();
        let handlers: Vec<JoinHandle<()>> = {
            let mut threads = self
                .shared
                .conn_threads
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            threads.drain(..).collect()
        };
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: Arc<ServerShared>, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(&shared);
        let handler = std::thread::Builder::new()
            .name(format!("sgc-net-conn-{conn_id}"))
            .spawn(move || handle_conn(conn_shared, stream, conn_id));
        match handler {
            Ok(handle) => {
                let mut threads = shared
                    .conn_threads
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                // Reap handlers that already exited so a long-lived server
                // holds handles proportional to *open* connections, not to
                // every connection ever accepted.
                threads.retain(|thread| !thread.is_finished());
                threads.push(handle);
            }
            Err(_) => continue,
        }
    }
}

/// Per-connection state shared between the request loop and the waiter
/// threads of its streaming jobs.
struct Conn {
    shared: Arc<ServerShared>,
    /// The write half (a socket clone). Whole frames are written and
    /// flushed under this lock, so concurrent writers never interleave.
    writer: Mutex<TcpStream>,
    /// Set on the first write failure (timeout included): the client is
    /// unreachable, or a timed-out `write_all` left a torn frame on the
    /// stream. Either way nothing coherent can be sent anymore, so every
    /// later `send` fails fast without taking the socket's write timeout
    /// again — which is what bounds how long a stalled client can occupy a
    /// shared service worker.
    dead: AtomicBool,
    /// Active streaming jobs on this connection: id → cancel token.
    active: Mutex<HashMap<JobId, CancelToken>>,
    /// Live watch subscriptions on this connection: id → service handle.
    /// `Cancel` with a watch id unsubscribes; teardown unregisters all.
    watches: Mutex<HashMap<JobId, WatchHandle>>,
}

impl Conn {
    /// Writes one response frame. Write failures mean the client is gone
    /// (or stopped reading past its write timeout); the connection is
    /// marked dead and its jobs cancelled — callers treat the error as
    /// "stop talking", never as a server error.
    fn send(&self, response: &Response) -> std::io::Result<()> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "connection marked dead",
            ));
        }
        let payload = {
            let _span = sgc_obs::span(sgc_obs::Stage::NetEncode);
            response.encode()
        };
        let result = {
            let _span = sgc_obs::span(sgc_obs::Stage::NetWrite);
            let mut writer = self.writer.lock().unwrap_or_else(|p| p.into_inner());
            wire::write_frame(
                &mut *writer,
                response.tag(),
                &payload,
                self.shared.max_frame_len,
            )
            .and_then(|()| writer.flush())
        };
        match result {
            Ok(()) => {
                self.shared
                    .counters
                    .frames_written
                    .fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.mark_dead();
                Err(e)
            }
        }
    }

    /// Declares the client unreachable: shuts the socket down (unblocking
    /// the request loop's reader), and cancels every active job so service
    /// workers stop computing — and stop writing — for a connection nobody
    /// reads. Idempotent.
    fn mark_dead(&self) {
        if self.dead.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let writer = self.writer.lock().unwrap_or_else(|p| p.into_inner());
            let _ = writer.shutdown(std::net::Shutdown::Both);
        }
        let active = self.active.lock().unwrap_or_else(|p| p.into_inner());
        for token in active.values() {
            token.cancel();
        }
        drop(active);
        let watches = self.watches.lock().unwrap_or_else(|p| p.into_inner());
        for handle in watches.values() {
            handle.cancel();
        }
    }

    fn send_error(&self, id: JobId, kind: ErrorKind, message: impl Into<String>) {
        let _ = self.send(&Response::Error(ErrorFrame::new(id, kind, message)));
    }
}

fn handle_conn(shared: Arc<ServerShared>, stream: TcpStream, conn_id: u64) {
    shared
        .counters
        .connections_accepted
        .fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .connections_open
        .fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.write_timeout));
    // Three socket handles: the buffered read half (owned here), the
    // mutex-guarded write half, and a clone registered for shutdown.
    let conn = match (stream.try_clone(), stream.try_clone()) {
        (Ok(writer), Ok(for_shutdown)) => {
            shared
                .conns
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(conn_id, for_shutdown);
            Arc::new(Conn {
                shared: Arc::clone(&shared),
                writer: Mutex::new(writer),
                dead: AtomicBool::new(false),
                active: Mutex::new(HashMap::new()),
                watches: Mutex::new(HashMap::new()),
            })
        }
        _ => {
            shared
                .counters
                .connections_open
                .fetch_sub(1, Ordering::Relaxed);
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut waiters: Vec<JoinHandle<()>> = Vec::new();
    let mut greeted = false;
    loop {
        let raw = match wire::read_frame(&mut reader, shared.max_frame_len) {
            Ok(Some(raw)) => raw,
            // Clean EOF at a frame boundary: the client left.
            Ok(None) => break,
            Err(FrameError::IdleTimeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                conn.send_error(0, ErrorKind::BadFrame, e.to_string());
                break;
            }
        };
        shared.counters.frames_read.fetch_add(1, Ordering::Relaxed);
        if !handle_frame(&conn, raw, &mut greeted, &mut waiters) {
            break;
        }
    }
    // The request loop is done; cancel whatever is still streaming (the
    // client cannot read the frames anymore) and wait for the waiter
    // threads so job resources never outlive the connection unnoticed.
    {
        let active = conn.active.lock().unwrap_or_else(|p| p.into_inner());
        for token in active.values() {
            token.cancel();
        }
    }
    {
        let mut watches = conn.watches.lock().unwrap_or_else(|p| p.into_inner());
        for (_, handle) in watches.drain() {
            handle.cancel();
            shared.service.unwatch(handle.id());
        }
    }
    for waiter in waiters {
        let _ = waiter.join();
    }
    shared
        .conns
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .remove(&conn_id);
    shared
        .counters
        .connections_open
        .fetch_sub(1, Ordering::Relaxed);
}

/// Drops waiter handles whose threads already exited, so a connection
/// running many jobs holds handles proportional to its *active* jobs.
/// (A finished thread's handle can be dropped without joining.)
fn reap_finished(waiters: &mut Vec<JoinHandle<()>>) {
    waiters.retain(|waiter| !waiter.is_finished());
}

/// Dispatches one decoded frame. Returns `false` when the connection should
/// close (goodbye, protocol violation, or a dead socket).
fn handle_frame(
    conn: &Arc<Conn>,
    raw: RawFrame,
    greeted: &mut bool,
    waiters: &mut Vec<JoinHandle<()>>,
) -> bool {
    let request = match Request::decode(raw.tag, &raw.payload) {
        Ok(request) => request,
        Err(e) => {
            conn.shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            conn.send_error(0, ErrorKind::BadFrame, e.to_string());
            return false;
        }
    };
    if !*greeted && !matches!(request, Request::Hello { .. }) {
        conn.shared
            .counters
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
        conn.send_error(0, ErrorKind::BadRequest, "expected hello first");
        return false;
    }
    match request {
        Request::Hello { version } => {
            if version != PROTOCOL_VERSION {
                conn.send_error(
                    0,
                    ErrorKind::BadRequest,
                    format!(
                        "protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"
                    ),
                );
                return false;
            }
            *greeted = true;
            conn.send(&Response::HelloOk {
                version: PROTOCOL_VERSION,
            })
            .is_ok()
        }
        Request::Count(spec) => {
            reap_finished(waiters);
            if let Some(waiter) = start_count(conn, spec) {
                waiters.push(waiter);
            }
            true
        }
        Request::Batch(specs) => {
            reap_finished(waiters);
            start_batch(conn, specs, waiters);
            true
        }
        Request::Cancel(id) => {
            let token = {
                let active = conn.active.lock().unwrap_or_else(|p| p.into_inner());
                active.get(&id).cloned()
            };
            let was_active = match token {
                Some(token) => {
                    token.cancel();
                    conn.shared
                        .counters
                        .jobs_cancelled
                        .fetch_add(1, Ordering::Relaxed);
                    true
                }
                // Not a streaming job — maybe a watch subscription. `cancel`
                // doubles as unsubscribe so v3 needs no extra verb.
                None => {
                    let handle = conn
                        .watches
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .remove(&id);
                    match handle {
                        Some(handle) => {
                            handle.cancel();
                            conn.shared.service.unwatch(handle.id());
                            conn.shared
                                .counters
                                .jobs_cancelled
                                .fetch_add(1, Ordering::Relaxed);
                            true
                        }
                        None => false,
                    }
                }
            };
            conn.send(&Response::CancelOk { id, was_active }).is_ok()
        }
        Request::Delta(spec) => handle_delta(conn, spec),
        Request::Watch(spec) => {
            start_watch(conn, spec);
            true
        }
        Request::Explain { pattern } => {
            let response = match conn.shared.service.engine().explain_str(&pattern) {
                Ok(report) => Response::ExplainOk {
                    report: report.to_string(),
                },
                Err(sgc_core::SgcError::Pattern(e)) => {
                    Response::Error(ErrorFrame::from_parse_error(0, &e))
                }
                Err(e) => Response::Error(ErrorFrame::new(0, ErrorKind::Count, e.to_string())),
            };
            conn.send(&response).is_ok()
        }
        Request::Stats => conn
            .send(&Response::StatsOk(StatsFrame {
                service: conn.shared.service.metrics(),
                server: conn.shared.counters.snapshot(),
                exposition: exposition(&conn.shared),
            }))
            .is_ok(),
        Request::Bye => {
            let _ = conn.send(&Response::ByeOk);
            false
        }
        Request::Metrics => conn
            .send(&Response::MetricsOk {
                exposition: exposition(&conn.shared),
            })
            .is_ok(),
        Request::Trace => conn
            .send(&Response::TraceOk {
                report: conn.shared.service.trace_report(),
            })
            .is_ok(),
    }
}

/// Renders the full registry exposition after refreshing the network
/// layer's own `net_*` gauges from the live counters. Gauges (not counter
/// deltas): the atomics are cumulative, so setting them on every render
/// keeps repeated expositions from double-counting.
fn exposition(shared: &ServerShared) -> String {
    let registry = sgc_obs::global();
    let stats = shared.counters.snapshot();
    registry.gauge_set("net_connections_accepted", stats.connections_accepted);
    registry.gauge_set("net_connections_open", stats.connections_open);
    registry.gauge_set("net_frames_read", stats.frames_read);
    registry.gauge_set("net_frames_written", stats.frames_written);
    registry.gauge_set("net_streams_opened", stats.streams_opened);
    registry.gauge_set("net_streams_active", stats.streams_active);
    registry.gauge_set("net_jobs_cancelled", stats.jobs_cancelled);
    registry.gauge_set("net_protocol_errors", stats.protocol_errors);
    shared.service.exposition()
}

/// Builds the service job for one wire spec. Parse errors become spanned
/// error frames with the parser's caret diagnostic.
fn build_job(conn: &Conn, spec: &CountSpec) -> Option<CountJob> {
    if spec.id == 0 {
        conn.send_error(
            0,
            ErrorKind::BadRequest,
            "job id 0 is reserved for connection-level errors",
        );
        return None;
    }
    let job = match CountJob::from_pattern_str(&spec.pattern) {
        Ok(job) => job,
        Err(e) => {
            let _ = conn.send(&Response::Error(ErrorFrame::from_parse_error(spec.id, &e)));
            return None;
        }
    };
    let mut job = job
        .algorithm(spec.algorithm)
        .seed(spec.seed)
        .budget(spec.budget as usize);
    if let Some(precision) = spec.precision {
        job = job.precision(precision);
    }
    if let Some(trace_id) = spec.trace {
        job = job.trace(trace_id);
    }
    Some(job)
}

/// The progress watcher for one streaming job: writes a `Chunk` frame per
/// completed trial chunk, on the service worker thread, strictly before the
/// final result is fulfilled. A write failure (the client vanished, or
/// stopped reading past the write timeout) marks the connection dead inside
/// [`Conn::send`], which cancels this very job — so the worker stops at the
/// next chunk boundary instead of streaming into a void.
fn chunk_watcher(conn: &Arc<Conn>, id: JobId, confidence: f64) -> ProgressFn {
    let conn = Arc::clone(conn);
    Arc::new(move |update: &ChunkUpdate| {
        let _ = conn.send(&Response::Chunk(ChunkFrame {
            id,
            trials_run: update.trials_run as u64,
            budget: update.budget as u64,
            estimated_subgraphs: update.estimate.estimated_subgraphs,
            relative_half_width: update.estimate.relative_half_width(confidence),
        }));
    })
}

/// Registers a submitted job as active and spawns its waiter thread: block
/// on the handle, write the terminal frame, deregister.
fn spawn_waiter(conn: &Arc<Conn>, id: JobId, handle: JobHandle) -> JoinHandle<()> {
    let counters = &conn.shared.counters;
    counters.streams_opened.fetch_add(1, Ordering::Relaxed);
    counters.streams_active.fetch_add(1, Ordering::Relaxed);
    conn.active
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(id, handle.cancel_token());
    let conn = Arc::clone(conn);
    std::thread::Builder::new()
        .name(format!("sgc-net-job-{id}"))
        .spawn(move || {
            let response = match handle.wait() {
                Ok(output) => Response::Final {
                    id,
                    output: WireOutput {
                        trials_run: output.trials_run as u64,
                        budget: output.budget as u64,
                        stop: output.stop,
                        from_cache: output.from_cache,
                        estimate: WireEstimate::from_estimate(&output.estimate),
                    },
                },
                Err(e) => Response::Error(service_error_frame(id, &e)),
            };
            let _ = conn.send(&response);
            conn.active
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .remove(&id);
            conn.shared
                .counters
                .streams_active
                .fetch_sub(1, Ordering::Relaxed);
        })
        .expect("failed to spawn job waiter thread")
}

/// Maps a service-level failure onto the wire error taxonomy.
fn service_error_frame(id: JobId, e: &ServiceError) -> ErrorFrame {
    let kind = match e {
        ServiceError::QueueFull { .. } => ErrorKind::QueueFull,
        ServiceError::ShuttingDown => ErrorKind::ShuttingDown,
        ServiceError::InvalidPrecision { .. } => ErrorKind::InvalidPrecision,
        ServiceError::Cancelled => ErrorKind::Cancelled,
        ServiceError::WorkerLost => ErrorKind::Internal,
        ServiceError::Count(sgc_core::SgcError::Pattern(parse)) => {
            return ErrorFrame::from_parse_error(id, parse)
        }
        ServiceError::Count(_) => ErrorKind::Count,
        ServiceError::UnknownVersion { .. } => ErrorKind::UnknownVersion,
        ServiceError::Delta { .. } => ErrorKind::Delta,
    };
    ErrorFrame::new(id, kind, e.to_string())
}

/// Starts one streaming count job; returns the waiter thread handle, or
/// `None` when the job was rejected before submission (the error frame is
/// already written).
fn start_count(conn: &Arc<Conn>, spec: CountSpec) -> Option<JoinHandle<()>> {
    let job = build_job(conn, &spec)?;
    {
        let active = conn.active.lock().unwrap_or_else(|p| p.into_inner());
        if active.contains_key(&spec.id) {
            drop(active);
            conn.send_error(
                spec.id,
                ErrorKind::BadRequest,
                format!("job id {} is already active on this connection", spec.id),
            );
            return None;
        }
    }
    let confidence = spec.precision.map(|p| p.confidence).unwrap_or(0.95);
    let watcher = chunk_watcher(conn, spec.id, confidence);
    match conn.shared.service.submit_with_progress(job, watcher) {
        Ok(handle) => Some(spawn_waiter(conn, spec.id, handle)),
        Err(e) => {
            let _ = conn.send(&Response::Error(service_error_frame(spec.id, &e)));
            None
        }
    }
}

/// Applies one edge-delta batch to the service's versioned graph head and
/// answers with the new version id. Watch re-emissions run synchronously
/// inside `apply_delta`, so by the time `delta-ok` is written every live
/// watch on this server has already streamed its chunk for the new version.
fn handle_delta(conn: &Arc<Conn>, spec: DeltaSpec) -> bool {
    let delta = match EdgeDelta::new(spec.inserts, spec.deletes) {
        Ok(delta) => delta,
        Err(e) => {
            return conn
                .send(&Response::Error(ErrorFrame::new(
                    0,
                    ErrorKind::Delta,
                    e.to_string(),
                )))
                .is_ok();
        }
    };
    match conn.shared.service.apply_delta(&delta) {
        Ok(version) => conn
            .send(&Response::DeltaOk {
                version: version.as_u64(),
            })
            .is_ok(),
        Err(e) => conn
            .send(&Response::Error(service_error_frame(0, &e)))
            .is_ok(),
    }
}

/// Registers a live watch subscription: the job re-runs at every new graph
/// version and each result streams back as a `watch-chunk` frame tagged
/// with the version that produced it. The initial emission (at the current
/// head) is written before this returns; `cancel` with the same id
/// unsubscribes.
fn start_watch(conn: &Arc<Conn>, spec: CountSpec) {
    let Some(job) = build_job(conn, &spec) else {
        return;
    };
    {
        let active = conn.active.lock().unwrap_or_else(|p| p.into_inner());
        let watches = conn.watches.lock().unwrap_or_else(|p| p.into_inner());
        if active.contains_key(&spec.id) || watches.contains_key(&spec.id) {
            drop(active);
            drop(watches);
            conn.send_error(
                spec.id,
                ErrorKind::BadRequest,
                format!("job id {} is already active on this connection", spec.id),
            );
            return;
        }
    }
    let confidence = spec.precision.map(|p| p.confidence).unwrap_or(0.95);
    let id = spec.id;
    let cb_conn = Arc::clone(conn);
    let callback: WatchFn = Arc::new(move |version: VersionId, update: &ChunkUpdate| {
        let _ = cb_conn.send(&Response::WatchChunk(WatchFrame {
            id,
            version: version.as_u64(),
            trials_run: update.trials_run as u64,
            budget: update.budget as u64,
            estimated_subgraphs: update.estimate.estimated_subgraphs,
            relative_half_width: update.estimate.relative_half_width(confidence),
        }));
    });
    match conn.shared.service.watch(job, callback) {
        Ok(handle) => {
            conn.shared
                .counters
                .streams_opened
                .fetch_add(1, Ordering::Relaxed);
            conn.watches
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(id, handle);
        }
        Err(e) => {
            let _ = conn.send(&Response::Error(service_error_frame(id, &e)));
        }
    }
}

/// Starts a batch: members with invalid patterns or ids are answered with
/// per-member error frames and excluded; the valid rest is submitted as one
/// atomic batch (an admission failure — e.g. `queue-full` — is reported to
/// every member, since batch admission is all-or-nothing). Admitted members
/// stream and complete independently under their own ids.
fn start_batch(conn: &Arc<Conn>, specs: Vec<CountSpec>, waiters: &mut Vec<JoinHandle<()>>) {
    let duplicate_id = {
        let active = conn.active.lock().unwrap_or_else(|p| p.into_inner());
        let mut seen = std::collections::HashSet::new();
        specs
            .iter()
            .map(|spec| spec.id)
            .find(|id| active.contains_key(id) || !seen.insert(*id))
    };
    if let Some(id) = duplicate_id {
        conn.send_error(
            id,
            ErrorKind::BadRequest,
            format!("job id {id} is already active on this connection"),
        );
        return;
    }
    let mut members: Vec<(JobId, CountJob, f64)> = Vec::new();
    for spec in specs {
        if let Some(job) = build_job(conn, &spec) {
            let confidence = spec.precision.map(|p| p.confidence).unwrap_or(0.95);
            members.push((spec.id, job, confidence));
        }
    }
    if members.is_empty() {
        return;
    }
    let batch = BatchJob::from_jobs(members.iter().map(|(_, job, _)| job.clone()).collect());
    let progress: Vec<Option<ProgressFn>> = members
        .iter()
        .map(|(id, _, confidence)| Some(chunk_watcher(conn, *id, *confidence)))
        .collect();
    match conn
        .shared
        .service
        .submit_batch_with_progress(batch, progress)
    {
        Ok(handles) => {
            for ((id, _, _), handle) in members.into_iter().zip(handles) {
                waiters.push(spawn_waiter(conn, id, handle));
            }
        }
        Err(e) => {
            for (id, _, _) in members {
                let _ = conn.send(&Response::Error(service_error_frame(id, &e)));
            }
        }
    }
}
