//! The byte-level layer: primitive encode/decode and length-prefixed
//! frames.
//!
//! Everything on the wire is hand-rolled (the build environment has no
//! registry access, so no serde): big-endian fixed-width integers, `f64`s
//! as their IEEE-754 bit patterns (so estimates survive the wire
//! *bit-identically*), and length-prefixed UTF-8 strings.
//!
//! A frame is
//!
//! ```text
//! ┌────────────────┬─────────┬──────────────────┐
//! │ length: u32 BE │ tag: u8 │ payload bytes    │
//! └────────────────┴─────────┴──────────────────┘
//! ```
//!
//! where `length` counts the tag byte plus the payload (so a valid frame
//! always has `length ≥ 1`). Frames longer than the configured maximum are
//! rejected *before* any allocation, so a hostile length prefix cannot make
//! the peer reserve gigabytes. Every malformed input — truncation, trailing
//! bytes, bad UTF-8, unknown tags or enum discriminants, oversized
//! declarations — is a typed [`WireError`] or [`FrameError`]; decoding
//! never panics.

use std::io::{Read, Write};

/// Version stamp exchanged in the `hello` handshake; bumped on any
/// incompatible frame or payload change. Version 2 added the trace option
/// to count specs, the exposition string to stats frames, and the
/// `metrics`/`trace` verbs. Version 3 added the `delta` and `watch` verbs
/// (versioned graphs with live re-emission), their `delta-ok` /
/// `watch-chunk` responses, and the cache-evictions field in stats frames.
pub const PROTOCOL_VERSION: u32 = 3;

/// Default cap on `length` (tag + payload bytes) accepted per frame.
pub const DEFAULT_MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// A malformed payload (or frame header) detected while decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a fixed-width field or declared length.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// The payload had bytes left over after the last field — a framing
    /// bug or a version skew, either way not this message.
    TrailingBytes {
        /// Bytes left unconsumed.
        remaining: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A frame tag outside the protocol's request/response sets.
    BadTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// An enum discriminant outside the known range.
    BadEnum {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending discriminant.
        value: u8,
    },
    /// A declared collection/string length exceeds the bytes that follow —
    /// rejected before allocating.
    LengthOverflow {
        /// The declared element or byte count.
        declared: usize,
        /// The maximum the remaining payload could hold.
        max: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, available } => write!(
                f,
                "truncated payload: needed {needed} more bytes, {available} available"
            ),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the last field")
            }
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadTag { tag } => write!(f, "unknown frame tag 0x{tag:02x}"),
            WireError::BadEnum { what, value } => {
                write!(f, "unknown {what} discriminant {value}")
            }
            WireError::LengthOverflow { declared, max } => write!(
                f,
                "declared length {declared} exceeds the {max} bytes that follow"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a big-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Appends a big-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (big-endian `u64`): the
/// round trip is bit-exact, which is what lets the wire protocol promise
/// bit-identical estimates.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a `bool` as one byte (`0`/`1`).
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    put_u8(buf, v as u8);
}

/// Appends a length-prefixed (`u32`) UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends a length-prefixed (`u32` count) list of `u64`s.
pub fn put_u64s(buf: &mut Vec<u8>, vs: &[u64]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_u64(buf, v);
    }
}

/// A cursor over one payload; every read is bounds-checked and returns a
/// typed [`WireError`] instead of panicking.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`; any byte other than `0`/`1` is a [`WireError::BadEnum`].
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(WireError::BadEnum {
                what: "bool",
                value,
            }),
        }
    }

    /// Reads a length-prefixed UTF-8 string. The declared length is checked
    /// against the remaining bytes before anything is copied.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::LengthOverflow {
                declared: len,
                max: self.remaining(),
            });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Reads a length-prefixed list of `u64`s. The declared count is
    /// validated against the remaining bytes before the vector is sized.
    pub fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let count = self.u32()? as usize;
        let max = self.remaining() / 8;
        if count > max {
            return Err(WireError::LengthOverflow {
                declared: count,
                max,
            });
        }
        (0..count).map(|_| self.u64()).collect()
    }

    /// Asserts the payload was fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }
}

/// One frame as read off the socket: the tag byte plus the raw payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawFrame {
    /// The frame tag (see [`crate::proto`] for the assignments).
    pub tag: u8,
    /// The undecoded payload bytes.
    pub payload: Vec<u8>,
}

/// A failure while reading a frame off a stream.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The read timeout elapsed with no byte of a new frame started —
    /// an *idle* tick, not corruption; connection loops use it to poll
    /// their shutdown flag.
    IdleTimeout,
    /// The stream ended inside a frame header or body: the peer vanished
    /// mid-frame (distinct from a clean EOF *between* frames, which
    /// [`read_frame`] reports as `Ok(None)`).
    Truncated {
        /// Bytes the frame still owed.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// The length prefix exceeds the configured maximum frame length.
    TooLarge {
        /// The declared length.
        len: usize,
        /// The configured cap.
        max: usize,
    },
    /// A zero-length frame (a frame must at least carry its tag byte).
    Empty,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::IdleTimeout => write!(f, "read timed out between frames"),
            FrameError::Truncated { expected, got } => {
                write!(
                    f,
                    "stream ended mid-frame: expected {expected} bytes, got {got}"
                )
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Empty => write!(f, "zero-length frame"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Whether an I/O error is a read-timeout expiry (both kinds occur in the
/// wild depending on platform).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads exactly `buf.len()` bytes, reporting how many arrived before an
/// EOF or error cut the frame short.
///
/// Read-timeout expiries mid-frame are retried, not failed: the socket's
/// read timeout is the server's *idle poll interval* (100 ms by default),
/// and a TCP retransmission after one lost packet routinely stalls a
/// healthy connection longer than that. A peer that truly vanished is
/// detected by the OS (reset/EOF), and a shutdown closes the socket, which
/// also lands here as EOF — so waiting does not leak connections.
fn read_exact_counted(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    expected: buf.len(),
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame boundary,
/// [`FrameError::IdleTimeout`] when the read timeout fires before any byte
/// of a new frame, and a typed error for every malformed input.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Option<RawFrame>, FrameError> {
    // The first byte is read alone so a timeout *between* frames (idle
    // connection) is distinguishable from one *inside* a frame (truncation).
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Err(FrameError::IdleTimeout),
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let mut rest = [0u8; 3];
    read_exact_counted(r, &mut rest)?;
    let len = u32::from_be_bytes([first[0], rest[0], rest[1], rest[2]]) as usize;
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len > max_len {
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let mut body = vec![0u8; len];
    read_exact_counted(r, &mut body)?;
    let tag = body[0];
    body.remove(0);
    Ok(Some(RawFrame { tag, payload: body }))
}

/// Writes one frame (length prefix, tag, payload) and flushes nothing —
/// callers flush once per logical message.
///
/// # Errors
/// The transport's I/O errors; an oversized payload is reported as
/// [`std::io::ErrorKind::InvalidInput`] without writing anything.
pub fn write_frame(
    w: &mut impl Write,
    tag: u8,
    payload: &[u8],
    max_len: usize,
) -> std::io::Result<()> {
    let len = payload.len() + 1;
    if len > max_len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {len} bytes exceeds the {max_len}-byte limit"),
        ));
    }
    w.write_all(&(len as u32).to_be_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        put_bool(&mut buf, true);
        put_str(&mut buf, "héllo");
        put_u64s(&mut buf, &[1, 2, 3]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        // Bit-exact f64s: -0.0 keeps its sign bit, NaN keeps its payload.
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.u64s().unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_overflow_are_typed_errors() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(
            r.u32(),
            Err(WireError::Truncated {
                needed: 4,
                available: 2
            })
        );
        // A string length promising more than the payload holds.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1000);
        buf.push(b'x');
        assert_eq!(
            Reader::new(&buf).str(),
            Err(WireError::LengthOverflow {
                declared: 1000,
                max: 1
            })
        );
        // A u64 list count that cannot fit.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(matches!(
            Reader::new(&buf).u64s(),
            Err(WireError::LengthOverflow { .. })
        ));
        // Non-UTF-8 string bytes.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(Reader::new(&buf).str(), Err(WireError::BadUtf8));
        // Trailing garbage.
        let r = Reader::new(&[0]);
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 0x42, b"abc", DEFAULT_MAX_FRAME_LEN).unwrap();
        write_frame(&mut wire, 0x01, b"", DEFAULT_MAX_FRAME_LEN).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let a = read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        assert_eq!((a.tag, a.payload.as_slice()), (0x42, b"abc".as_slice()));
        let b = read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        assert_eq!((b.tag, b.payload.as_slice()), (0x01, b"".as_slice()));
        // Clean EOF at the boundary.
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .is_none());
    }

    #[test]
    fn oversized_truncated_and_empty_frames_are_rejected() {
        // Oversized: rejected from the header alone, nothing allocated.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(1024u32 + 1).to_be_bytes());
        wire.push(0x01);
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(wire), 1024),
            Err(FrameError::TooLarge {
                len: 1025,
                max: 1024
            })
        ));
        // Zero length.
        let wire = 0u32.to_be_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(wire), 1024),
            Err(FrameError::Empty)
        ));
        // Body shorter than declared.
        let mut wire = Vec::new();
        wire.extend_from_slice(&10u32.to_be_bytes());
        wire.extend_from_slice(&[0x01, 0x02]);
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(wire), 1024),
            Err(FrameError::Truncated {
                expected: 10,
                got: 2
            })
        ));
        // Header itself cut short.
        let wire = vec![0x00, 0x00];
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(wire), 1024),
            Err(FrameError::Truncated { .. })
        ));
        // Writing an oversized frame fails without emitting bytes.
        let mut out = Vec::new();
        assert!(write_frame(&mut out, 0x01, &[0u8; 64], 8).is_err());
        assert!(out.is_empty());
    }
}
