//! Log-bucketed latency histograms.
//!
//! An HDR-style histogram over `u64` values (nanoseconds, by convention)
//! with power-of-2 buckets: bucket 0 holds the value 0 and bucket `b ≥ 1`
//! holds the half-open range `[2^(b-1), 2^b)`, so 65 buckets cover the full
//! `u64` domain. Recording is a relaxed atomic increment plus an atomic
//! max — safe from any thread, wait-free, and allocation-free. Quantiles
//! are read out of a [`HistogramSnapshot`]: a quantile is the inclusive
//! upper bound of the bucket containing that rank, capped at the exact
//! tracked maximum, so `p(q)` is always `≥` the true q-quantile and less
//! than `2×` it (the bucket width), and the top quantile is exact.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-2 buckets: one for zero plus one per bit of `u64`.
pub const NUM_BUCKETS: usize = 65;

/// Index of the bucket holding `value`: 0 for 0, else `64 - leading_zeros`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `index` (`0`, `2^index - 1`, …,
/// `u64::MAX` for the top bucket).
#[inline]
pub fn bucket_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A concurrent log-bucketed histogram of `u64` values.
///
/// `const`-constructible so per-stage histograms can live in statics; all
/// operations are relaxed atomics (per-counter consistency is all the
/// readout needs).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the counters, for quantile readout.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s counters.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_index`] for the bucket layout).
    pub buckets: [u64; NUM_BUCKETS],
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (wrapping on overflow).
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q ∈ [0, 1]`: the inclusive upper bound of the
    /// bucket holding the `ceil(q·count)`-th smallest recorded value,
    /// capped at the exact maximum. Zero when nothing was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return bucket_bound(index).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`quantile`](HistogramSnapshot::quantile)).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for bit in 1..64 {
            let low = 1u64 << (bit - 1);
            let high = (1u64 << bit) - 1;
            assert_eq!(bucket_index(low), bit as usize, "lower edge of bucket");
            assert_eq!(bucket_index(high), bit as usize, "upper edge of bucket");
            assert_eq!(bucket_bound(bit as usize), high);
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bound(64), u64::MAX);
        assert_eq!(bucket_bound(0), 0);
    }

    #[test]
    fn zero_max_and_overflow_extremes() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[64], 1);
        assert_eq!(snap.max, u64::MAX);
        // The sum wraps rather than panicking: 0 + MAX = MAX.
        assert_eq!(snap.sum, u64::MAX);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.quantile(1.0), u64::MAX);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.max, 0);
    }

    /// The quantile contract pinned against a sorted-vector oracle: for the
    /// rank the histogram targets, the readout is ≥ the oracle value, lands
    /// in the oracle value's bucket, and never exceeds the exact maximum.
    #[test]
    fn quantiles_agree_with_a_sorted_vector_oracle() {
        // A deterministic, skewed value set: mixed magnitudes, repeats, 0.
        let mut values: Vec<u64> = Vec::new();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            values.push(x >> (x % 48));
            if i % 17 == 0 {
                values.push(0);
            }
            if i % 29 == 0 {
                values.push(i * i);
            }
        }
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count, values.len() as u64);
        assert_eq!(snap.max, *sorted.last().unwrap());
        for q in [0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[rank - 1];
            let got = snap.quantile(q);
            assert!(got >= oracle, "q={q}: {got} < oracle {oracle}");
            assert!(got <= snap.max, "q={q}: {got} above the exact max");
            assert_eq!(
                bucket_index(got),
                bucket_index(oracle),
                "q={q}: readout left the oracle's bucket"
            );
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().max, 3999);
    }
}
