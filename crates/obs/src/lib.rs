//! # sgc-obs — observability from the DP kernel to the wire
//!
//! A std-only observability layer shared by every crate in the workspace:
//!
//! * [`span`](mod@span) — scoped stage timers ([`span()`](fn@span)) over a fixed [`Stage`]
//!   taxonomy (bind → plan → coloring → block DP → exchange → estimator
//!   chunk → cache → net frame encode/write), recording into per-stage
//!   global [`Histogram`]s, a per-thread ring of recent spans, and the
//!   per-job stage accumulator of the active job, with a thread-local span
//!   stack for nesting. Guards are zero-allocation on the hot path and
//!   collapse to a branch when observability is disabled.
//! * [`hist`] — HDR-style log-bucketed latency histograms: power-of-2
//!   buckets over `u64` nanoseconds with p50/p95/p99/max readout, all
//!   atomics, `const`-constructible so stage histograms live in statics.
//! * [`registry`] — a process-wide registry of named counters, gauges and
//!   the stage histograms, rendered as one stable `name value` text
//!   exposition (one metric per line, names sorted and unique). The four
//!   pre-existing metrics structs (`RunMetrics`, `ShardMetrics`,
//!   `KernelMetrics`, `ServiceMetrics`) are published into it by their
//!   owning crates.
//! * [`trace`] — per-job trace IDs ([`next_trace_id`]) and the bounded
//!   slow-query [`TraceLog`]: a ring of recent jobs with their per-stage
//!   timing breakdowns, rendered slowest-first for the `trace` net verb.
//!
//! Observability **reads, never branches, the DP**: nothing in this crate
//! influences counting results, which is what the obs-on ≡ obs-off
//! differential test in `tests/obs.rs` pins.

#![warn(missing_docs)]

pub mod hist;
pub mod registry;
pub mod span;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{global, Registry};
pub use span::{
    enabled, end_job, set_enabled, span, start_job, suspend, PauseGuard, SpanGuard, Stage,
    StageNanos,
};
pub use trace::{next_trace_id, JobTrace, TraceLog};
