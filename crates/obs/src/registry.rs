//! The process-wide metrics registry and its text exposition.
//!
//! A [`Registry`] holds named counters and gauges published by the other
//! crates (engine run/shard/kernel counters, service counters, server
//! counters) and renders them — together with the per-stage span histograms
//! of [`crate::span`](mod@crate::span) — as one stable text exposition: one metric per line,
//! `name value`, names unique and sorted. New metrics are only ever added,
//! never renamed, so the line set is append-only across releases (the same
//! contract `ServiceMetrics`' `Display` established); the CI `obs` job pins
//! the current name list against a checked-in snapshot.
//!
//! Publication happens at job/run granularity (a mutex-guarded map update),
//! never inside kernel loops — the hot path only touches the static stage
//! histograms, which render here but live in `span`.

use crate::span::Stage;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

enum Metric {
    Counter(u64),
    Gauge(u64),
}

impl Metric {
    fn value(&self) -> u64 {
        match self {
            Metric::Counter(v) | Metric::Gauge(v) => *v,
        }
    }
}

/// A registry of named counters and gauges, rendered together with the
/// stage histograms as a `name value` text exposition.
///
/// Most callers want the process-wide [`global`] registry; independent
/// instances exist for tests.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<&'static str, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<&'static str, Metric>> {
        // The map only ever holds plain integers; a panicking publisher
        // cannot leave it torn, so poisoning is recovered from.
        self.metrics
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Adds `delta` to the named monotonic counter (created at zero).
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let mut map = self.lock();
        match map.entry(name).or_insert(Metric::Counter(0)) {
            Metric::Counter(v) | Metric::Gauge(v) => *v = v.saturating_add(delta),
        }
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &'static str, value: u64) {
        self.lock().insert(name, Metric::Gauge(value));
    }

    /// Raises the named gauge to `value` if it is higher (high-water marks).
    pub fn gauge_max(&self, name: &'static str, value: u64) {
        let mut map = self.lock();
        match map.entry(name).or_insert(Metric::Gauge(0)) {
            Metric::Counter(v) | Metric::Gauge(v) => *v = (*v).max(value),
        }
    }

    /// Reads a metric's current value (`None` if never published).
    pub fn get(&self, name: &str) -> Option<u64> {
        self.lock().get(name).map(Metric::value)
    }

    /// Renders the full exposition: every registered counter/gauge plus the
    /// six derived lines of every stage histogram (`_count`, `_total_ns`,
    /// `_p50_ns`, `_p95_ns`, `_p99_ns`, `_max_ns`), one `name value` line
    /// each, sorted by name, no trailing newline.
    pub fn render(&self) -> String {
        let mut lines: Vec<(String, u64)> = Vec::new();
        for stage in Stage::ALL {
            let prefix = stage.metric_prefix();
            let snap = stage.histogram().snapshot();
            lines.push((format!("{prefix}_count"), snap.count));
            lines.push((format!("{prefix}_total_ns"), snap.sum));
            lines.push((format!("{prefix}_p50_ns"), snap.p50()));
            lines.push((format!("{prefix}_p95_ns"), snap.p95()));
            lines.push((format!("{prefix}_p99_ns"), snap.p99()));
            lines.push((format!("{prefix}_max_ns"), snap.max));
        }
        for (name, metric) in self.lock().iter() {
            lines.push((name.to_string(), metric.value()));
        }
        lines.sort();
        let rendered: Vec<String> = lines
            .into_iter()
            .map(|(name, value)| format!("{name} {value}"))
            .collect();
        rendered.join("\n")
    }
}

/// The process-wide registry every crate publishes into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let r = Registry::new();
        r.counter_add("test_ops", 3);
        r.counter_add("test_ops", 4);
        assert_eq!(r.get("test_ops"), Some(7));
        r.gauge_set("test_depth", 9);
        r.gauge_set("test_depth", 2);
        assert_eq!(r.get("test_depth"), Some(2));
        r.gauge_max("test_peak", 5);
        r.gauge_max("test_peak", 3);
        assert_eq!(r.get("test_peak"), Some(5));
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn exposition_lines_are_sorted_unique_name_value_pairs() {
        let r = Registry::new();
        r.counter_add("zz_last", 1);
        r.counter_add("aa_first", 2);
        let text = r.render();
        let mut names = Vec::new();
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            let name = parts.next().expect("every line has a name");
            let value = parts.next().expect("every line has a value");
            assert!(parts.next().is_none(), "exactly two fields per line");
            value.parse::<u64>().expect("values are u64");
            names.push(name.to_string());
        }
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(names, sorted, "names sorted and unique");
        // The stage histograms are always present, even before any span.
        assert!(names.iter().any(|n| n == "span_bind_count"));
        assert!(names.iter().any(|n| n == "span_net_write_p99_ns"));
        assert!(names.iter().any(|n| n == "aa_first"));
        assert!(names.iter().any(|n| n == "zz_last"));
    }

    #[test]
    fn global_registry_is_one_instance() {
        global().counter_add("test_global_probe", 1);
        assert!(global().get("test_global_probe").unwrap() >= 1);
    }
}
