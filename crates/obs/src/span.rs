//! Scoped stage timers with a thread-local span stack.
//!
//! [`span(stage)`](span) starts a monotonic timer and pushes the stage onto
//! the current thread's span stack; dropping the returned [`SpanGuard`]
//! pops it and records the elapsed nanoseconds into three sinks:
//!
//! 1. the stage's process-wide [`Histogram`] (for the registry exposition),
//! 2. the thread's fixed-capacity ring of recent spans (lock-free: the ring
//!    is thread-local, so recording never contends),
//! 3. the per-job [`StageNanos`] accumulator, when the thread is currently
//!    inside [`start_job`]/[`end_job`] (the service worker loop's job
//!    recorder).
//!
//! Guards are zero-allocation: a `Stage` copy and an `Option<Instant>`.
//! When observability is off — globally via [`set_enabled`] or on this
//! thread via [`suspend`] — a guard is a single relaxed load plus a `None`,
//! and its drop is a branch. Panic unwinding drops live guards in reverse
//! creation order, so the span stack self-heals across `catch_unwind`
//! boundaries (pinned by a test below).

use crate::hist::Histogram;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Number of stages in the taxonomy.
pub const STAGE_COUNT: usize = 12;

/// Capacity of each thread's ring of recent spans.
pub const RING_CAPACITY: usize = 256;

/// The fixed stage taxonomy, covering the whole path from binding a graph
/// to writing a response frame. Names are stable: they appear in the
/// registry exposition (underscore form) and in trace breakdowns (dotted
/// form) and are pinned by the CI snapshot list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Graph preprocessing at engine bind (`GraphPrep`).
    Bind,
    /// Query decomposition planning (cache misses pay this).
    Plan,
    /// Drawing one random coloring.
    Coloring,
    /// Solving one block of the plan on the scalar kernel.
    DpBlockScalar,
    /// Solving one block of the plan on the columnar kernel.
    DpBlockColumnar,
    /// One partial-sum exchange round of the sharded runtime.
    Exchange,
    /// One estimator chunk (a batch of trials through `run_chunk`).
    EstimatorChunk,
    /// One result-cache claim (hit, join or miss decision).
    Cache,
    /// Encoding one response frame payload.
    NetEncode,
    /// Writing + flushing one response frame to a socket.
    NetWrite,
    /// Applying one edge-delta batch to the versioned graph store (segment
    /// rebuild + version-chain bookkeeping).
    DeltaApply,
    /// Replaying one clean shard's cached partial table during a
    /// delta-aware incremental recount (instead of re-solving the block).
    DpRecountReplay,
}

impl Stage {
    /// Every stage, in taxonomy order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Bind,
        Stage::Plan,
        Stage::Coloring,
        Stage::DpBlockScalar,
        Stage::DpBlockColumnar,
        Stage::Exchange,
        Stage::EstimatorChunk,
        Stage::Cache,
        Stage::NetEncode,
        Stage::NetWrite,
        Stage::DeltaApply,
        Stage::DpRecountReplay,
    ];

    /// The stable dotted stage name (`"dp.block.columnar"`), used in trace
    /// breakdowns.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Bind => "bind",
            Stage::Plan => "plan",
            Stage::Coloring => "coloring",
            Stage::DpBlockScalar => "dp.block.scalar",
            Stage::DpBlockColumnar => "dp.block.columnar",
            Stage::Exchange => "exchange",
            Stage::EstimatorChunk => "estimator.chunk",
            Stage::Cache => "cache",
            Stage::NetEncode => "net.encode",
            Stage::NetWrite => "net.write",
            Stage::DeltaApply => "delta.apply",
            Stage::DpRecountReplay => "dp.recount.replay",
        }
    }

    /// The exposition metric prefix (`"span_dp_block_columnar"`): the
    /// dotted name with dots flattened to underscores.
    pub fn metric_prefix(self) -> &'static str {
        match self {
            Stage::Bind => "span_bind",
            Stage::Plan => "span_plan",
            Stage::Coloring => "span_coloring",
            Stage::DpBlockScalar => "span_dp_block_scalar",
            Stage::DpBlockColumnar => "span_dp_block_columnar",
            Stage::Exchange => "span_exchange",
            Stage::EstimatorChunk => "span_estimator_chunk",
            Stage::Cache => "span_cache",
            Stage::NetEncode => "span_net_encode",
            Stage::NetWrite => "span_net_write",
            Stage::DeltaApply => "span_delta_apply",
            Stage::DpRecountReplay => "span_dp_recount_replay",
        }
    }

    /// The stage's index into [`Stage::ALL`]-ordered arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The process-wide latency histogram for this stage (nanoseconds).
    pub fn histogram(self) -> &'static Histogram {
        &STAGE_HISTOGRAMS[self.index()]
    }
}

/// One process-wide histogram per stage. Span recording indexes straight
/// into this static — no map lookup, no lock — which is what keeps the hot
/// path allocation-free.
static STAGE_HISTOGRAMS: [Histogram; STAGE_COUNT] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY: Histogram = Histogram::new();
    [EMPTY; STAGE_COUNT]
};

/// Global on/off switch (default on). Per-thread suspension stacks on top.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns span recording on or off process-wide. Used by the overhead
/// benchmark; per-request opt-out goes through [`suspend`] instead.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span recording is currently enabled for this thread (the global
/// switch is on and no [`suspend`] guard is live here).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) && TL.with(|t| t.borrow().suspended == 0)
}

struct ThreadObs {
    stack: Vec<Stage>,
    ring: Vec<(Stage, u64)>,
    ring_next: usize,
    job: Option<Box<StageNanos>>,
    suspended: u32,
}

impl ThreadObs {
    const fn new() -> Self {
        ThreadObs {
            stack: Vec::new(),
            ring: Vec::new(),
            ring_next: 0,
            job: None,
            suspended: 0,
        }
    }

    fn push_ring(&mut self, stage: Stage, ns: u64) {
        if self.ring.capacity() == 0 {
            self.ring.reserve_exact(RING_CAPACITY);
        }
        if self.ring.len() < RING_CAPACITY {
            self.ring.push((stage, ns));
        } else {
            self.ring[self.ring_next] = (stage, ns);
            self.ring_next = (self.ring_next + 1) % RING_CAPACITY;
        }
    }
}

thread_local! {
    static TL: RefCell<ThreadObs> = const { RefCell::new(ThreadObs::new()) };
}

/// A live span: created by [`span`], records on drop.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    stage: Stage,
    start: Option<Instant>,
}

impl SpanGuard {
    /// The stage this guard measures.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// Whether this guard is actually recording (observability was enabled
    /// when it was created).
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }
}

/// Starts a span for `stage` on this thread. The guard records into the
/// stage histogram, the thread ring and the active job accumulator when
/// dropped; when observability is disabled it is inert.
pub fn span(stage: Stage) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { stage, start: None };
    }
    let active = TL.with(|t| {
        let mut t = t.borrow_mut();
        if t.suspended > 0 {
            false
        } else {
            t.stack.push(stage);
            true
        }
    });
    SpanGuard {
        stage,
        start: active.then(Instant::now),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.stage.histogram().record(ns);
        TL.with(|t| {
            let mut t = t.borrow_mut();
            t.stack.pop();
            t.push_ring(self.stage, ns);
            if let Some(job) = t.job.as_mut() {
                job.add(self.stage, ns);
            }
        });
    }
}

/// Suspends span recording on this thread until the guard drops. Guards
/// nest; recording resumes when the outermost one is released. This is how
/// `CountConfig { obs: false }` turns a single run's instrumentation off
/// without touching the process-wide switch.
pub fn suspend() -> PauseGuard {
    TL.with(|t| t.borrow_mut().suspended += 1);
    PauseGuard { _private: () }
}

/// A live [`suspend`] scope.
#[must_use = "recording resumes when the guard drops"]
pub struct PauseGuard {
    _private: (),
}

impl Drop for PauseGuard {
    fn drop(&mut self) {
        TL.with(|t| {
            let mut t = t.borrow_mut();
            t.suspended = t.suspended.saturating_sub(1);
        });
    }
}

/// Current nesting depth of the span stack on this thread (for tests and
/// debugging).
pub fn depth() -> usize {
    TL.with(|t| t.borrow().stack.len())
}

/// A copy of this thread's ring of recent completed spans, oldest first
/// (up to [`RING_CAPACITY`] entries of `(stage, nanoseconds)`).
pub fn recent() -> Vec<(Stage, u64)> {
    TL.with(|t| {
        let t = t.borrow();
        let mut out = Vec::with_capacity(t.ring.len());
        if t.ring.len() == RING_CAPACITY {
            out.extend_from_slice(&t.ring[t.ring_next..]);
            out.extend_from_slice(&t.ring[..t.ring_next]);
        } else {
            out.extend_from_slice(&t.ring);
        }
        out
    })
}

/// Per-stage time and span counts accumulated over one job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageNanos {
    totals: [u64; STAGE_COUNT],
    counts: [u64; STAGE_COUNT],
}

impl StageNanos {
    /// Adds one completed span.
    pub fn add(&mut self, stage: Stage, ns: u64) {
        self.totals[stage.index()] = self.totals[stage.index()].saturating_add(ns);
        self.counts[stage.index()] += 1;
    }

    /// Total nanoseconds spent in `stage`. Nested stages each accumulate
    /// their own wall time, so totals across stages overlap by design.
    pub fn total_ns(&self, stage: Stage) -> u64 {
        self.totals[stage.index()]
    }

    /// Number of spans recorded for `stage`.
    pub fn count(&self, stage: Stage) -> u64 {
        self.counts[stage.index()]
    }

    /// Stages with at least one span, as `(stage, spans, total_ns)`.
    pub fn nonzero(&self) -> Vec<(Stage, u64, u64)> {
        Stage::ALL
            .iter()
            .filter(|s| self.counts[s.index()] > 0)
            .map(|&s| (s, self.counts[s.index()], self.totals[s.index()]))
            .collect()
    }
}

/// Begins collecting the current thread's spans into a fresh per-job
/// accumulator (replacing any previous one). The service worker loop calls
/// this before running a job and [`end_job`] after, panic or not.
pub fn start_job() {
    TL.with(|t| t.borrow_mut().job = Some(Box::default()));
}

/// Ends the current thread's job scope and returns its accumulated stage
/// breakdown (empty if [`start_job`] was never called).
pub fn end_job() -> StageNanos {
    TL.with(|t| t.borrow_mut().job.take())
        .map(|b| *b)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_unwind_in_order() {
        assert_eq!(depth(), 0);
        {
            let _outer = span(Stage::EstimatorChunk);
            assert_eq!(depth(), 1);
            {
                let _inner = span(Stage::DpBlockColumnar);
                assert_eq!(depth(), 2);
            }
            assert_eq!(depth(), 1);
        }
        assert_eq!(depth(), 0);
        let stages: Vec<Stage> = recent().iter().map(|&(s, _)| s).collect();
        // Inner completes (and records) before outer.
        let inner_at = stages
            .iter()
            .rposition(|&s| s == Stage::DpBlockColumnar)
            .unwrap();
        let outer_at = stages
            .iter()
            .rposition(|&s| s == Stage::EstimatorChunk)
            .unwrap();
        assert!(inner_at < outer_at);
    }

    #[test]
    fn panicking_span_does_not_corrupt_the_stack() {
        let result = std::panic::catch_unwind(|| {
            let _outer = span(Stage::EstimatorChunk);
            let _inner = span(Stage::DpBlockScalar);
            assert_eq!(depth(), 2);
            panic!("job died mid-span");
        });
        assert!(result.is_err());
        // Unwinding dropped both guards: the stack healed itself.
        assert_eq!(depth(), 0);
        // And the next span on this thread behaves normally.
        {
            let g = span(Stage::Cache);
            assert!(g.is_recording());
            assert_eq!(depth(), 1);
        }
        assert_eq!(depth(), 0);
    }

    #[test]
    fn suspension_disables_recording_on_this_thread_only() {
        let hist_before = Stage::Bind.histogram().count();
        {
            let _pause = suspend();
            assert!(!enabled());
            let g = span(Stage::Bind);
            assert!(!g.is_recording());
            assert_eq!(depth(), 0);
            // Nested suspensions stack.
            {
                let _again = suspend();
            }
            assert!(!enabled());
        }
        assert!(enabled());
        assert_eq!(Stage::Bind.histogram().count(), hist_before);
        // Another thread is unaffected by this thread's (now released)
        // suspension and records normally.
        std::thread::spawn(|| {
            assert!(enabled());
            drop(span(Stage::Bind));
        })
        .join()
        .unwrap();
        assert!(Stage::Bind.histogram().count() > hist_before);
    }

    #[test]
    fn job_scope_accumulates_per_stage_breakdowns() {
        start_job();
        {
            let _a = span(Stage::Coloring);
        }
        {
            let _b = span(Stage::DpBlockColumnar);
        }
        {
            let _c = span(Stage::DpBlockColumnar);
        }
        let stages = end_job();
        assert_eq!(stages.count(Stage::Coloring), 1);
        assert_eq!(stages.count(Stage::DpBlockColumnar), 2);
        assert_eq!(stages.count(Stage::Exchange), 0);
        assert_eq!(stages.nonzero().len(), 2);
        // A second end_job without start_job is empty, not stale.
        assert_eq!(end_job(), StageNanos::default());
    }

    #[test]
    fn ring_keeps_only_the_most_recent_spans() {
        std::thread::spawn(|| {
            for _ in 0..(RING_CAPACITY + 10) {
                drop(span(Stage::Cache));
            }
            let ring = recent();
            assert_eq!(ring.len(), RING_CAPACITY);
            assert!(ring.iter().all(|&(s, _)| s == Stage::Cache));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn stage_names_and_prefixes_are_consistent() {
        for stage in Stage::ALL {
            let dotted = stage.name();
            let prefix = stage.metric_prefix();
            assert_eq!(prefix, format!("span_{}", dotted.replace('.', "_")));
            assert_eq!(Stage::ALL[stage.index()], stage);
        }
    }
}
