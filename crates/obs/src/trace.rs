//! Per-job trace IDs and the bounded slow-query log.
//!
//! Every job gets a `u64` trace ID — minted by [`next_trace_id`] at
//! submission unless the client supplied one over the wire — and, when it
//! finishes, a [`JobTrace`] carrying its per-stage timing breakdown is
//! pushed into the service's [`TraceLog`]: a bounded ring of recent jobs.
//! [`TraceLog::render`] is the payload of the `trace` net verb, listing the
//! ring slowest-first so the most expensive recent jobs surface on top.

use crate::span::StageNanos;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Mints a fresh process-unique trace ID (never zero).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// One finished job's trace: identity, outcome and stage breakdown.
#[derive(Clone, Debug)]
pub struct JobTrace {
    /// The job's trace ID (client-supplied or minted at submission).
    pub trace_id: u64,
    /// A short human label (query shape + algorithm).
    pub label: String,
    /// The job's base RNG seed.
    pub seed: u64,
    /// Trials actually executed.
    pub trials_run: u64,
    /// Wall-clock nanoseconds from job start to completion on the worker.
    pub total_ns: u64,
    /// How the job ended (`precision_met`, `budget_exhausted`,
    /// `cancelled`, `cache_hit`, …).
    pub outcome: &'static str,
    /// Per-stage span counts and totals accumulated on the worker thread.
    pub stages: StageNanos,
}

/// A bounded ring of recent [`JobTrace`]s — the slow-query log.
#[derive(Debug)]
pub struct TraceLog {
    capacity: usize,
    inner: Mutex<VecDeque<JobTrace>>,
}

impl TraceLog {
    /// An empty log keeping at most `capacity` recent jobs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<JobTrace>> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Maximum number of traces retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one finished job, evicting the oldest entry when full.
    pub fn record(&self, trace: JobTrace) {
        let mut ring = self.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// A copy of the retained traces, oldest first.
    pub fn snapshot(&self) -> Vec<JobTrace> {
        self.lock().iter().cloned().collect()
    }

    /// Renders the slow-query log, slowest job first: one header line per
    /// job (`trace_id=… label=… seed=… outcome=… trials=… total_ms=…`)
    /// followed by one indented `stage=… spans=… total_ms=…` line per stage
    /// the job spent time in. Empty logs render as `no traces recorded`.
    pub fn render(&self) -> String {
        let mut traces = self.snapshot();
        if traces.is_empty() {
            return "no traces recorded".to_string();
        }
        traces.sort_by_key(|trace| std::cmp::Reverse(trace.total_ns));
        let mut out = String::new();
        for trace in &traces {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "trace_id={} label={} seed={} outcome={} trials={} total_ms={:.3}",
                trace.trace_id,
                trace.label,
                trace.seed,
                trace.outcome,
                trace.trials_run,
                trace.total_ns as f64 / 1e6,
            ));
            for (stage, spans, total_ns) in trace.stages.nonzero() {
                out.push_str(&format!(
                    "\n  stage={} spans={} total_ms={:.3}",
                    stage.name(),
                    spans,
                    total_ns as f64 / 1e6,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Stage;

    fn trace(id: u64, total_ns: u64) -> JobTrace {
        let mut stages = StageNanos::default();
        stages.add(Stage::DpBlockColumnar, total_ns / 2);
        JobTrace {
            trace_id: id,
            label: format!("q{id}"),
            seed: 7,
            trials_run: 4,
            total_ns,
            outcome: "budget_exhausted",
            stages,
        }
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let log = TraceLog::new(2);
        log.record(trace(1, 10));
        log.record(trace(2, 20));
        log.record(trace(3, 30));
        let ids: Vec<u64> = log.snapshot().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(log.capacity(), 2);
    }

    #[test]
    fn render_sorts_slowest_first_with_stage_breakdowns() {
        let log = TraceLog::new(8);
        log.record(trace(1, 1_000_000));
        log.record(trace(2, 5_000_000));
        let text = log.render();
        let first = text.lines().next().unwrap();
        assert!(first.contains("trace_id=2"), "slowest first: {first}");
        assert!(text.contains("stage=dp.block.columnar"));
        assert!(text.contains("outcome=budget_exhausted"));
        // Every line is either a job header or an indented stage line.
        for line in text.lines() {
            assert!(line.starts_with("trace_id=") || line.starts_with("  stage="));
        }
    }

    #[test]
    fn empty_log_renders_a_placeholder() {
        assert_eq!(TraceLog::new(4).render(), "no traces recorded");
    }
}
