//! Automorphism counting for query graphs.
//!
//! The algorithms count colorful *matches* (injective mappings); to report
//! the number of colorful *subgraphs* isomorphic to the query, the match
//! count is divided by `aut(Q)`, the number of automorphisms of the query
//! (Section 2). Queries are tiny (≤ ~10 nodes), so a pruned backtracking
//! search over vertex permutations is more than fast enough.

use crate::graph::{QueryGraph, QueryNode};

/// Counts the automorphisms of a query graph.
///
/// Uses degree-based candidate pruning and edge-consistency checks while
/// extending a partial permutation node by node.
pub fn count_automorphisms(query: &QueryGraph) -> u64 {
    let n = query.num_nodes();
    if n == 0 {
        return 1;
    }
    let degrees: Vec<usize> = query.nodes().map(|a| query.degree(a)).collect();
    let mut mapping: Vec<Option<QueryNode>> = vec![None; n];
    let mut used = vec![false; n];
    let mut count = 0u64;
    extend(query, &degrees, 0, &mut mapping, &mut used, &mut count);
    count
}

fn extend(
    query: &QueryGraph,
    degrees: &[usize],
    next: usize,
    mapping: &mut Vec<Option<QueryNode>>,
    used: &mut Vec<bool>,
    count: &mut u64,
) {
    let n = query.num_nodes();
    if next == n {
        *count += 1;
        return;
    }
    let a = next as QueryNode;
    for b in 0..n as QueryNode {
        if used[b as usize] || degrees[a as usize] != degrees[b as usize] {
            continue;
        }
        // Edge consistency against all previously mapped nodes (both
        // presence and absence must be preserved for an automorphism).
        let consistent = (0..next as QueryNode).all(|p| {
            let q_img = mapping[p as usize].unwrap();
            query.has_edge(a, p) == query.has_edge(b, q_img)
        });
        if !consistent {
            continue;
        }
        mapping[a as usize] = Some(b);
        used[b as usize] = true;
        extend(query, degrees, next + 1, mapping, used, count);
        mapping[a as usize] = None;
        used[b as usize] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> QueryGraph {
        let mut q = QueryGraph::new(n);
        for i in 0..n {
            q.add_edge(i as QueryNode, ((i + 1) % n) as QueryNode)
                .unwrap();
        }
        q
    }

    fn path(n: usize) -> QueryGraph {
        let mut q = QueryGraph::new(n);
        for i in 1..n {
            q.add_edge((i - 1) as QueryNode, i as QueryNode).unwrap();
        }
        q
    }

    fn complete(n: usize) -> QueryGraph {
        let mut q = QueryGraph::new(n);
        for a in 0..n as QueryNode {
            for b in (a + 1)..n as QueryNode {
                q.add_edge(a, b).unwrap();
            }
        }
        q
    }

    fn factorial(n: u64) -> u64 {
        (1..=n).product::<u64>().max(1)
    }

    #[test]
    fn cycles_have_dihedral_symmetry() {
        for n in 3..9 {
            assert_eq!(count_automorphisms(&cycle(n)), 2 * n as u64, "C_{n}");
        }
    }

    #[test]
    fn paths_have_two_automorphisms() {
        for n in 2..8 {
            assert_eq!(count_automorphisms(&path(n)), 2, "P_{n}");
        }
    }

    #[test]
    fn complete_graphs_have_factorial_automorphisms() {
        for n in 1..7 {
            assert_eq!(count_automorphisms(&complete(n)), factorial(n as u64));
        }
    }

    #[test]
    fn star_automorphisms_are_leaf_permutations() {
        let mut star = QueryGraph::new(6);
        for leaf in 1..6 {
            star.add_edge(0, leaf).unwrap();
        }
        assert_eq!(count_automorphisms(&star), factorial(5));
    }

    #[test]
    fn asymmetric_query_has_identity_only() {
        // A triangle with a pendant path of length 2 attached to one node and
        // a single pendant on another: no non-trivial symmetry.
        let q =
            QueryGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (1, 5)]).unwrap();
        assert_eq!(count_automorphisms(&q), 1);
    }

    #[test]
    fn empty_and_single_node() {
        assert_eq!(count_automorphisms(&QueryGraph::new(0)), 1);
        assert_eq!(count_automorphisms(&QueryGraph::new(1)), 1);
    }
}
