//! Blocks: the units of the decomposition tree.
//!
//! Section 4.1 decomposes a treewidth-2 query by repeatedly contracting a
//! *block* — either a **leaf edge** (an edge with a degree-one endpoint) or a
//! **contractible cycle** (an induced cycle with at most two boundary nodes).
//! A block records:
//!
//! * its own nodes (in cyclic order for cycles),
//! * its boundary nodes (the nodes shared with the rest of the query),
//! * the *annotations* it inherited: child blocks attached to its nodes
//!   (unary children, contracted earlier onto a node) and to its edges
//!   (binary children, contracted earlier onto an edge).
//!
//! The engine turns each block into a projection table keyed by its boundary
//! nodes' images; the annotations say which child tables must be joined in at
//! which position (NodeJoin / EdgeJoin, Figure 7).

use crate::graph::QueryNode;

/// Index of a block within a [`crate::decomposition::DecompositionTree`].
/// Blocks are numbered in construction (bottom-up) order, so every child id is
/// smaller than its parent's id.
pub type BlockId = usize;

/// The structural kind of a block.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// A leaf edge `(boundary, leaf)`: `leaf` had degree one when the block
    /// was contracted.
    LeafEdge {
        /// The endpoint that remains in the query after contraction.
        boundary: QueryNode,
        /// The degree-one endpoint removed by the contraction.
        leaf: QueryNode,
    },
    /// A contractible cycle, nodes listed in cyclic order
    /// (`nodes[i]`–`nodes[(i+1) % L]` are the cycle edges).
    Cycle {
        /// The cycle nodes in cyclic order.
        nodes: Vec<QueryNode>,
    },
}

impl BlockKind {
    /// All nodes of the block. For a leaf edge this is `[boundary, leaf]`.
    pub fn nodes(&self) -> Vec<QueryNode> {
        match self {
            BlockKind::LeafEdge { boundary, leaf } => vec![*boundary, *leaf],
            BlockKind::Cycle { nodes } => nodes.clone(),
        }
    }

    /// Number of nodes in the block (always at least two, so no
    /// `is_empty` counterpart exists).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        match self {
            BlockKind::LeafEdge { .. } => 2,
            BlockKind::Cycle { nodes } => nodes.len(),
        }
    }

    /// Whether the block is a cycle.
    pub fn is_cycle(&self) -> bool {
        matches!(self, BlockKind::Cycle { .. })
    }

    /// The block's edges: for a cycle, `(nodes[i], nodes[i+1 mod L])` for each
    /// `i`; for a leaf edge the single `(boundary, leaf)` pair.
    pub fn edges(&self) -> Vec<(QueryNode, QueryNode)> {
        match self {
            BlockKind::LeafEdge { boundary, leaf } => vec![(*boundary, *leaf)],
            BlockKind::Cycle { nodes } => {
                let l = nodes.len();
                (0..l).map(|i| (nodes[i], nodes[(i + 1) % l])).collect()
            }
        }
    }
}

/// A node of the decomposition tree.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Block {
    /// This block's id within the tree.
    pub id: BlockId,
    /// Leaf edge or cycle.
    pub kind: BlockKind,
    /// Boundary nodes (0, 1 or 2 of them): nodes of the block that share an
    /// edge with nodes outside the subquery represented by the block.
    pub boundary: Vec<QueryNode>,
    /// Child blocks attached to nodes of this block: `(node, child)` means
    /// the unary projection table of `child` must be joined at `node`.
    pub node_annotations: Vec<(QueryNode, BlockId)>,
    /// Child blocks attached to edges of this block: `(edge_index, child)`
    /// refers to the edge returned at that index by [`BlockKind::edges`]; the
    /// binary projection table of `child` replaces the data-graph edge there.
    pub edge_annotations: Vec<(usize, BlockId)>,
}

impl Block {
    /// Ids of all children (annotation targets), node annotations first.
    pub fn children(&self) -> Vec<BlockId> {
        self.node_annotations
            .iter()
            .map(|&(_, b)| b)
            .chain(self.edge_annotations.iter().map(|&(_, b)| b))
            .collect()
    }

    /// The child block annotating `node`, if any.
    pub fn node_annotation(&self, node: QueryNode) -> Option<BlockId> {
        self.node_annotations
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, b)| b)
    }

    /// The child block annotating edge index `edge_index`, if any.
    pub fn edge_annotation(&self, edge_index: usize) -> Option<BlockId> {
        self.edge_annotations
            .iter()
            .find(|&&(e, _)| e == edge_index)
            .map(|&(_, b)| b)
    }

    /// Total number of annotations (used by the plan-cost heuristic).
    pub fn annotation_count(&self) -> usize {
        self.node_annotations.len() + self.edge_annotations.len()
    }

    /// Length of the cycle if this block is a cycle, otherwise 0.
    pub fn cycle_length(&self) -> usize {
        match &self.kind {
            BlockKind::Cycle { nodes } => nodes.len(),
            BlockKind::LeafEdge { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cycle_block() -> Block {
        Block {
            id: 3,
            kind: BlockKind::Cycle {
                nodes: vec![0, 5, 6, 2],
            },
            boundary: vec![5, 6],
            node_annotations: vec![(5, 1)],
            edge_annotations: vec![(3, 0)],
        }
    }

    #[test]
    fn cycle_edges_wrap_around() {
        let b = sample_cycle_block();
        assert_eq!(b.kind.edges(), vec![(0, 5), (5, 6), (6, 2), (2, 0)]);
        assert_eq!(b.kind.len(), 4);
        assert!(b.kind.is_cycle());
        assert_eq!(b.cycle_length(), 4);
    }

    #[test]
    fn leaf_edge_shape() {
        let k = BlockKind::LeafEdge {
            boundary: 2,
            leaf: 7,
        };
        assert_eq!(k.nodes(), vec![2, 7]);
        assert_eq!(k.edges(), vec![(2, 7)]);
        assert!(!k.is_cycle());
    }

    #[test]
    fn annotation_lookup() {
        let b = sample_cycle_block();
        assert_eq!(b.node_annotation(5), Some(1));
        assert_eq!(b.node_annotation(6), None);
        assert_eq!(b.edge_annotation(3), Some(0));
        assert_eq!(b.edge_annotation(0), None);
        assert_eq!(b.children(), vec![1, 0]);
        assert_eq!(b.annotation_count(), 2);
    }
}
