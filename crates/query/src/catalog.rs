//! The query catalog: analogs of the paper's Figure 8 query suite.
//!
//! The paper evaluates ten real-world queries of 5–10 nodes drawn from
//! biology (dros, ecoli1/2, brain1/2/3), graphlet studies (glet1/2),
//! Wikipedia article classification (wiki) and YouTube spam detection
//! (youtube). Figure 8 only shows them pictorially, so this catalog defines
//! structurally matching treewidth-2 analogs: the node counts, longest cycle
//! lengths and the mix of fused cycles / pendant decorations follow the
//! paper's textual descriptions (e.g. brain1 is a 4-cycle fused with a
//! 6-cycle, Section 6; brain2/brain3 are the largest and slowest queries,
//! Section 8.2). The paper's `Satellite` worked example (Figure 2) is
//! reproduced exactly from the text.

use crate::graph::{QueryGraph, QueryNode};
use crate::registry::Registry;

/// Builds a catalog query from a static edge list. The lists below are
/// simple, in range and duplicate-free by construction, so the typed
/// [`from_edges`](QueryGraph::from_edges) errors are unreachable.
fn build(num_nodes: usize, edges: &[(QueryNode, QueryNode)]) -> QueryGraph {
    QueryGraph::from_edges(num_nodes, edges).expect("catalog edge lists are valid")
}

/// A named query in the catalog.
#[derive(Clone, Copy, Debug)]
pub struct QuerySpec {
    /// Name as used in the paper's figures.
    pub name: &'static str,
    /// Short structural description of the analog.
    pub description: &'static str,
    /// Builder for the query graph.
    pub build: fn() -> QueryGraph,
}

/// Path query `P_n` (a tree; treewidth 1).
pub fn path(n: usize) -> QueryGraph {
    let mut q = QueryGraph::new(n);
    for i in 1..n {
        q.add_edge((i - 1) as QueryNode, i as QueryNode)
            .expect("path edges are simple");
    }
    q
}

/// Cycle query `C_n`.
pub fn cycle(n: usize) -> QueryGraph {
    assert!(n >= 3);
    let mut q = QueryGraph::new(n);
    for i in 0..n {
        q.add_edge(i as QueryNode, ((i + 1) % n) as QueryNode)
            .expect("cycle edges of length >= 3 are simple");
    }
    q
}

/// Triangle query `C_3`.
pub fn triangle() -> QueryGraph {
    cycle(3)
}

/// Star query with `leaves` leaves (a tree).
pub fn star(leaves: usize) -> QueryGraph {
    let mut q = QueryGraph::new(leaves + 1);
    for leaf in 1..=leaves {
        q.add_edge(0, leaf as QueryNode)
            .expect("star edges are simple");
    }
    q
}

/// Complete binary tree with `levels` levels (the 12-vertex complete binary
/// tree mentioned in Section 8.2 is `binary_tree(3)` plus a root-level node;
/// here `levels = 3` gives 7 nodes, `levels = 4` gives 15).
pub fn binary_tree(levels: usize) -> QueryGraph {
    let n = (1usize << levels) - 1;
    let mut q = QueryGraph::new(n);
    for i in 1..n {
        q.add_edge(i as QueryNode, ((i - 1) / 2) as QueryNode)
            .expect("binary tree edges are simple");
    }
    q
}

/// Complete graph `K_n`. Cliques beyond `K_3` have treewidth `n - 1 > 2`
/// and are rejected by the planner; the constructor exists so the pattern
/// language can express them (and report the treewidth error downstream
/// instead of failing to parse).
pub fn clique(n: usize) -> QueryGraph {
    let mut q = QueryGraph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            q.add_edge(a as QueryNode, b as QueryNode)
                .expect("clique edges are simple");
        }
    }
    q
}

/// glet1 — the "house" graphlet: a 4-cycle fused with a triangle along an edge
/// (5 nodes, longest cycle 4).
pub fn glet1() -> QueryGraph {
    build(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 3)])
}

/// glet2 — the 5-cycle graphlet.
pub fn glet2() -> QueryGraph {
    cycle(5)
}

/// youtube — spam-campaign motif: a triangle with two pendant accounts on the
/// same hub (5 nodes, longest cycle 3). The cheapest query in the suite.
pub fn youtube() -> QueryGraph {
    build(5, &[(0, 1), (1, 2), (2, 0), (0, 3), (0, 4)])
}

/// dros — Drosophila protein-interaction motif: a 4-cycle with two pendant
/// proteins on opposite sides (6 nodes, longest cycle 4).
pub fn dros() -> QueryGraph {
    build(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (2, 5)])
}

/// wiki — article-classification motif: a triangle with one pendant per
/// corner (6 nodes, longest cycle 3).
pub fn wiki() -> QueryGraph {
    build(6, &[(0, 1), (1, 2), (2, 0), (0, 3), (1, 4), (2, 5)])
}

/// ecoli1 — E. coli regulatory motif: two triangles sharing a hub plus a
/// pendant on the hub (6 nodes, longest cycle 3).
pub fn ecoli1() -> QueryGraph {
    build(6, &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0), (0, 5)])
}

/// ecoli2 — E. coli motif: a 5-cycle with two pendant genes on adjacent
/// cycle nodes (7 nodes, longest cycle 5).
pub fn ecoli2() -> QueryGraph {
    build(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 5), (1, 6)])
}

/// brain1 — connectome motif: a 6-cycle and a 4-cycle fused along one edge
/// (8 nodes, longest cycle 6). This is the query whose two decomposition
/// trees are discussed in Section 6.
pub fn brain1() -> QueryGraph {
    build(
        8,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 0),
            (1, 6),
            (6, 7),
            (7, 0),
        ],
    )
}

/// brain2 — connectome motif: a 6-cycle with a triangle fused at a node and a
/// pendant region (9 nodes, longest cycle 6).
pub fn brain2() -> QueryGraph {
    build(
        9,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 0),
            (0, 6),
            (6, 7),
            (7, 0),
            (3, 8),
        ],
    )
}

/// brain3 — the hardest query of the suite: three internally disjoint paths
/// between two hub regions (10 nodes, longest cycle 8). Section 8.2 reports
/// it as the slowest query by a wide margin.
pub fn brain3() -> QueryGraph {
    build(
        10,
        &[
            (0, 2),
            (2, 3),
            (3, 4),
            (4, 1), // path A (length 4)
            (0, 5),
            (5, 6),
            (6, 7),
            (7, 1), // path B (length 4)
            (0, 8),
            (8, 9),
            (9, 1), // path C (length 3)
        ],
    )
}

/// The paper's `Satellite` worked example (Figure 2): an 11-node query with a
/// 5-cycle, two triangles and a pendant edge.
pub fn satellite() -> QueryGraph {
    // a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9 k=10
    build(
        11,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0), // 5-cycle a-b-c-d-e
            (0, 5),
            (2, 6), // a-f, c-g
            (8, 5),
            (5, 6),
            (6, 8), // triangle i-f-g
            (8, 9),
            (9, 10),
            (10, 8), // triangle i-j-k
            (5, 7),  // leaf edge f-h
        ],
    )
}

/// The ten Figure 8 queries, ordered as in the paper's figures.
pub const FIGURE8_QUERIES: &[QuerySpec] = &[
    QuerySpec {
        name: "dros",
        description: "4-cycle with two pendants (6 nodes)",
        build: dros,
    },
    QuerySpec {
        name: "ecoli1",
        description: "two fused triangles plus pendant (6 nodes)",
        build: ecoli1,
    },
    QuerySpec {
        name: "ecoli2",
        description: "5-cycle with two pendants (7 nodes)",
        build: ecoli2,
    },
    QuerySpec {
        name: "brain1",
        description: "6-cycle fused with 4-cycle (8 nodes)",
        build: brain1,
    },
    QuerySpec {
        name: "brain2",
        description: "6-cycle, fused triangle, pendant (9 nodes)",
        build: brain2,
    },
    QuerySpec {
        name: "brain3",
        description: "three parallel paths between hubs (10 nodes)",
        build: brain3,
    },
    QuerySpec {
        name: "glet1",
        description: "house graphlet (5 nodes)",
        build: glet1,
    },
    QuerySpec {
        name: "glet2",
        description: "5-cycle graphlet (5 nodes)",
        build: glet2,
    },
    QuerySpec {
        name: "wiki",
        description: "triangle with three pendants (6 nodes)",
        build: wiki,
    },
    QuerySpec {
        name: "youtube",
        description: "triangle with two pendants on a hub (5 nodes)",
        build: youtube,
    },
];

/// Looks up a registered query by name (case-insensitive), resolving
/// through the built-in [`Registry`] — the same path the pattern parser and
/// the service take, so "what does this name mean" can never diverge
/// between layers.
pub fn query_by_name(name: &str) -> Option<QueryGraph> {
    Registry::builtin().build(name)
}

/// Every name [`query_by_name`] resolves, in registration order (the ten
/// Figure 8 queries followed by `satellite`). This is the single source of
/// truth the bench binaries iterate instead of repeating name lists.
pub fn names() -> Vec<&'static str> {
    Registry::builtin().names()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::decompose;
    use crate::treewidth::treewidth_at_most_two;

    #[test]
    fn all_catalog_queries_are_valid_treewidth_two_and_decomposable() {
        for spec in FIGURE8_QUERIES {
            let q = (spec.build)();
            q.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(
                treewidth_at_most_two(&q),
                "{} must be treewidth ≤ 2",
                spec.name
            );
            let tree = decompose(&q).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            tree.verify()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
        let sat = satellite();
        assert!(treewidth_at_most_two(&sat));
        decompose(&sat).unwrap().verify().unwrap();
    }

    #[test]
    fn node_counts_match_paper_sizes() {
        assert_eq!(glet1().num_nodes(), 5);
        assert_eq!(glet2().num_nodes(), 5);
        assert_eq!(youtube().num_nodes(), 5);
        assert_eq!(dros().num_nodes(), 6);
        assert_eq!(wiki().num_nodes(), 6);
        assert_eq!(ecoli1().num_nodes(), 6);
        assert_eq!(ecoli2().num_nodes(), 7);
        assert_eq!(brain1().num_nodes(), 8);
        assert_eq!(brain2().num_nodes(), 9);
        assert_eq!(brain3().num_nodes(), 10);
        assert_eq!(satellite().num_nodes(), 11);
    }

    #[test]
    fn harder_queries_have_longer_cycles() {
        let easy = decompose(&youtube()).unwrap().longest_cycle();
        let hard = decompose(&brain3()).unwrap().longest_cycle();
        assert!(
            hard > easy,
            "brain3 ({hard}) should have longer cycles than youtube ({easy})"
        );
        assert!(hard >= 7, "brain3 contains a long cycle, got {hard}");
    }

    #[test]
    fn lookup_by_name_works() {
        assert!(query_by_name("brain1").is_some());
        assert!(query_by_name("BRAIN1").is_some());
        assert!(query_by_name("satellite").is_some());
        assert!(query_by_name("nonexistent").is_none());
    }

    #[test]
    fn tree_helpers_are_trees() {
        assert!(crate::treewidth::is_tree(&path(6)));
        assert!(crate::treewidth::is_tree(&star(5)));
        assert!(crate::treewidth::is_tree(&binary_tree(3)));
        assert_eq!(binary_tree(3).num_nodes(), 7);
        assert!(!crate::treewidth::is_tree(&cycle(4)));
    }
}
