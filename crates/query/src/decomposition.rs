//! Decomposition-tree construction (Section 4.1 of the paper).
//!
//! The construction repeatedly finds a *block* in the (progressively
//! contracted) query — a leaf edge or a contractible cycle — removes it, and
//! leaves an annotation behind:
//!
//! * **Case 1** — cycle with one boundary node `a`: remove the cycle except
//!   `a`, erase any annotation on `a`, annotate `a` with the new block.
//! * **Case 2** — cycle with two boundary nodes `a, b`: remove the cycle
//!   except `a` and `b`, add the (virtual) edge `(a, b)` annotated with the
//!   new block, erase the annotations on `a` and `b`.
//! * **Case 3** — leaf edge `(a, b)`: remove `b` and the edge, erase any
//!   annotation on `a`, annotate `a` with the new block.
//!
//! A block inherits the annotations its nodes and edges carried before the
//! contraction; the inherited blocks become its children. The process
//! terminates when at most one node remains; a cycle spanning the entire
//! remaining query (zero boundary nodes) is contracted directly to the root.

use crate::block::{Block, BlockId, BlockKind};
use crate::error::QueryError;
use crate::graph::{QueryGraph, QueryNode};
use crate::treewidth::treewidth_at_most_two;
use std::collections::BTreeMap;

/// A fully constructed decomposition tree for a query graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecompositionTree {
    /// The query this tree decomposes.
    pub query: QueryGraph,
    /// Blocks in construction (bottom-up) order: children precede parents.
    pub blocks: Vec<Block>,
    /// The root block. `None` only for single-node queries, which have no
    /// blocks at all.
    pub root: Option<BlockId>,
}

/// A block that could be contracted next, as found by the contraction
/// state's candidate scan (`Contracted::candidates`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CandidateBlock {
    /// The structural kind (leaf edge or cycle in cyclic order).
    pub kind: BlockKind,
    /// Its boundary nodes in the current contracted query (0, 1 or 2).
    pub boundary: Vec<QueryNode>,
}

impl DecompositionTree {
    /// Nodes of the subquery `SQ(B)` represented by `block`: the block's own
    /// nodes plus all nodes of its descendant blocks.
    pub fn subquery_nodes(&self, block: BlockId) -> Vec<QueryNode> {
        let mut mask = 0u128;
        let mut stack = vec![block];
        while let Some(b) = stack.pop() {
            for node in self.blocks[b].kind.nodes() {
                mask |= 1u128 << node;
            }
            stack.extend(self.blocks[b].children());
        }
        (0..128u8).filter(|&n| (mask >> n) & 1 == 1).collect()
    }

    /// Longest cycle length over all blocks (0 if the query is a tree).
    pub fn longest_cycle(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.cycle_length())
            .max()
            .unwrap_or(0)
    }

    /// Total number of boundary nodes across blocks.
    pub fn total_boundary_nodes(&self) -> usize {
        self.blocks.iter().map(|b| b.boundary.len()).sum()
    }

    /// Total number of node/edge annotations across blocks.
    pub fn total_annotations(&self) -> usize {
        self.blocks.iter().map(|b| b.annotation_count()).sum()
    }

    /// A canonical textual signature of the tree, used to deduplicate plans
    /// produced by different contraction orders.
    pub fn signature(&self) -> String {
        match self.root {
            None => "<empty>".to_string(),
            Some(root) => self.block_signature(root),
        }
    }

    fn block_signature(&self, id: BlockId) -> String {
        let b = &self.blocks[id];
        let kind = match &b.kind {
            BlockKind::LeafEdge { boundary, leaf } => format!("L({boundary},{leaf})"),
            BlockKind::Cycle { nodes } => format!(
                "C({})",
                nodes
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        };
        let mut child_sigs: Vec<String> = b
            .node_annotations
            .iter()
            .map(|&(n, c)| format!("n{n}:{}", self.block_signature(c)))
            .chain(
                b.edge_annotations
                    .iter()
                    .map(|&(e, c)| format!("e{e}:{}", self.block_signature(c))),
            )
            .collect();
        child_sigs.sort();
        format!(
            "{kind}[b:{}]{{{}}}",
            b.boundary
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(","),
            child_sigs.join(";")
        )
    }

    /// Structural sanity checks used by tests:
    ///
    /// * every query node appears in at least one block,
    /// * every query edge appears exactly once as an un-annotated block edge,
    /// * every annotated block edge is a virtual edge (not a query edge covered
    ///   elsewhere),
    /// * the boundary recorded for each block equals the set of `SQ(B)` nodes
    ///   with query edges leaving `SQ(B)`,
    /// * children have smaller ids than their parents and each non-root block
    ///   is referenced exactly once as a child.
    pub fn verify(&self) -> Result<(), String> {
        let q = &self.query;
        if self.root.is_none() {
            return if q.num_nodes() <= 1 {
                Ok(())
            } else {
                Err("missing root for multi-node query".into())
            };
        }
        let mut node_cover = vec![false; q.num_nodes()];
        let mut edge_cover: BTreeMap<(QueryNode, QueryNode), usize> = BTreeMap::new();
        let mut child_refs = vec![0usize; self.blocks.len()];
        for b in &self.blocks {
            for n in b.kind.nodes() {
                node_cover[n as usize] = true;
            }
            for (idx, (x, y)) in b.kind.edges().into_iter().enumerate() {
                let key = if x < y { (x, y) } else { (y, x) };
                if b.edge_annotation(idx).is_none() {
                    *edge_cover.entry(key).or_insert(0) += 1;
                    if !q.has_edge(x, y) {
                        return Err(format!("block {} claims non-existent edge {key:?}", b.id));
                    }
                }
            }
            for c in b.children() {
                if c >= b.id {
                    return Err(format!("block {} has child {c} with non-smaller id", b.id));
                }
                child_refs[c] += 1;
            }
        }
        if let Some(missing) = node_cover.iter().position(|&c| !c) {
            return Err(format!("query node {missing} not covered by any block"));
        }
        for (a, b) in q.edges() {
            match edge_cover.get(&(a, b)) {
                Some(1) => {}
                Some(c) => return Err(format!("edge ({a},{b}) covered {c} times")),
                None => return Err(format!("edge ({a},{b}) not covered")),
            }
        }
        let root = self.root.unwrap();
        for b in &self.blocks {
            let expected = child_refs[b.id];
            if b.id == root {
                if expected != 0 {
                    return Err("root referenced as a child".into());
                }
            } else if expected != 1 {
                return Err(format!(
                    "block {} referenced {expected} times as child",
                    b.id
                ));
            }
        }
        // Boundary consistency with the subqueries.
        for b in &self.blocks {
            let sq = self.subquery_nodes(b.id);
            let mut sq_mask = 0u128;
            for &n in &sq {
                sq_mask |= 1u128 << n;
            }
            let mut expected: Vec<QueryNode> = sq
                .iter()
                .copied()
                .filter(|&n| q.neighbor_mask(n) & !sq_mask != 0)
                .collect();
            expected.sort_unstable();
            let mut actual = b.boundary.clone();
            actual.sort_unstable();
            if actual != expected {
                return Err(format!(
                    "block {} boundary {actual:?} does not match subquery boundary {expected:?}",
                    b.id
                ));
            }
        }
        Ok(())
    }
}

/// The mutable contracted-query state used during construction.
///
/// Exposed crate-internally so that the plan enumerator can branch on every
/// candidate block rather than greedily taking the first one.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct Contracted {
    num_nodes: usize,
    alive: u128,
    /// Current adjacency, including virtual edges added by Case 2.
    adj: Vec<u128>,
    node_ann: Vec<Option<BlockId>>,
    edge_ann: BTreeMap<(QueryNode, QueryNode), BlockId>,
}

impl Contracted {
    pub(crate) fn new(query: &QueryGraph) -> Self {
        let n = query.num_nodes();
        Contracted {
            num_nodes: n,
            alive: if n == 0 {
                0
            } else if n == 128 {
                u128::MAX
            } else {
                (1u128 << n) - 1
            },
            adj: (0..n as QueryNode)
                .map(|a| query.neighbor_mask(a))
                .collect(),
            node_ann: vec![None; n],
            edge_ann: BTreeMap::new(),
        }
    }

    pub(crate) fn alive_count(&self) -> usize {
        self.alive.count_ones() as usize
    }

    fn degree(&self, a: QueryNode) -> usize {
        self.adj[a as usize].count_ones() as usize
    }

    fn alive_nodes(&self) -> impl Iterator<Item = QueryNode> + '_ {
        (0..self.num_nodes as QueryNode).filter(|&a| (self.alive >> a) & 1 == 1)
    }

    /// All blocks that could be contracted next: leaf edges and contractible
    /// cycles. Cycles are returned in a canonical orientation (smallest node
    /// first, smaller neighbor second).
    pub(crate) fn candidates(&self) -> Vec<CandidateBlock> {
        let mut out = Vec::new();
        // Leaf edges.
        for b in self.alive_nodes() {
            if self.degree(b) == 1 {
                let a = self.adj[b as usize].trailing_zeros() as QueryNode;
                // When only two nodes remain both have degree one; emit a
                // single orientation to avoid duplicate plans.
                if self.degree(a) == 1 && a > b {
                    continue;
                }
                out.push(CandidateBlock {
                    kind: BlockKind::LeafEdge {
                        boundary: a,
                        leaf: b,
                    },
                    boundary: if self.degree(a) == 1 { vec![] } else { vec![a] },
                });
            }
        }
        // Contractible cycles.
        for cycle in self.enumerate_cycles() {
            if !self.cycle_is_induced(&cycle) {
                continue;
            }
            let boundary = self.cycle_boundary(&cycle);
            if boundary.len() <= 2 {
                out.push(CandidateBlock {
                    kind: BlockKind::Cycle { nodes: cycle },
                    boundary,
                });
            }
        }
        out
    }

    /// Enumerates every simple cycle of the contracted query exactly once,
    /// as a node list in cyclic order starting from the cycle's smallest node.
    fn enumerate_cycles(&self) -> Vec<Vec<QueryNode>> {
        let mut cycles = Vec::new();
        let mut path: Vec<QueryNode> = Vec::new();
        for s in self.alive_nodes() {
            path.clear();
            path.push(s);
            self.cycle_dfs(s, s, &mut path, &mut cycles);
        }
        cycles
    }

    fn cycle_dfs(
        &self,
        start: QueryNode,
        current: QueryNode,
        path: &mut Vec<QueryNode>,
        cycles: &mut Vec<Vec<QueryNode>>,
    ) {
        for next in self.alive_nodes() {
            if !self.has_edge(current, next) {
                continue;
            }
            if next == start && path.len() >= 3 {
                // Close the cycle; report each cycle once by requiring the
                // second node to be smaller than the last node.
                if path[1] < *path.last().unwrap() {
                    cycles.push(path.clone());
                }
                continue;
            }
            // Only extend with nodes larger than the start (canonical minimum)
            // that are not already on the path.
            if next <= start || path.contains(&next) {
                continue;
            }
            path.push(next);
            self.cycle_dfs(start, next, path, cycles);
            path.pop();
        }
    }

    fn has_edge(&self, a: QueryNode, b: QueryNode) -> bool {
        (self.adj[a as usize] >> b) & 1 == 1
    }

    /// A cycle is induced when no chord connects two non-consecutive cycle nodes.
    fn cycle_is_induced(&self, cycle: &[QueryNode]) -> bool {
        let l = cycle.len();
        for i in 0..l {
            for j in (i + 1)..l {
                let consecutive = j == i + 1 || (i == 0 && j == l - 1);
                if !consecutive && self.has_edge(cycle[i], cycle[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// Boundary nodes of a cycle: cycle nodes adjacent to a node outside the cycle.
    fn cycle_boundary(&self, cycle: &[QueryNode]) -> Vec<QueryNode> {
        let mut cycle_mask = 0u128;
        for &n in cycle {
            cycle_mask |= 1u128 << n;
        }
        cycle
            .iter()
            .copied()
            .filter(|&n| self.adj[n as usize] & !cycle_mask != 0)
            .collect()
    }

    /// Contracts `candidate`, appending the new block to `blocks` and
    /// returning its id.
    pub(crate) fn contract(
        &mut self,
        candidate: &CandidateBlock,
        blocks: &mut Vec<Block>,
    ) -> BlockId {
        let id = blocks.len();
        // Inherit annotations from nodes and edges of the block.
        let mut node_annotations = Vec::new();
        for node in candidate.kind.nodes() {
            if let Some(child) = self.node_ann[node as usize] {
                node_annotations.push((node, child));
            }
        }
        let mut edge_annotations = Vec::new();
        for (idx, (x, y)) in candidate.kind.edges().into_iter().enumerate() {
            let key = if x < y { (x, y) } else { (y, x) };
            if let Some(&child) = self.edge_ann.get(&key) {
                edge_annotations.push((idx, child));
            }
        }
        blocks.push(Block {
            id,
            kind: candidate.kind.clone(),
            boundary: candidate.boundary.clone(),
            node_annotations,
            edge_annotations,
        });

        // Apply the contraction to the query.
        match &candidate.kind {
            BlockKind::LeafEdge {
                boundary: a,
                leaf: b,
            } => {
                self.remove_edge(*a, *b);
                self.remove_node(*b);
                // Degenerate final step: both endpoints were leaves.
                if candidate.boundary.is_empty() {
                    self.remove_node(*a);
                } else {
                    self.node_ann[*a as usize] = Some(id);
                }
            }
            BlockKind::Cycle { nodes } => {
                let l = nodes.len();
                for i in 0..l {
                    self.remove_edge(nodes[i], nodes[(i + 1) % l]);
                }
                for &n in nodes {
                    if !candidate.boundary.contains(&n) {
                        self.remove_node(n);
                    }
                }
                match candidate.boundary.as_slice() {
                    [] => {
                        for &n in nodes {
                            self.remove_node(n);
                        }
                    }
                    [a] => {
                        self.node_ann[*a as usize] = Some(id);
                    }
                    [a, b] => {
                        self.node_ann[*a as usize] = None;
                        self.node_ann[*b as usize] = None;
                        self.add_edge(*a, *b);
                        let key = if a < b { (*a, *b) } else { (*b, *a) };
                        self.edge_ann.insert(key, id);
                    }
                    other => unreachable!("cycle with {} boundary nodes", other.len()),
                }
            }
        }
        id
    }

    fn remove_edge(&mut self, a: QueryNode, b: QueryNode) {
        self.adj[a as usize] &= !(1u128 << b);
        self.adj[b as usize] &= !(1u128 << a);
        let key = if a < b { (a, b) } else { (b, a) };
        self.edge_ann.remove(&key);
    }

    fn add_edge(&mut self, a: QueryNode, b: QueryNode) {
        self.adj[a as usize] |= 1u128 << b;
        self.adj[b as usize] |= 1u128 << a;
    }

    fn remove_node(&mut self, a: QueryNode) {
        debug_assert_eq!(self.adj[a as usize], 0, "removing node {a} with live edges");
        self.alive &= !(1u128 << a);
        self.node_ann[a as usize] = None;
    }

    /// When the contraction loop has finished, returns the root block id.
    pub(crate) fn finish(&self, blocks: &[Block]) -> Result<Option<BlockId>, QueryError> {
        match self.alive_count() {
            0 => Ok(Some(blocks.len() - 1)),
            1 => {
                let node = self.alive_nodes().next().unwrap();
                match self.node_ann[node as usize] {
                    Some(b) => Ok(Some(b)),
                    // A single never-annotated node means the original query
                    // was a single node.
                    None if blocks.is_empty() => Ok(None),
                    None => Err(QueryError::NoBlockFound),
                }
            }
            _ => Err(QueryError::NoBlockFound),
        }
    }

    /// A canonical key of the current state (alive set, adjacency, annotations
    /// by child-block signature) used by the plan enumerator to merge
    /// contraction orders that reach the same state.
    pub(crate) fn canonical_key(
        &self,
        blocks: &[Block],
        tree_sig: &dyn Fn(BlockId) -> String,
    ) -> String {
        let _ = blocks;
        let mut parts = vec![format!("alive:{:032x}", self.alive)];
        for a in self.alive_nodes() {
            parts.push(format!("adj{}:{:032x}", a, self.adj[a as usize]));
            if let Some(b) = self.node_ann[a as usize] {
                parts.push(format!("na{}:{}", a, tree_sig(b)));
            }
        }
        for (&(x, y), &b) in &self.edge_ann {
            parts.push(format!("ea{}-{}:{}", x, y, tree_sig(b)));
        }
        parts.join("|")
    }
}

/// Builds a decomposition tree for `query` by greedily contracting the first
/// candidate block found at each step (leaf edges before cycles, smaller
/// blocks first). Use [`crate::plan::heuristic_plan`] for the paper's
/// plan-selection heuristic or [`crate::plan::enumerate_plans`] for all trees.
///
/// Returns an error if the query is empty, disconnected or has treewidth
/// greater than two.
pub fn decompose(query: &QueryGraph) -> Result<DecompositionTree, QueryError> {
    query.validate()?;
    if !treewidth_at_most_two(query) {
        return Err(QueryError::TreewidthExceeded);
    }
    let mut state = Contracted::new(query);
    let mut blocks = Vec::new();
    while state.alive_count() > 1 {
        let mut candidates = state.candidates();
        if candidates.is_empty() {
            return Err(QueryError::NoBlockFound);
        }
        // Deterministic order: leaf edges first, then shorter cycles.
        candidates.sort_by_key(|c| (c.kind.is_cycle(), c.kind.len(), c.kind.nodes()));
        state.contract(&candidates[0], &mut blocks);
    }
    let root = state.finish(&blocks)?;
    Ok(DecompositionTree {
        query: query.clone(),
        blocks,
        root,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    fn cycle_query(n: usize) -> QueryGraph {
        let mut q = QueryGraph::new(n);
        for i in 0..n {
            q.add_edge(i as QueryNode, ((i + 1) % n) as QueryNode)
                .unwrap();
        }
        q
    }

    fn path_query(n: usize) -> QueryGraph {
        let mut q = QueryGraph::new(n);
        for i in 1..n {
            q.add_edge((i - 1) as QueryNode, i as QueryNode).unwrap();
        }
        q
    }

    /// The paper's Satellite query (Figure 2): an 11-node query with a
    /// 5-cycle, two triangles and a pendant edge.
    pub(crate) fn satellite() -> QueryGraph {
        // a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9 k=10
        QueryGraph::from_edges(
            11,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0), // 5-cycle a-b-c-d-e
                (0, 5),
                (2, 6), // a-f, c-g
                (8, 5),
                (5, 6),
                (6, 8), // triangle i-f-g
                (8, 9),
                (9, 10),
                (10, 8), // triangle i-j-k
                (5, 7),  // leaf f-h
            ],
        )
        .unwrap()
    }

    #[test]
    fn single_edge_decomposes_to_one_leaf_block() {
        let q = QueryGraph::from_edges(2, &[(0, 1)]).unwrap();
        let t = decompose(&q).unwrap();
        assert_eq!(t.blocks.len(), 1);
        assert!(matches!(t.blocks[0].kind, BlockKind::LeafEdge { .. }));
        assert_eq!(t.root, Some(0));
        t.verify().unwrap();
    }

    #[test]
    fn path_decomposes_into_leaf_edges() {
        let t = decompose(&path_query(5)).unwrap();
        assert_eq!(t.blocks.len(), 4);
        assert!(t.blocks.iter().all(|b| !b.kind.is_cycle()));
        assert_eq!(t.longest_cycle(), 0);
        t.verify().unwrap();
    }

    #[test]
    fn pure_cycle_is_a_single_root_block() {
        for n in 3..9 {
            let t = decompose(&cycle_query(n)).unwrap();
            assert_eq!(t.blocks.len(), 1, "C_{n}");
            assert_eq!(t.blocks[0].cycle_length(), n);
            assert!(t.blocks[0].boundary.is_empty());
            t.verify().unwrap();
        }
    }

    #[test]
    fn triangle_with_pendant() {
        let q = QueryGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap();
        let t = decompose(&q).unwrap();
        t.verify().unwrap();
        assert_eq!(t.blocks.len(), 2);
        assert_eq!(t.longest_cycle(), 3);
        // Root must represent the whole query.
        let root = t.root.unwrap();
        assert_eq!(t.subquery_nodes(root).len(), 4);
    }

    #[test]
    fn satellite_decomposes_and_verifies() {
        let q = satellite();
        let t = decompose(&q).unwrap();
        t.verify().unwrap();
        // Expect the blocks of Figure 2: 5-cycle, leaf edge, 4-cycle,
        // triangle (i,j,k), and the root triangle — five blocks in total.
        assert_eq!(t.blocks.len(), 5);
        assert_eq!(t.longest_cycle(), 5);
        let root = t.root.unwrap();
        assert_eq!(t.subquery_nodes(root).len(), 11);
    }

    #[test]
    fn k4_is_rejected() {
        let mut q = QueryGraph::new(4);
        for a in 0..4u8 {
            for b in (a + 1)..4 {
                q.add_edge(a, b).unwrap();
            }
        }
        assert_eq!(decompose(&q), Err(QueryError::TreewidthExceeded));
    }

    #[test]
    fn disconnected_query_is_rejected() {
        let mut q = QueryGraph::new(4);
        q.add_edge(0, 1).unwrap();
        q.add_edge(2, 3).unwrap();
        assert_eq!(decompose(&q), Err(QueryError::Disconnected));
    }

    #[test]
    fn single_node_query_has_no_blocks() {
        let t = decompose(&QueryGraph::new(1)).unwrap();
        assert!(t.blocks.is_empty());
        assert_eq!(t.root, None);
        t.verify().unwrap();
    }

    #[test]
    fn children_precede_parents() {
        let t = decompose(&satellite()).unwrap();
        for b in &t.blocks {
            for c in b.children() {
                assert!(c < b.id);
            }
        }
    }

    #[test]
    fn bowtie_two_triangles_sharing_a_node() {
        let q =
            QueryGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]).unwrap();
        let t = decompose(&q).unwrap();
        t.verify().unwrap();
        assert_eq!(t.blocks.len(), 2);
        assert!(t.blocks.iter().all(|b| b.cycle_length() == 3));
    }

    #[test]
    fn house_query_fused_square_and_triangle() {
        // 4-cycle 0-1-2-3 plus apex 4 connected to 2 and 3 (sharing edge 2-3).
        let q =
            QueryGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 3)]).unwrap();
        let t = decompose(&q).unwrap();
        t.verify().unwrap();
        assert_eq!(t.blocks.len(), 2);
        let root = t.root.unwrap();
        assert_eq!(t.subquery_nodes(root).len(), 5);
    }
}
