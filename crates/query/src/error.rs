//! Errors reported by the query-side machinery.

use crate::graph::QueryNode;

/// Reasons a query graph cannot be processed by the treewidth-2 pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The query has no nodes.
    Empty,
    /// The query is not connected; color-coding counts are defined per
    /// connected query in the paper, so disconnected inputs are rejected.
    Disconnected,
    /// The query has treewidth greater than two, so no block decomposition
    /// exists (Lemma 4.1 only covers treewidth ≤ 2).
    TreewidthExceeded,
    /// The decomposition process could not find a leaf edge or contractible
    /// cycle. For treewidth-≤2 queries this indicates a bug; it is also the
    /// error surfaced when the treewidth check is bypassed.
    NoBlockFound,
    /// The query has more nodes than the number of supported colors.
    TooManyNodes {
        /// Number of nodes in the offending query.
        nodes: usize,
        /// Maximum supported number of query nodes / colors.
        max: usize,
    },
    /// An edge `(a, a)` was added. Query graphs are simple: a colorful match
    /// maps distinct query nodes to distinct vertices, so a self loop could
    /// never be matched and is rejected at construction instead of being
    /// silently dropped.
    SelfLoop {
        /// The node the loop was attached to.
        node: QueryNode,
    },
    /// An edge was added twice. The adjacency bitmasks would absorb the
    /// duplicate silently, which usually means the caller's edge list is
    /// wrong (a typo, or an undirected edge listed in both directions), so
    /// it is rejected at construction.
    DuplicateEdge {
        /// Smaller endpoint of the repeated edge.
        a: QueryNode,
        /// Larger endpoint of the repeated edge.
        b: QueryNode,
    },
    /// An edge endpoint is not a node of the query.
    NodeOutOfRange {
        /// The offending endpoint.
        node: QueryNode,
        /// Number of nodes in the query (valid nodes are `0..num_nodes`).
        num_nodes: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Empty => write!(f, "query graph has no nodes"),
            QueryError::Disconnected => write!(f, "query graph is not connected"),
            QueryError::TreewidthExceeded => {
                write!(f, "query graph has treewidth greater than two")
            }
            QueryError::NoBlockFound => write!(
                f,
                "no leaf edge or contractible cycle found during decomposition"
            ),
            QueryError::TooManyNodes { nodes, max } => {
                write!(f, "query has {nodes} nodes, more than the supported {max}")
            }
            QueryError::SelfLoop { node } => {
                write!(f, "self loop on node {node}: query graphs are simple")
            }
            QueryError::DuplicateEdge { a, b } => {
                write!(f, "edge ({a}, {b}) was added twice")
            }
            QueryError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range for a {num_nodes}-node query")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(QueryError::Disconnected.to_string().contains("connected"));
        assert!(QueryError::TreewidthExceeded
            .to_string()
            .contains("treewidth"));
        assert!(QueryError::TooManyNodes { nodes: 40, max: 32 }
            .to_string()
            .contains("40"));
        assert!(QueryError::SelfLoop { node: 3 }.to_string().contains("3"));
        assert!(QueryError::DuplicateEdge { a: 1, b: 2 }
            .to_string()
            .contains("(1, 2)"));
        assert!(QueryError::NodeOutOfRange {
            node: 9,
            num_nodes: 4
        }
        .to_string()
        .contains("9"));
    }
}
