//! Errors reported by the query-side machinery.

/// Reasons a query graph cannot be processed by the treewidth-2 pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The query has no nodes.
    Empty,
    /// The query is not connected; color-coding counts are defined per
    /// connected query in the paper, so disconnected inputs are rejected.
    Disconnected,
    /// The query has treewidth greater than two, so no block decomposition
    /// exists (Lemma 4.1 only covers treewidth ≤ 2).
    TreewidthExceeded,
    /// The decomposition process could not find a leaf edge or contractible
    /// cycle. For treewidth-≤2 queries this indicates a bug; it is also the
    /// error surfaced when the treewidth check is bypassed.
    NoBlockFound,
    /// The query has more nodes than the number of supported colors.
    TooManyNodes {
        /// Number of nodes in the offending query.
        nodes: usize,
        /// Maximum supported number of query nodes / colors.
        max: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Empty => write!(f, "query graph has no nodes"),
            QueryError::Disconnected => write!(f, "query graph is not connected"),
            QueryError::TreewidthExceeded => {
                write!(f, "query graph has treewidth greater than two")
            }
            QueryError::NoBlockFound => write!(
                f,
                "no leaf edge or contractible cycle found during decomposition"
            ),
            QueryError::TooManyNodes { nodes, max } => {
                write!(f, "query has {nodes} nodes, more than the supported {max}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(QueryError::Disconnected.to_string().contains("connected"));
        assert!(QueryError::TreewidthExceeded
            .to_string()
            .contains("treewidth"));
        assert!(QueryError::TooManyNodes { nodes: 40, max: 32 }
            .to_string()
            .contains("40"));
    }
}
