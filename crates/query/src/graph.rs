//! Small undirected query graphs.
//!
//! Query graphs in the paper have at most ~10 nodes ("queries of size up to
//! 10 nodes", Section 1); this representation supports up to 128 nodes so
//! that adjacency can be stored as per-node `u128` bitmasks, giving O(1)
//! edge tests and cheap set operations during decomposition and
//! automorphism counting — and so that the k > 64 queries exercising the
//! multi-word color-signature lanes stay expressible.

use crate::error::QueryError;

/// Index of a query node (`0..k`, `k ≤ 128`).
pub type QueryNode = u8;

/// Maximum number of query nodes (limited by the `u128` adjacency bitmasks
/// and the two-word color-signature width used throughout the stack).
pub const MAX_QUERY_NODES: usize = 128;

/// An undirected query graph on at most [`MAX_QUERY_NODES`] nodes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryGraph {
    /// `adjacency[a]` has bit `b` set iff edge `(a, b)` exists.
    adjacency: Vec<u128>,
}

impl QueryGraph {
    /// Creates an edgeless query graph with `num_nodes` nodes.
    ///
    /// # Panics
    /// Panics if `num_nodes` exceeds [`MAX_QUERY_NODES`].
    pub fn new(num_nodes: usize) -> Self {
        assert!(
            num_nodes <= MAX_QUERY_NODES,
            "query graphs support at most {MAX_QUERY_NODES} nodes"
        );
        QueryGraph {
            adjacency: vec![0; num_nodes],
        }
    }

    /// Builds a query graph from an edge list.
    ///
    /// # Errors
    /// The same errors as [`add_edge`](QueryGraph::add_edge): a self loop, a
    /// duplicated edge (including an undirected edge listed in both
    /// directions), or an endpoint `≥ num_nodes`.
    pub fn from_edges(
        num_nodes: usize,
        edges: &[(QueryNode, QueryNode)],
    ) -> Result<Self, QueryError> {
        let mut q = QueryGraph::new(num_nodes);
        for &(a, b) in edges {
            q.add_edge(a, b)?;
        }
        Ok(q)
    }

    /// Adds the undirected edge `(a, b)`.
    ///
    /// # Errors
    /// [`QueryError::SelfLoop`] for `a == b`, [`QueryError::NodeOutOfRange`]
    /// for an endpoint that is not a node, and [`QueryError::DuplicateEdge`]
    /// if the edge is already present — query graphs are simple, and a
    /// silently absorbed duplicate almost always means the caller's edge
    /// list is wrong.
    pub fn add_edge(&mut self, a: QueryNode, b: QueryNode) -> Result<(), QueryError> {
        if a == b {
            return Err(QueryError::SelfLoop { node: a });
        }
        let num_nodes = self.adjacency.len();
        for node in [a, b] {
            if node as usize >= num_nodes {
                return Err(QueryError::NodeOutOfRange { node, num_nodes });
            }
        }
        if self.has_edge(a, b) {
            return Err(QueryError::DuplicateEdge {
                a: a.min(b),
                b: a.max(b),
            });
        }
        self.adjacency[a as usize] |= 1u128 << b;
        self.adjacency[b as usize] |= 1u128 << a;
        Ok(())
    }

    /// Number of nodes `k`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency
            .iter()
            .map(|m| m.count_ones() as usize)
            .sum::<usize>()
            / 2
    }

    /// Whether the edge `(a, b)` exists.
    #[inline]
    pub fn has_edge(&self, a: QueryNode, b: QueryNode) -> bool {
        (self.adjacency[a as usize] >> b) & 1 == 1
    }

    /// Degree of node `a`.
    #[inline]
    pub fn degree(&self, a: QueryNode) -> usize {
        self.adjacency[a as usize].count_ones() as usize
    }

    /// Adjacency bitmask of node `a`.
    #[inline]
    pub fn neighbor_mask(&self, a: QueryNode) -> u128 {
        self.adjacency[a as usize]
    }

    /// Iterator over the neighbors of `a` in increasing order.
    pub fn neighbors(&self, a: QueryNode) -> impl Iterator<Item = QueryNode> + '_ {
        let mask = self.adjacency[a as usize];
        (0..self.num_nodes() as QueryNode).filter(move |&b| (mask >> b) & 1 == 1)
    }

    /// Iterator over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = QueryNode> {
        0..self.num_nodes() as QueryNode
    }

    /// Iterator over each undirected edge exactly once, as `(a, b)` with `a < b`.
    pub fn edges(&self) -> Vec<(QueryNode, QueryNode)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for a in self.nodes() {
            for b in self.neighbors(a) {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Whether the graph is connected (the empty graph is not).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return false;
        }
        let mut visited = 1u128;
        let mut stack = vec![0 as QueryNode];
        while let Some(a) = stack.pop() {
            let fresh = self.adjacency[a as usize] & !visited;
            visited |= fresh;
            for b in 0..n as QueryNode {
                if (fresh >> b) & 1 == 1 {
                    stack.push(b);
                }
            }
        }
        visited.count_ones() as usize == n
    }

    /// Nodes with no incident edge, in increasing order.
    pub fn isolated_nodes(&self) -> Vec<QueryNode> {
        self.nodes().filter(|&a| self.degree(a) == 0).collect()
    }

    /// Validates that the query is usable by the counting pipeline: non-empty,
    /// connected and small enough for the signature width.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.num_nodes() == 0 {
            return Err(QueryError::Empty);
        }
        if self.num_nodes() > MAX_QUERY_NODES {
            return Err(QueryError::TooManyNodes {
                nodes: self.num_nodes(),
                max: MAX_QUERY_NODES,
            });
        }
        if !self.is_connected() {
            return Err(QueryError::Disconnected);
        }
        Ok(())
    }
}

/// Renders the graph in the pattern language's canonical numeric form: the
/// sorted edge list as `a-b` terms, followed by one bare term per isolated
/// node, separated by `", "` — e.g. a triangle is `0-1, 0-2, 1-2`.
///
/// [`FromStr`](std::str::FromStr) parses this (and the rest of the pattern
/// language) back, and the round trip is exact: for every non-empty graph
/// `q`, `render(q).parse() == q`, including isolated nodes. The empty graph
/// renders as the empty string, which the parser rejects.
impl std::fmt::Display for QueryGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        let mut term = |f: &mut std::fmt::Formatter<'_>, text: String| {
            let sep = if first { "" } else { ", " };
            first = false;
            write!(f, "{sep}{text}")
        };
        for (a, b) in self.edges() {
            term(f, format!("{a}-{b}"))?;
        }
        for node in self.isolated_nodes() {
            term(f, format!("{node}"))?;
        }
        Ok(())
    }
}

/// Parses the full pattern language (edge pairs, generator macros, registry
/// names); see [`crate::parse`] for the grammar. Inverse of
/// [`Display`](QueryGraph#impl-Display-for-QueryGraph).
impl std::str::FromStr for QueryGraph {
    type Err = crate::parse::PatternParseError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        crate::parse::Pattern::parse(text).map(crate::parse::Pattern::into_query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> QueryGraph {
        QueryGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let t = triangle();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 3);
        assert!(t.has_edge(0, 2));
        assert!(!t.has_edge(0, 0));
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn edges_listed_once() {
        let t = triangle();
        assert_eq!(t.edges(), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn connectivity() {
        assert!(triangle().is_connected());
        let mut q = QueryGraph::new(4);
        q.add_edge(0, 1).unwrap();
        q.add_edge(2, 3).unwrap();
        assert!(!q.is_connected());
        assert!(!QueryGraph::new(0).is_connected());
        assert!(QueryGraph::new(1).is_connected());
    }

    #[test]
    fn validate_rejects_bad_queries() {
        assert_eq!(QueryGraph::new(0).validate(), Err(QueryError::Empty));
        let mut q = QueryGraph::new(4);
        q.add_edge(0, 1).unwrap();
        assert_eq!(q.validate(), Err(QueryError::Disconnected));
        assert!(triangle().validate().is_ok());
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut q = QueryGraph::new(2);
        assert_eq!(q.add_edge(1, 1), Err(QueryError::SelfLoop { node: 1 }));
        assert_eq!(q.num_edges(), 0);
    }

    #[test]
    fn duplicate_edges_are_rejected_in_both_directions() {
        let mut q = QueryGraph::new(3);
        q.add_edge(0, 1).unwrap();
        assert_eq!(
            q.add_edge(0, 1),
            Err(QueryError::DuplicateEdge { a: 0, b: 1 })
        );
        assert_eq!(
            q.add_edge(1, 0),
            Err(QueryError::DuplicateEdge { a: 0, b: 1 })
        );
        assert_eq!(q.num_edges(), 1);
        assert_eq!(
            QueryGraph::from_edges(3, &[(0, 1), (1, 2), (2, 1)]),
            Err(QueryError::DuplicateEdge { a: 1, b: 2 })
        );
    }

    #[test]
    fn out_of_range_edges_are_rejected() {
        let mut q = QueryGraph::new(2);
        assert_eq!(
            q.add_edge(0, 5),
            Err(QueryError::NodeOutOfRange {
                node: 5,
                num_nodes: 2
            })
        );
    }

    #[test]
    fn isolated_nodes_are_listed() {
        let q = QueryGraph::from_edges(4, &[(1, 2)]).unwrap();
        assert_eq!(q.isolated_nodes(), vec![0, 3]);
        assert!(triangle().isolated_nodes().is_empty());
    }

    #[test]
    fn display_renders_the_canonical_numeric_form() {
        assert_eq!(triangle().to_string(), "0-1, 0-2, 1-2");
        assert_eq!(QueryGraph::new(1).to_string(), "0");
        let q = QueryGraph::from_edges(4, &[(2, 1)]).unwrap();
        assert_eq!(q.to_string(), "1-2, 0, 3");
        assert_eq!(QueryGraph::new(0).to_string(), "");
    }
}
