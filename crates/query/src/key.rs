//! Canonical, hashable identity of a query graph.
//!
//! Two independently built [`QueryGraph`]s that describe the same labelled
//! graph (same node count, same edge set) must be treated as the *same*
//! query by every cache in the system: the engine's decomposition-plan
//! cache and the counting service's result cache both key their entries by
//! this canonical form. Keeping the construction in one place guarantees
//! that "would these caches consider the queries equal" can never diverge
//! between layers.
//!
//! The key is deliberately *labelled* (node `0` of one query is node `0` of
//! the other), not an isomorphism-invariant canonical form: callers that
//! build the same query with permuted node labels get distinct keys and at
//! worst a duplicate cache entry, never a wrong answer.

use crate::graph::{QueryGraph, QueryNode};

/// The canonical cache identity of a [`QueryGraph`]: its node count plus its
/// sorted undirected edge list.
///
/// Construct it with [`canonical_key`]; equality and hashing follow the
/// derived component-wise semantics.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CanonicalQueryKey {
    nodes: usize,
    edges: Vec<(QueryNode, QueryNode)>,
}

impl CanonicalQueryKey {
    /// Number of nodes of the keyed query.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// The sorted `(a, b)` edge list (`a < b`) of the keyed query.
    pub fn edges(&self) -> &[(QueryNode, QueryNode)] {
        &self.edges
    }
}

/// Builds the [`CanonicalQueryKey`] of `query`.
///
/// ```
/// use sgc_query::{canonical_key, QueryGraph};
///
/// // The same triangle described with edges in two different orders.
/// let a = QueryGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
/// let b = QueryGraph::from_edges(3, &[(2, 0), (2, 1), (1, 0)]).unwrap();
/// assert_eq!(canonical_key(&a), canonical_key(&b));
///
/// // A different edge set is a different key.
/// let path = QueryGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// assert_ne!(canonical_key(&a), canonical_key(&path));
/// ```
pub fn canonical_key(query: &QueryGraph) -> CanonicalQueryKey {
    // `QueryGraph::edges` already yields each undirected edge once as
    // `(a, b)` with `a < b` in lexicographic order; the sort is kept as a
    // guard so the key stays canonical even if that iteration order ever
    // changes.
    let mut edges = query.edges();
    edges.sort_unstable();
    CanonicalQueryKey {
        nodes: query.num_nodes(),
        edges,
    }
}

/// Maps every query in a batch to the index of its first structural twin.
///
/// `groups[i] == i` marks the first occurrence of a structure;
/// `groups[i] == j` with `j < i` means `queries[i]` has the same
/// [`canonical_key`] as `queries[j]`. Batch executors use this to share one
/// decomposition plan — and one DP run per coloring — among structurally
/// identical patterns submitted together, without hashing full canonical
/// keys on every trial.
///
/// ```
/// use sgc_query::{canonical_groups, catalog, QueryGraph};
///
/// let twin = QueryGraph::from_edges(3, &[(2, 0), (1, 2), (0, 1)]).unwrap();
/// let queries = [catalog::triangle(), catalog::cycle(4), twin];
/// assert_eq!(canonical_groups(queries.iter()), vec![0, 1, 0]);
/// ```
pub fn canonical_groups<'q>(queries: impl IntoIterator<Item = &'q QueryGraph>) -> Vec<usize> {
    let mut first: std::collections::HashMap<CanonicalQueryKey, usize> =
        std::collections::HashMap::new();
    queries
        .into_iter()
        .enumerate()
        .map(|(i, q)| *first.entry(canonical_key(q)).or_insert(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn structurally_equal_queries_share_a_key() {
        let built = catalog::triangle();
        let by_hand = QueryGraph::from_edges(3, &[(2, 1), (0, 2), (1, 0)]).unwrap();
        assert_eq!(canonical_key(&built), canonical_key(&by_hand));
    }

    #[test]
    fn node_count_distinguishes_keys_with_equal_edge_sets() {
        // Same edges, one graph has an extra isolated node.
        let small = QueryGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let padded = QueryGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        assert_ne!(canonical_key(&small), canonical_key(&padded));
        assert_eq!(canonical_key(&padded).num_nodes(), 4);
    }

    #[test]
    fn key_exposes_sorted_edges() {
        let q = QueryGraph::from_edges(4, &[(3, 2), (0, 3), (1, 0)]).unwrap();
        let key = canonical_key(&q);
        assert_eq!(key.edges(), &[(0, 1), (0, 3), (2, 3)]);
        assert!(key.edges().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn groups_point_at_first_structural_twins() {
        let twin = QueryGraph::from_edges(3, &[(1, 0), (2, 1), (0, 2)]).unwrap();
        let queries = [
            catalog::triangle(),
            catalog::cycle(4),
            twin,
            catalog::cycle(4),
            catalog::path(3),
        ];
        assert_eq!(canonical_groups(queries.iter()), vec![0, 1, 0, 1, 4]);
        assert_eq!(canonical_groups(std::iter::empty()), Vec::<usize>::new());
        // All-distinct batches are the identity mapping.
        let distinct = [catalog::triangle(), catalog::glet1(), catalog::dros()];
        assert_eq!(canonical_groups(distinct.iter()), vec![0, 1, 2]);
    }

    #[test]
    fn keys_are_usable_as_hash_map_keys() {
        let mut map = std::collections::HashMap::new();
        map.insert(canonical_key(&catalog::triangle()), "triangle");
        map.insert(canonical_key(&catalog::cycle(4)), "square");
        assert_eq!(
            map.get(&canonical_key(
                &QueryGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()
            )),
            Some(&"triangle")
        );
        assert_eq!(map.len(), 2);
    }
}
