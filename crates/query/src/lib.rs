//! # sgc-query — query graphs and decomposition trees
//!
//! The query-side machinery of the paper:
//!
//! * [`QueryGraph`] — small undirected query graphs (≤ 32 nodes),
//! * [`treewidth`] — treewidth-≤2 recognition via the degree-≤2 reduction
//!   rule, plus tree recognition,
//! * [`block`] / [`decomposition`] — the *blocks* (leaf edges and
//!   contractible cycles) and the decomposition-tree construction of
//!   Section 4.1, including annotations and parent inheritance,
//! * [`plan`] — enumeration of all decomposition trees of a query and the
//!   plan-selection heuristic of Section 6 (longest cycle, boundary nodes,
//!   annotation count),
//! * [`automorphism`] — automorphism counting, needed to convert match counts
//!   into subgraph counts (Section 2),
//! * [`key`] — the canonical cache identity of a query, shared by the
//!   engine's plan cache and the service's result cache,
//! * [`catalog`] — the Figure 8 query suite (analogs) plus the paper's
//!   `Satellite` worked example and assorted simple queries,
//! * [`parse`] — the textual pattern language (`"a-b, b-c, c-a"`,
//!   `cycle(5)`, catalog names), parsed into a [`Pattern`] with spanned
//!   [`PatternParseError`]s and caret diagnostics,
//! * [`registry`] — the name → query [`Registry`] behind
//!   [`catalog::query_by_name`] and the parser's bare-name resolution,
//!   extensible at runtime.
//!
//! Everything here is independent of the data graph: it is the paper's
//! "planner" layer (Section 7) and runs in microseconds for 10-node queries.

pub mod automorphism;
pub mod block;
pub mod catalog;
pub mod decomposition;
pub mod error;
pub mod graph;
pub mod key;
pub mod parse;
pub mod plan;
pub mod registry;
pub mod treewidth;

pub use block::{Block, BlockId, BlockKind};
pub use decomposition::{decompose, DecompositionTree};
pub use error::QueryError;
pub use graph::{QueryGraph, QueryNode};
pub use key::{canonical_groups, canonical_key, CanonicalQueryKey};
pub use parse::{Pattern, PatternErrorKind, PatternParseError};
pub use plan::{enumerate_plans, heuristic_plan, PlanCost};
pub use registry::{Registry, RegistryEntry, RegistryError};
